// Ablation: CDS acceptance policy — best-improvement (the paper scans all
// K·N·(K−1) moves per iteration) vs first-improvement (apply the first
// improving move found). Compares final cost, move counts and runtime.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/drp_cds.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: CDS policy", "best-improvement vs first-improvement", options);

  AsciiTable table({"N", "best: cost", "first: cost", "best: moves",
                    "first: moves", "best: evals", "first: evals", "best: ms",
                    "first: ms"});
  std::vector<std::vector<double>> rows;

  for (std::size_t n = 60; n <= 180; n += 40) {
    double cost_best = 0.0, cost_first = 0.0;
    double moves_best = 0.0, moves_first = 0.0;
    double evals_best = 0.0, evals_first = 0.0;
    double ms_best = 0.0, ms_first = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = n, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 9000 + n + trial});
      for (CdsPolicy policy : {CdsPolicy::kBestImprovement, CdsPolicy::kFirstImprovement}) {
        Allocation alloc = run_drp(db, d.channels).allocation;
        Stopwatch watch;
        const CdsStats stats = run_cds(alloc, {.policy = policy});
        const double ms = watch.millis();
        if (policy == CdsPolicy::kBestImprovement) {
          cost_best += alloc.cost();
          moves_best += static_cast<double>(stats.iterations);
          evals_best += static_cast<double>(stats.moves_evaluated);
          ms_best += ms;
        } else {
          cost_first += alloc.cost();
          moves_first += static_cast<double>(stats.iterations);
          evals_first += static_cast<double>(stats.moves_evaluated);
          ms_first += ms;
        }
      }
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(std::to_string(n),
                  {cost_best / t, cost_first / t, moves_best / t, moves_first / t,
                   evals_best / t, evals_first / t, ms_best / t, ms_first / t},
                  3);
    rows.push_back({static_cast<double>(n), cost_best / t, cost_first / t,
                    moves_best / t, moves_first / t, evals_best / t,
                    evals_first / t, ms_best / t, ms_first / t});
  }
  emit(table, options,
       {"n", "best_cost", "first_cost", "best_moves", "first_moves",
        "best_evals", "first_evals", "best_ms", "first_ms"},
       rows);
  std::puts("expect: both reach local optima of the same neighbourhood; "
            "first-improvement usually needs more moves but each is cheaper.");

  // Second axis: scan vs indexed engine, same move sequence by construction,
  // so cost columns would be identical — what differs is the work done. The
  // evals column is CdsStats::moves_evaluated (Δc computations); repairs is
  // the number of cached best-move entries the indexed engine recomputed.
  AsciiTable engines({"N", "scan: evals", "idx: evals", "idx: repairs",
                      "scan: ms", "idx: ms"});
  for (std::size_t n = 60; n <= 180; n += 40) {
    double evals_scan = 0.0, evals_idx = 0.0, repairs_idx = 0.0;
    double ms_scan = 0.0, ms_idx = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = n, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 9500 + n + trial});
      for (CdsEngine engine : {CdsEngine::kScan, CdsEngine::kIndexed}) {
        Allocation alloc = run_drp(db, d.channels).allocation;
        Stopwatch watch;
        const CdsStats stats = run_cds(alloc, {.engine = engine});
        const double ms = watch.millis();
        if (engine == CdsEngine::kScan) {
          evals_scan += static_cast<double>(stats.moves_evaluated);
          ms_scan += ms;
        } else {
          evals_idx += static_cast<double>(stats.moves_evaluated);
          repairs_idx += static_cast<double>(stats.index_repairs);
          ms_idx += ms;
        }
      }
    }
    const auto t = static_cast<double>(options.trials);
    engines.add_row(std::to_string(n),
                    {evals_scan / t, evals_idx / t, repairs_idx / t, ms_scan / t,
                     ms_idx / t},
                    3);
  }
  // Printed without a CSV emit: --csv already captured the policy table, and
  // a second emit to the same path would clobber it.
  std::fputs(engines.render().c_str(), stdout);
  std::puts("expect: identical move sequences, but the indexed engine "
            "evaluates far fewer moves per applied move.");
  return 0;
}
