// Ablation: CDS acceptance policy — best-improvement (the paper scans all
// K·N·(K−1) moves per iteration) vs first-improvement (apply the first
// improving move found). Compares final cost, move counts and runtime.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/drp_cds.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: CDS policy", "best-improvement vs first-improvement", options);

  AsciiTable table({"N", "best: cost", "first: cost", "best: moves",
                    "first: moves", "best: ms", "first: ms"});
  std::vector<std::vector<double>> rows;

  for (std::size_t n = 60; n <= 180; n += 40) {
    double cost_best = 0.0, cost_first = 0.0;
    double moves_best = 0.0, moves_first = 0.0;
    double ms_best = 0.0, ms_first = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = n, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 9000 + n + trial});
      for (CdsPolicy policy : {CdsPolicy::kBestImprovement, CdsPolicy::kFirstImprovement}) {
        Allocation alloc = run_drp(db, d.channels).allocation;
        Stopwatch watch;
        const CdsStats stats = run_cds(alloc, {.policy = policy});
        const double ms = watch.millis();
        if (policy == CdsPolicy::kBestImprovement) {
          cost_best += alloc.cost();
          moves_best += static_cast<double>(stats.iterations);
          ms_best += ms;
        } else {
          cost_first += alloc.cost();
          moves_first += static_cast<double>(stats.iterations);
          ms_first += ms;
        }
      }
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(std::to_string(n),
                  {cost_best / t, cost_first / t, moves_best / t, moves_first / t,
                   ms_best / t, ms_first / t},
                  3);
    rows.push_back({static_cast<double>(n), cost_best / t, cost_first / t,
                    moves_best / t, moves_first / t, ms_best / t, ms_first / t});
  }
  emit(table, options,
       {"n", "best_cost", "first_cost", "best_moves", "first_moves", "best_ms",
        "first_ms"},
       rows);
  std::puts("expect: both reach local optima of the same neighbourhood; "
            "first-improvement usually needs more moves but each is cheaper.");
  return 0;
}
