// Ablation: GOPT's search budget. The paper treats GOPT as the (near-)global
// optimum reference; this bench shows how its quality/runtime trade-off moves
// with population x generation budget, and how much the memetic ingredients
// (heuristic seeding, final CDS polish) contribute.
#include <cstdio>

#include "baselines/gopt.h"
#include "common/stopwatch.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: GOPT budget", "GA budget and memetic ingredients vs quality",
         options);

  struct Variant {
    const char* name;
    std::size_t population;
    std::size_t generations;
    bool seeded;
    bool polish;
  };
  const std::vector<Variant> variants = {
      {"tiny", 30, 60, true, true},
      {"small", 60, 150, true, true},
      {"paper", 120, 600, true, true},
      {"paper-unseeded", 120, 600, false, true},
      {"paper-no-polish", 120, 600, true, false},
  };

  AsciiTable table({"variant", "avg cost", "avg ms"});
  std::vector<std::vector<double>> rows;
  double index = 0.0;
  for (const Variant& v : variants) {
    double cost = 0.0;
    double ms = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 9500 + trial});
      GoptOptions o;
      o.population = v.population;
      o.generations = v.generations;
      o.seed_with_heuristics = v.seeded;
      o.local_search_final = v.polish;
      o.seed = 60 + trial;
      Stopwatch watch;
      const GoptResult r = run_gopt(db, d.channels, o);
      ms += watch.millis();
      cost += r.cost;
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(v.name, {cost / t, ms / t}, 3);
    rows.push_back({index++, cost / t, ms / t});
  }
  emit(table, options, {"variant", "cost", "ms"}, rows);
  std::puts("expect: quality saturates with budget; unseeded GA needs the "
            "budget most; the CDS polish closes most of the remaining gap.");
  return 0;
}
