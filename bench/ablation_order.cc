// Ablation: the dimension-reduction ordering. DRP sorts by benefit ratio
// f/z; this bench swaps in frequency-only and size-only orders (the two raw
// dimensions) to quantify how much the br reduction itself contributes.
#include <cstdio>

#include "baselines/ordered_dp.h"
#include "core/drp_cds.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: item ordering",
         "benefit-ratio (paper) vs freq-only vs size-only orders", options);

  const std::vector<std::pair<const char*, ItemOrdering>> orders = {
      {"br", ItemOrdering::kBenefitRatioDesc},
      {"freq", ItemOrdering::kFreqDesc},
      {"size", ItemOrdering::kSizeAsc},
  };

  AsciiTable table({"phi", "drp(br)", "drp(freq)", "drp(size)", "dp(br)",
                    "dp(freq)", "dp(size)"});
  std::vector<std::vector<double>> rows;

  for (double phi : {0.0, 1.0, 2.0, 3.0}) {
    std::vector<double> cells;
    for (bool use_dp : {false, true}) {
      for (const auto& [name, order] : orders) {
        double total = 0.0;
        for (std::size_t trial = 0; trial < options.trials; ++trial) {
          const Database db = generate_database(
              {.items = d.items, .skewness = d.skewness, .diversity = phi,
               .seed = 8000 + static_cast<std::uint64_t>(phi * 13) + trial});
          if (use_dp) {
            total += ordered_dp_optimal(db, d.channels, order).cost();
          } else {
            DrpCdsOptions opt;
            opt.drp.ordering = order;
            opt.run_cds = false;
            total += run_drp_cds(db, d.channels, opt).final_cost;
          }
        }
        cells.push_back(total / static_cast<double>(options.trials));
      }
    }
    table.add_row(std::to_string(phi).substr(0, 3), cells, 3);
    std::vector<double> csv_row = {phi};
    csv_row.insert(csv_row.end(), cells.begin(), cells.end());
    rows.push_back(csv_row);
  }
  emit(table, options,
       {"phi", "drp_br", "drp_freq", "drp_size", "dp_br", "dp_freq", "dp_size"},
       rows);
  std::puts("expect: at phi=0 freq ordering ties br (sizes equal); as phi "
            "grows the br order dominates both raw dimensions — the paper's "
            "dimension-reduction premise. dp(x) = best possible contiguous "
            "partition of order x, bounding what any splitter could achieve.");
  return 0;
}
