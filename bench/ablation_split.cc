// Ablation: DRP's split-selection rule. The paper always splits the group
// with the maximum cost F·Z; this bench compares that rule against splitting
// the largest-aggregate-size group and the most-populated group, with and
// without CDS refinement.
#include <cstdio>

#include "core/drp_cds.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: split selection",
         "max-cost (paper) vs max-size vs max-count group picking", options);

  const std::vector<std::pair<const char*, SplitSelection>> rules = {
      {"max-cost", SplitSelection::kMaxCost},
      {"max-size", SplitSelection::kMaxSize},
      {"max-count", SplitSelection::kMaxCount},
  };

  AsciiTable table({"K", "max-cost", "max-size", "max-count", "max-cost+cds",
                    "max-size+cds", "max-count+cds"});
  std::vector<std::vector<double>> rows;

  for (ChannelId k = 4; k <= 10; k += 2) {
    std::vector<double> cells;
    std::vector<double> csv_row = {static_cast<double>(k)};
    for (bool with_cds : {false, true}) {
      for (const auto& [name, rule] : rules) {
        double total = 0.0;
        for (std::size_t trial = 0; trial < options.trials; ++trial) {
          const Database db = generate_database({.items = d.items,
                                                 .skewness = d.skewness,
                                                 .diversity = d.diversity,
                                                 .seed = 7000 + k * 17 + trial});
          DrpCdsOptions opt;
          opt.drp.selection = rule;
          opt.run_cds = with_cds;
          total += run_drp_cds(db, k, opt).final_cost;
        }
        cells.push_back(total / static_cast<double>(options.trials));
      }
    }
    csv_row.insert(csv_row.end(), cells.begin(), cells.end());
    table.add_row(std::to_string(k), cells, 3);
    rows.push_back(csv_row);
  }
  emit(table, options,
       {"k", "max_cost", "max_size", "max_count", "max_cost_cds", "max_size_cds",
        "max_count_cds"},
       rows);
  std::puts("expect: max-cost (the paper's rule) at least ties the "
            "alternatives before CDS; after CDS the rules largely converge.");
  return 0;
}
