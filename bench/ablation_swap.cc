// Ablation: the swap neighborhood on top of CDS. Quantifies how often and by
// how much pairwise exchanges improve on CDS's single-move local optimum.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/drp.h"
#include "core/swap.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Ablation: swap neighborhood",
         "CDS vs CDS+swaps: final cost, swap count, runtime", options);

  AsciiTable table({"K", "cds cost", "deep cost", "improved runs", "avg swaps",
                    "cds ms", "deep ms"});
  std::vector<std::vector<double>> rows;
  const std::size_t runs = options.quick ? 6 : 20;

  for (ChannelId k = 4; k <= 10; k += 2) {
    double cds_cost = 0.0, deep_cost = 0.0, swaps = 0.0;
    double cds_ms = 0.0, deep_ms = 0.0;
    std::size_t improved = 0;
    for (std::size_t trial = 0; trial < runs; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 18000 + k * 31 + trial});
      Allocation a = run_drp(db, k).allocation;
      Allocation b = a;
      Stopwatch w1;
      run_cds(a);
      cds_ms += w1.millis();
      Stopwatch w2;
      const DeepSearchStats stats = run_cds_with_swaps(b);
      deep_ms += w2.millis();
      cds_cost += a.cost();
      deep_cost += b.cost();
      swaps += static_cast<double>(stats.swap_steps);
      if (b.cost() < a.cost() - 1e-9) ++improved;
    }
    const auto t = static_cast<double>(runs);
    table.add_row(std::to_string(k),
                  {cds_cost / t, deep_cost / t, static_cast<double>(improved),
                   swaps / t, cds_ms / t, deep_ms / t},
                  3);
    rows.push_back({static_cast<double>(k), cds_cost / t, deep_cost / t,
                    static_cast<double>(improved), swaps / t});
  }
  emit(table, options,
       {"k", "cds_cost", "deep_cost", "improved_runs", "avg_swaps"}, rows);
  std::puts("expect: swaps improve a minority of runs by a small margin — "
            "evidence that CDS's single-move optimum is already deep, at a "
            "fraction of the O(N^2)-per-sweep swap cost.");
  return 0;
}
