// Extension bench: (1,m) air indexing (paper reference [11]). Shows the
// access-latency / tuning-time trade-off as the index replication factor m
// varies, and the √(D/I)-optimal m chosen per channel.
#include <cstdio>

#include "air/index.h"
#include "common/strings.h"
#include "core/drp_cds.h"
#include "harness.h"
#include "model/cost.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: (1,m) air indexing",
         "access latency vs tuning time as the index replication m varies",
         options);

  const IndexConfig base{.index_size = 1.0, .header_size = 0.05, .replication = 1};

  AsciiTable table({"m", "access", "tuning", "unindexed W_b"});
  std::vector<std::vector<double>> rows;

  const std::size_t ms[] = {1, 2, 4, 8, 16};
  std::vector<double> access_sum(std::size(ms), 0.0);
  std::vector<double> tuning_sum(std::size(ms), 0.0);
  double wb_sum = 0.0, opt_access_sum = 0.0, opt_tuning_sum = 0.0;

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const Database db = generate_database({.items = d.items, .skewness = d.skewness,
                                           .diversity = d.diversity,
                                           .seed = 16000 + trial});
    const Allocation alloc = run_drp_cds(db, d.channels).allocation;
    wb_sum += program_waiting_time(alloc, d.bandwidth);
    for (std::size_t i = 0; i < std::size(ms); ++i) {
      double access = 0.0, tuning = 0.0;
      for (ChannelId c = 0; c < d.channels; ++c) {
        if (alloc.count_of(c) == 0) continue;
        IndexConfig cfg = base;
        cfg.replication = ms[i];
        const auto m = indexed_channel_metrics(alloc, c, d.bandwidth, cfg);
        access += alloc.freq_of(c) * m.expected_access;
        tuning += alloc.freq_of(c) * m.expected_tuning;
      }
      access_sum[i] += access;
      tuning_sum[i] += tuning;
    }
    opt_access_sum += indexed_program_access(alloc, d.bandwidth, base);
    opt_tuning_sum += indexed_program_tuning(alloc, d.bandwidth, base);
  }

  const auto t = static_cast<double>(options.trials);
  for (std::size_t i = 0; i < std::size(ms); ++i) {
    table.add_row(std::to_string(ms[i]),
                  {access_sum[i] / t, tuning_sum[i] / t, wb_sum / t}, 3);
    rows.push_back({static_cast<double>(ms[i]), access_sum[i] / t,
                    tuning_sum[i] / t});
  }
  table.add_row("opt m*", {opt_access_sum / t, opt_tuning_sum / t, wb_sum / t}, 3);
  emit(table, options, {"m", "access", "tuning"}, rows);
  std::puts("expect: access latency is U-shaped in m (probe-to-index falls, "
            "cycle grows) with the minimum near sqrt(D/I); tuning time is "
            "flat and far below the always-listening W_b — the point of "
            "indexing is battery, not latency.");
  return 0;
}
