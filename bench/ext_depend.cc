// Extension bench: dependent-data queries (paper references [9][10]). Each
// query needs several items; this bench measures per-query latency under the
// parallel and single-tuner retrieval models for different allocations, all
// fed the query-induced item frequencies.
#include <cstdio>

#include "baselines/flat.h"
#include "baselines/vfk.h"
#include "core/drp_cds.h"
#include "depend/queries.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: dependent queries",
         "per-query latency (parallel / single-tuner) across allocations",
         options);

  AsciiTable table({"max items", "flat par", "flat seq", "vfk par", "vfk seq",
                    "drp-cds par", "drp-cds seq"});
  std::vector<std::vector<double>> rows;

  for (std::size_t max_items : {1u, 2u, 3u, 4u}) {
    double acc[6] = {0, 0, 0, 0, 0, 0};
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database base = generate_database({.items = d.items,
                                               .skewness = d.skewness,
                                               .diversity = d.diversity,
                                               .seed = 17000 + trial});
      const QueryWorkload workload = generate_query_workload(
          base, {.queries = 60, .max_items = max_items, .seed = 600 + trial});
      // Feed every scheduler the query-induced item popularity.
      std::vector<double> sizes;
      for (const Item& it : base.items()) sizes.push_back(it.size);
      const Database db(sizes, workload.induced_item_frequencies(base.size()));

      const Allocation flat = flat_round_robin(db, d.channels);
      const Allocation vfk = run_vfk(db, d.channels);
      const Allocation opt = run_drp_cds(db, d.channels).allocation;
      const QueryLatencyReport rf =
          evaluate_query_workload(BroadcastProgram(flat, d.bandwidth), workload);
      const QueryLatencyReport rv =
          evaluate_query_workload(BroadcastProgram(vfk, d.bandwidth), workload);
      const QueryLatencyReport ro =
          evaluate_query_workload(BroadcastProgram(opt, d.bandwidth), workload);
      acc[0] += rf.parallel;
      acc[1] += rf.sequential;
      acc[2] += rv.parallel;
      acc[3] += rv.sequential;
      acc[4] += ro.parallel;
      acc[5] += ro.sequential;
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(std::to_string(max_items),
                  {acc[0] / t, acc[1] / t, acc[2] / t, acc[3] / t, acc[4] / t,
                   acc[5] / t},
                  3);
    rows.push_back({static_cast<double>(max_items), acc[0] / t, acc[1] / t,
                    acc[2] / t, acc[3] / t, acc[4] / t, acc[5] / t});
  }
  emit(table, options,
       {"max_items", "flat_par", "flat_seq", "vfk_par", "vfk_seq", "drp_par",
        "drp_seq"},
       rows);
  std::puts("expect: latency grows with query width, faster for the "
            "single-tuner model; DRP-CDS on induced frequencies still beats "
            "frequency-only and flat programs, though its advantage narrows "
            "as queries couple items the cost model treats independently.");
  return 0;
}
