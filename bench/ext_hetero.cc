// Extension bench: heterogeneous channel bandwidths. Sweeps the bandwidth
// spread (all channels share the same total budget) and compares the
// bandwidth-aware scheduler against bandwidth-blind DRP-CDS.
#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "core/drp_cds.h"
#include "harness.h"
#include "hetero/hetero.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: heterogeneous bandwidths",
         "bandwidth-aware scheduling vs bandwidth-blind DRP-CDS", options);

  // Spread r: 6 channels with bandwidths proportional to r^i, normalized to
  // a total of 60 units/s (so r=1 reproduces the homogeneous b=10 setting).
  AsciiTable table({"spread", "blind W", "hetero W", "improvement %", "moves"});
  std::vector<std::vector<double>> rows;

  for (double spread : {1.0, 1.5, 2.0, 3.0}) {
    double blind_total = 0.0, tuned_total = 0.0, moves = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 14000 + trial});
      std::vector<double> bw(d.channels);
      double sum = 0.0;
      for (ChannelId c = 0; c < d.channels; ++c) {
        bw[c] = std::pow(spread, static_cast<double>(c));
        sum += bw[c];
      }
      for (double& b : bw) b *= 60.0 / sum;

      const Allocation blind = run_drp_cds(db, d.channels).allocation;
      blind_total += hetero_wait(blind, bw);
      const HeteroResult tuned = schedule_hetero(db, bw);
      tuned_total += tuned.wait;
      moves += static_cast<double>(tuned.moves);
    }
    const auto t = static_cast<double>(options.trials);
    const double improvement =
        100.0 * (blind_total - tuned_total) / blind_total;
    table.add_row(format_fixed(spread, 1),
                  {blind_total / t, tuned_total / t, improvement, moves / t}, 3);
    rows.push_back({spread, blind_total / t, tuned_total / t, improvement});
  }
  emit(table, options, {"spread", "blind", "hetero", "improvement_pct"}, rows);
  std::puts("expect: at spread 1.0 the schedulers coincide (homogeneous "
            "case); the advantage of bandwidth-aware placement grows with "
            "the spread as hot content must chase fast spectrum.");
  return 0;
}
