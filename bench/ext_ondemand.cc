// Extension bench: on-demand (pull) broadcast scheduling policies (paper
// reference [2]) against the push-based DRP-CDS program on identical
// catalogues and request loads.
#include <cstdio>

#include "common/strings.h"
#include "core/drp_cds.h"
#include "harness.h"
#include "ondemand/server.h"
#include "sim/simulator.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: on-demand policies",
         "push (DRP-CDS) vs pull policies, mean wait and p95 stretch", options);

  AsciiTable table({"load", "push", "fcfs", "mrf", "lwf", "rxw", "ltsf",
                    "ltsf p95 stretch", "fcfs p95 stretch"});
  std::vector<std::vector<double>> rows;

  for (double rate : {2.0, 6.0, 12.0}) {
    double push_w = 0.0;
    double pull_w[5] = {0, 0, 0, 0, 0};
    double ltsf_stretch = 0.0, fcfs_stretch = 0.0;
    const std::size_t requests = options.quick ? 4000 : 12000;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = d.skewness,
                                             .diversity = d.diversity,
                                             .seed = 13000 + trial});
      const auto trace = generate_trace(db, {.requests = requests,
                                             .arrival_rate = rate,
                                             .seed = 500 + trial});
      const Allocation alloc = run_drp_cds(db, d.channels).allocation;
      push_w += simulate(BroadcastProgram(alloc, d.bandwidth), trace).mean_wait();
      std::size_t i = 0;
      for (OnDemandPolicy policy : all_ondemand_policies()) {
        const OnDemandReport r = run_ondemand(
            db, trace,
            {.policy = policy, .channels = d.channels, .bandwidth = d.bandwidth});
        pull_w[i++] += r.mean_wait();
        if (policy == OnDemandPolicy::kLtsf) ltsf_stretch += r.stretch.p95;
        if (policy == OnDemandPolicy::kFcfs) fcfs_stretch += r.stretch.p95;
      }
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(format_fixed(rate, 0) + "/s",
                  {push_w / t, pull_w[0] / t, pull_w[1] / t, pull_w[2] / t,
                   pull_w[3] / t, pull_w[4] / t, ltsf_stretch / t, fcfs_stretch / t},
                  3);
    rows.push_back({rate, push_w / t, pull_w[0] / t, pull_w[1] / t, pull_w[2] / t,
                    pull_w[3] / t, pull_w[4] / t});
  }
  emit(table, options,
       {"rate", "push", "fcfs", "mrf", "lwf", "rxw", "ltsf"}, rows);
  std::puts("expect: at light load pull crushes push (items on demand, no "
            "cycle to wait out); as load grows pull waits rise toward (and "
            "past) the load-independent push program. Size-aware ltsf keeps "
            "p95 stretch below fcfs throughout.");
  return 0;
}
