// Extension bench: channel-count planning under a fixed total bandwidth.
// The paper's Figure 2 gives every K the same per-channel bandwidth, so K=10
// always wins; with a fixed budget split across channels the optimum moves
// inside, and this bench locates it across skew levels.
#include <cstdio>

#include "api/planner.h"
#include "api/portfolio.h"
#include "common/strings.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: channel planning",
         "best K under a fixed total bandwidth of 60 units/s", options);

  AsciiTable table({"theta", "W(K=1)", "W(K=4)", "W(K=10)", "best K", "W(best)"});
  std::vector<std::vector<double>> rows;

  for (double theta : {0.4, 0.8, 1.2, 1.6}) {
    double w1 = 0.0, w4 = 0.0, w10 = 0.0, wbest = 0.0, kbest = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = theta,
                                             .diversity = d.diversity,
                                             .seed = 15000 + trial});
      const PlanResult r = plan_channel_count(db, 60.0, 10);
      w1 += r.sweep[0].waiting_time;
      w4 += r.sweep[3].waiting_time;
      w10 += r.sweep[9].waiting_time;
      wbest += r.best.waiting_time;
      kbest += static_cast<double>(r.best_channels);
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(format_fixed(theta, 1),
                  {w1 / t, w4 / t, w10 / t, kbest / t, wbest / t}, 3);
    rows.push_back({theta, w1 / t, w4 / t, w10 / t, kbest / t, wbest / t});
  }
  emit(table, options, {"theta", "w_k1", "w_k4", "w_k10", "best_k", "w_best"},
       rows);
  std::puts("expect: the probe term shrinks with K but downloads slow as "
            "b = B/K; higher skew favours more channels (hot items get tiny "
            "dedicated cycles) — the planner finds the balance point.");

  // Portfolio extension (DESIGN.md §13): the same workloads through the
  // budgeted race at its default 250 ms deadline, against DRP-CDS alone.
  // The winner is never costlier than DRP-CDS (it is one of the racers);
  // the win columns show which racer delivered it per skew level.
  banner("Extension: optimizer portfolio",
         "plan(db, K, 250 ms) vs DRP-CDS alone at the paper midpoint", options);
  AsciiTable race({"theta", "cost drp-cds", "cost portfolio", "gain %",
                   "wins drp", "wins kk", "wins gopt"});
  std::vector<std::vector<double>> race_rows;
  for (double theta : {0.4, 0.8, 1.2, 1.6}) {
    double base_cost = 0.0, race_cost = 0.0;
    double wins[3] = {0.0, 0.0, 0.0};
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = theta,
                                             .diversity = d.diversity,
                                             .seed = 15000 + trial});
      ScheduleRequest request;
      request.algorithm = Algorithm::kDrpCds;
      request.channels = d.channels;
      request.bandwidth = d.bandwidth;
      base_cost += schedule(db, request).cost;
      const PortfolioResult raced = plan(db, d.channels, 250.0);
      race_cost += raced.cost;
      wins[static_cast<std::size_t>(raced.winner)] += 1.0;
    }
    const auto t = static_cast<double>(options.trials);
    const double gain = (base_cost - race_cost) / base_cost * 100.0;
    race.add_row(format_fixed(theta, 1),
                 {base_cost / t, race_cost / t, gain, wins[0], wins[1], wins[2]},
                 3);
    race_rows.push_back({theta, base_cost / t, race_cost / t, gain, wins[0],
                         wins[1], wins[2]});
  }
  emit(race, options,
       {"theta", "cost_drp_cds", "cost_portfolio", "gain_pct", "wins_drp",
        "wins_kk", "wins_gopt"},
       race_rows);
  std::puts("expect: the portfolio never loses to DRP-CDS (it races it); the "
            "KK seed and the budgeted GA pick up whatever workloads DRP's "
            "benefit-ratio ordering leaves on the table.");
  return 0;
}
