// Extension bench: channel-count planning under a fixed total bandwidth.
// The paper's Figure 2 gives every K the same per-channel bandwidth, so K=10
// always wins; with a fixed budget split across channels the optimum moves
// inside, and this bench locates it across skew levels.
#include <cstdio>

#include "api/planner.h"
#include "common/strings.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: channel planning",
         "best K under a fixed total bandwidth of 60 units/s", options);

  AsciiTable table({"theta", "W(K=1)", "W(K=4)", "W(K=10)", "best K", "W(best)"});
  std::vector<std::vector<double>> rows;

  for (double theta : {0.4, 0.8, 1.2, 1.6}) {
    double w1 = 0.0, w4 = 0.0, w10 = 0.0, wbest = 0.0, kbest = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = theta,
                                             .diversity = d.diversity,
                                             .seed = 15000 + trial});
      const PlanResult r = plan_channel_count(db, 60.0, 10);
      w1 += r.sweep[0].waiting_time;
      w4 += r.sweep[3].waiting_time;
      w10 += r.sweep[9].waiting_time;
      wbest += r.best.waiting_time;
      kbest += static_cast<double>(r.best_channels);
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(format_fixed(theta, 1),
                  {w1 / t, w4 / t, w10 / t, kbest / t, wbest / t}, 3);
    rows.push_back({theta, w1 / t, w4 / t, w10 / t, kbest / t, wbest / t});
  }
  emit(table, options, {"theta", "w_k1", "w_k4", "w_k10", "best_k", "w_best"},
       rows);
  std::puts("expect: the probe term shrinks with K but downloads slow as "
            "b = B/K; higher skew favours more channels (hot items get tiny "
            "dedicated cycles) — the planner finds the balance point.");
  return 0;
}
