// Extension bench: data replication (paper reference [8]). Quantifies how
// much greedy replication recovers from different starting allocations and
// how the gain depends on access skew.
#include <cstdio>

#include "baselines/flat.h"
#include "baselines/vfk.h"
#include "common/strings.h"
#include "core/drp_cds.h"
#include "harness.h"
#include "replication/replicate.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: replication",
         "greedy item replication from flat / vfk / drp-cds starts", options);

  AsciiTable table({"theta", "flat", "flat+rep", "vfk", "vfk+rep", "drp-cds",
                    "drp-cds+rep", "copies(flat)"});
  std::vector<std::vector<double>> rows;
  const ReplicationOptions rep{.max_copies_per_item = 3, .max_total_copies = 200};

  for (double theta : {0.4, 0.8, 1.2, 1.6}) {
    double w[6] = {0, 0, 0, 0, 0, 0};
    double copies = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const Database db = generate_database({.items = d.items, .skewness = theta,
                                             .diversity = d.diversity,
                                             .seed = 12000 + trial});
      const Allocation flat = flat_size_balanced(db, d.channels);
      const Allocation vfk = run_vfk(db, d.channels);
      const Allocation opt = run_drp_cds(db, d.channels).allocation;
      const ReplicationResult rf = replicate_greedy(flat, d.bandwidth, rep);
      const ReplicationResult rv = replicate_greedy(vfk, d.bandwidth, rep);
      const ReplicationResult ro = replicate_greedy(opt, d.bandwidth, rep);
      w[0] += rf.base_wait;
      w[1] += rf.replicated_wait;
      w[2] += rv.base_wait;
      w[3] += rv.replicated_wait;
      w[4] += ro.base_wait;
      w[5] += ro.replicated_wait;
      copies += static_cast<double>(rf.copies_added);
    }
    const auto t = static_cast<double>(options.trials);
    table.add_row(format_fixed(theta, 1),
                  {w[0] / t, w[1] / t, w[2] / t, w[3] / t, w[4] / t, w[5] / t,
                   copies / t},
                  3);
    rows.push_back({theta, w[0] / t, w[1] / t, w[2] / t, w[3] / t, w[4] / t,
                    w[5] / t});
  }
  emit(table, options,
       {"theta", "flat", "flat_rep", "vfk", "vfk_rep", "drp_cds", "drp_cds_rep"},
       rows);
  std::puts("note: waits here use the replication-aware probe model "
            "(min over copies), so the replicated program of a weak start "
            "closes much of its gap to DRP-CDS, while replicating DRP-CDS "
            "itself yields little — cost-optimal programs leave replication "
            "no slack.");
  return 0;
}
