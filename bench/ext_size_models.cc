// Robustness bench: does the paper's headline (Figure 4) survive when the
// item-size family changes? Repeats the VF^K vs DRP-CDS vs GOPT comparison
// under the paper's uniform-exponent sizes, lognormal sizes (realistic web
// objects) and a bimodal text/media mix (the intro's motivating catalogue).
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Extension: size-model robustness",
         "VF^K / DRP-CDS / GOPT across size families (phi = 2.5)", options);

  const std::vector<std::pair<const char*, SizeModel>> models = {
      {"uniform-exp", SizeModel::kUniformExponent},
      {"lognormal", SizeModel::kLognormal},
      {"bimodal", SizeModel::kBimodal},
  };
  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kDrpCds,
                                        Algorithm::kGopt};

  AsciiTable table({"model", "vfk", "drp-cds", "gopt", "vfk/gopt"});
  std::vector<std::vector<double>> rows;
  double index = 0.0;
  for (const auto& [name, model] : models) {
    std::vector<double> waits(algos.size(), 0.0);
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      WorkloadConfig cfg{.items = d.items, .skewness = d.skewness,
                         .diversity = 2.5, .seed = 19000 + trial};
      cfg.size_model = model;
      const Database db = generate_database(cfg);
      for (std::size_t a = 0; a < algos.size(); ++a) {
        waits[a] += measure(db, algos[a], d.channels, d.bandwidth, options.quick,
                            cfg.seed)
                        .waiting_time;
      }
    }
    const auto t = static_cast<double>(options.trials);
    for (double& w : waits) w /= t;
    table.add_row(name, {waits[0], waits[1], waits[2], waits[0] / waits[2]}, 3);
    rows.push_back({index++, waits[0], waits[1], waits[2]});
  }
  emit(table, options, {"model_index", "vfk", "drp_cds", "gopt"}, rows);
  std::puts("expect: the diverse-aware algorithms dominate VF^K under every "
            "size family; the gap is largest for bimodal catalogues, where "
            "frequency-only allocation routinely pins hot text behind video.");
  return 0;
}
