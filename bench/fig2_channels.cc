// Figure 2: number of broadcast channels K vs. average waiting time W_b.
// Series: VF^K, DRP, DRP-CDS, GOPT. N=120, θ=0.8, Φ=2, b=10.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 2", "channel number K vs average waiting time W_b", options);

  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kDrp,
                                        Algorithm::kDrpCds, Algorithm::kGopt};
  AsciiTable table({"K", "vfk", "drp", "drp-cds", "gopt", "drp-cds/gopt"});
  std::vector<std::vector<double>> rows;
  const WorkloadConfig base{.items = d.items, .skewness = d.skewness,
                            .diversity = d.diversity, .seed = 0};

  for (ChannelId k = 4; k <= 10; ++k) {
    std::vector<double> waits;
    for (Algorithm a : algos) {
      // Same seed base at every K: each column sweeps K over identical
      // workload draws, as the paper's figure does.
      waits.push_back(
          average_over_trials(base, a, k, d.bandwidth, options, 1000).waiting_time);
    }
    const double ratio = waits[2] / waits[3];
    std::vector<double> cells = waits;
    cells.push_back(ratio);
    table.add_row(std::to_string(k), cells, 3);
    std::vector<double> csv_row = {static_cast<double>(k)};
    csv_row.insert(csv_row.end(), waits.begin(), waits.end());
    rows.push_back(csv_row);
  }
  emit(table, options, {"k", "vfk", "drp", "drp_cds", "gopt"}, rows);
  std::puts("expect: W_b falls with K; VF^K gap to GOPT widens; "
            "drp-cds/gopt stays within a few percent of 1.");
  return 0;
}
