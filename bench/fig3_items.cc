// Figure 3: number of broadcast items N vs. average waiting time W_b.
// Series: VF^K, DRP, DRP-CDS, GOPT. K=6, θ=0.8, Φ=2, b=10.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 3", "number of broadcast items N vs average waiting time W_b",
         options);

  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kDrp,
                                        Algorithm::kDrpCds, Algorithm::kGopt};
  AsciiTable table({"N", "vfk", "drp", "drp-cds", "gopt", "drp-cds/gopt"});
  std::vector<std::vector<double>> rows;

  for (std::size_t n = 60; n <= 180; n += 30) {
    const WorkloadConfig base{.items = n, .skewness = d.skewness,
                              .diversity = d.diversity, .seed = 0};
    std::vector<double> waits;
    for (Algorithm a : algos) {
      waits.push_back(average_over_trials(base, a, d.channels, d.bandwidth, options,
                                          2000)
                          .waiting_time);
    }
    std::vector<double> cells = waits;
    cells.push_back(waits[2] / waits[3]);
    table.add_row(std::to_string(n), cells, 3);
    std::vector<double> csv_row = {static_cast<double>(n)};
    csv_row.insert(csv_row.end(), waits.begin(), waits.end());
    rows.push_back(csv_row);
  }
  emit(table, options, {"n", "vfk", "drp", "drp_cds", "gopt"}, rows);
  std::puts("expect: W_b grows with N; plain DRP drifts from GOPT as N grows "
            "while DRP-CDS stays close.");
  return 0;
}
