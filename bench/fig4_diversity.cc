// Figure 4: diversity parameter Φ vs. average waiting time W_b.
// Series: VF^K, DRP-CDS, GOPT. N=120, K=6, θ=0.8, b=10.
#include <cstdio>

#include "common/strings.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 4", "diversity parameter phi vs average waiting time W_b", options);

  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kDrpCds,
                                        Algorithm::kGopt};
  AsciiTable table({"phi", "vfk", "drp-cds", "gopt", "vfk/gopt"});
  std::vector<std::vector<double>> rows;

  for (double phi : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const WorkloadConfig base{.items = d.items, .skewness = d.skewness,
                              .diversity = phi, .seed = 0};
    std::vector<double> waits;
    for (Algorithm a : algos) {
      waits.push_back(average_over_trials(base, a, d.channels, d.bandwidth, options,
                                          3000)
                          .waiting_time);
    }
    std::vector<double> cells = waits;
    cells.push_back(waits[0] / waits[2]);
    table.add_row(format_fixed(phi, 1), cells, 3);
    rows.push_back({phi, waits[0], waits[1], waits[2]});
  }
  emit(table, options, {"phi", "vfk", "drp_cds", "gopt"}, rows);
  std::puts("expect: W_b rises steeply with phi; all algorithms close at "
            "phi=0; VF^K falls far behind at high phi while DRP-CDS tracks GOPT.");
  return 0;
}
