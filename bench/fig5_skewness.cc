// Figure 5: Zipf skewness θ vs. average waiting time W_b.
// Series: VF^K, DRP-CDS, GOPT. N=120, K=6, Φ=2, b=10.
#include <cstdio>

#include "common/strings.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 5", "skewness parameter theta vs average waiting time W_b", options);

  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kDrpCds,
                                        Algorithm::kGopt};
  AsciiTable table({"theta", "vfk", "drp-cds", "gopt", "drp-cds - gopt"});
  std::vector<std::vector<double>> rows;

  for (double theta : {0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}) {
    const WorkloadConfig base{.items = d.items, .skewness = theta,
                              .diversity = d.diversity, .seed = 0};
    std::vector<double> waits;
    for (Algorithm a : algos) {
      waits.push_back(average_over_trials(base, a, d.channels, d.bandwidth, options,
                                          4000)
                          .waiting_time);
    }
    std::vector<double> cells = waits;
    cells.push_back(waits[1] - waits[2]);
    table.add_row(format_fixed(theta, 1), cells, 3);
    rows.push_back({theta, waits[0], waits[1], waits[2]});
  }
  emit(table, options, {"theta", "vfk", "drp_cds", "gopt"}, rows);
  std::puts("expect: W_b falls as theta grows; the DRP-CDS - GOPT gap shrinks "
            "toward zero at high skew.");
  return 0;
}
