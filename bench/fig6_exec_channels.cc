// Figure 6: number of channels K vs. execution time (ms).
// Series: DRP-CDS, GOPT. N=120, θ=0.8, Φ=2.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 6", "channel number K vs execution time (ms)", options);

  AsciiTable table({"K", "drp-cds (ms)", "gopt (ms)", "gopt/drp-cds"});
  std::vector<std::vector<double>> rows;
  const WorkloadConfig base{.items = d.items, .skewness = d.skewness,
                            .diversity = d.diversity, .seed = 0};

  for (ChannelId k = 4; k <= 10; ++k) {
    const double fast =
        average_over_trials(base, Algorithm::kDrpCds, k, d.bandwidth, options, 5000 + k)
            .elapsed_ms;
    const double slow =
        average_over_trials(base, Algorithm::kGopt, k, d.bandwidth, options, 5000 + k)
            .elapsed_ms;
    table.add_row(std::to_string(k), {fast, slow, slow / fast}, 3);
    rows.push_back({static_cast<double>(k), fast, slow});
  }
  emit(table, options, {"k", "drp_cds_ms", "gopt_ms"}, rows);
  std::puts("expect: GOPT is orders of magnitude slower at every K; its time "
            "grows only mildly with K (gene alphabet, not chromosome length).");
  return 0;
}
