// Figure 7: number of broadcast items N vs. execution time (ms).
// Series: DRP-CDS, GOPT. K=6, θ=0.8, Φ=2.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  const Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Figure 7", "number of items N vs execution time (ms)", options);

  AsciiTable table({"N", "drp-cds (ms)", "gopt (ms)", "gopt/drp-cds"});
  std::vector<std::vector<double>> rows;

  for (std::size_t n = 60; n <= 180; n += 30) {
    const WorkloadConfig base{.items = n, .skewness = d.skewness,
                              .diversity = d.diversity, .seed = 0};
    const double fast = average_over_trials(base, Algorithm::kDrpCds, d.channels,
                                            d.bandwidth, options, 6000 + n)
                            .elapsed_ms;
    const double slow = average_over_trials(base, Algorithm::kGopt, d.channels,
                                            d.bandwidth, options, 6000 + n)
                            .elapsed_ms;
    table.add_row(std::to_string(n), {fast, slow, slow / fast}, 3);
    rows.push_back({static_cast<double>(n), fast, slow});
  }
  emit(table, options, {"n", "drp_cds_ms", "gopt_ms"}, rows);
  std::puts("expect: GOPT execution time is more sensitive to N than to K "
            "(chromosome length grows); DRP-CDS stays near-flat.");
  return 0;
}
