// Tables 2-4: replays the paper's worked example — the 15-item profile, the
// DRP splitting trace and the CDS refinement trace — printing each
// intermediate state next to the paper's reported numbers.
#include <cstdio>

#include "core/cds.h"
#include "core/drp.h"
#include "common/strings.h"
#include "common/table.h"
#include "workload/paper_example.h"

namespace {

void print_groups(const dbs::Allocation& alloc, const char* title) {
  std::printf("%s (total cost %.2f)\n", title, alloc.cost());
  for (dbs::ChannelId c = 0; c < alloc.channels(); ++c) {
    std::printf("  group %u (cost %6.2f):", c + 1, alloc.channel_cost(c));
    for (dbs::ItemId id : alloc.items_in(c)) std::printf(" d%u", id + 1);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace dbs;
  const Database db = paper_table2_database();

  std::puts("== Tables 2-4 — the paper's worked example (N=15, K=5) ==");
  std::printf("Table 2 check: 15 items, total size %.2f (paper: 135.60), "
              "total freq 1.0\n\n", db.total_size());

  // --- DRP trace (Table 3) -------------------------------------------------
  std::puts("Table 3 — DRP splitting trace:");
  for (ChannelId k = 1; k <= 5; ++k) {
    const DrpResult r = run_drp(db, k);
    std::printf("  %u group(s):", k);
    for (const DrpGroup& g : r.groups) std::printf(" %.2f", g.cost);
    std::printf("  (total %.2f)\n", r.allocation.cost());
  }
  std::puts("  paper: 135.60 -> {29.04, 28.62} -> {7.02, 6.82, 28.62} -> ... "
            "-> total 24.09");
  std::puts("  note: at the 4th split the paper's table deviates from its own "
            "max-cost rule; following the pseudocode strictly gives ~24.22 "
            "(see DESIGN.md).\n");

  // --- CDS trace from the paper's Table 4(a) grouping ----------------------
  std::vector<ChannelId> assignment(15, 0);
  auto set_group = [&](std::initializer_list<int> ids, ChannelId c) {
    for (int d : ids) assignment[static_cast<std::size_t>(d - 1)] = c;
  };
  set_group({9, 2, 3}, 0);
  set_group({6, 5, 15}, 1);
  set_group({1, 12}, 2);
  set_group({10, 13, 4, 8}, 3);
  set_group({14, 7, 11}, 4);
  Allocation alloc(db, 5, assignment);

  print_groups(alloc, "Table 4(a) — CDS initial state (paper: 24.09)");
  int iteration = 0;
  while (true) {
    const CdsMove move = best_move(alloc);
    if (move.gain <= 1e-12) break;
    alloc.move(move.item, move.to);
    ++iteration;
    std::printf("iteration %d: move d%u from group %u to group %u, dc=%.2f, "
                "cost=%.2f\n", iteration, move.item + 1, move.from + 1,
                move.to + 1, move.gain, alloc.cost());
  }
  std::puts("  paper: move d10 g4->g2 (dc=0.95, 23.13); move d12 g3->g2 "
            "(dc=0.45, 22.68); ... local optimum 22.29");
  print_groups(alloc, "\nFinal grouping (paper Table 4(d), cost 22.29)");
  return 0;
}
