#include "harness.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <vector>

#include "common/csv.h"

namespace dbs::bench {

Options Options::parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.trials = 2;
    } else if (arg == "--trials" && i + 1 < argc) {
      options.trials = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.trials == 0) options.trials = 1;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--threads N] [--csv PATH] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return options;
}

Measurement measure(const Database& db, Algorithm algorithm, ChannelId channels,
                    double bandwidth, bool quick, std::uint64_t seed,
                    std::size_t cds_max_iterations) {
  ScheduleRequest request;
  request.algorithm = algorithm;
  request.channels = channels;
  request.bandwidth = bandwidth;
  request.gopt.seed = seed;
  if (quick) {
    request.gopt.population = 60;
    request.gopt.generations = 150;
    request.gopt.stall_generations = 50;
  }
  if (cds_max_iterations != 0) {
    request.drp_cds.cds.max_iterations = cds_max_iterations;
  }
  const ScheduleResult result = schedule(db, request);
  return Measurement{result.waiting_time, result.cost, result.elapsed_ms};
}

namespace {

// Runs one seeded trial. Seeds are pre-assigned (base_seed + trial), so the
// result depends only on the trial index, never on scheduling order.
Measurement run_trial(const WorkloadConfig& config, Algorithm algorithm,
                      ChannelId channels, double bandwidth,
                      const Options& options, std::uint64_t base_seed,
                      std::size_t trial) {
  WorkloadConfig cfg = config;
  cfg.seed = base_seed + trial;
  const Database db = generate_database(cfg);
  return measure(db, algorithm, channels, bandwidth, options.quick, cfg.seed,
                 options.cds_max_iterations);
}

// Fixed-size worker pool over an atomic work index, with an annotated
// first-error slot so a throwing trial surfaces on the caller instead of
// std::terminate()-ing the worker.
//
// Concurrency contract: next_ and cancelled_ are lock-free relaxed atomics
// (claims are idempotent and ordering-free; per-slot results are published
// to the caller by the join, not by the atomics); first_error_ is the only
// cross-thread mutable state and is guarded by mutex_.
class TrialPool {
 public:
  TrialPool(std::size_t trials, const std::function<void(std::size_t)>& body)
      : trials_(trials), body_(body) {}

  // Worker loop: claim → run → repeat, bailing out as soon as any worker
  // has failed. Only the first exception is kept; the pool is shutting down
  // either way, and one actionable error beats an arbitrary pile.
  void worker() {
    while (!cancelled_.load(std::memory_order_relaxed)) {
      const std::size_t trial = next_.fetch_add(1, std::memory_order_relaxed);
      if (trial >= trials_) return;
      try {
        body_(trial);
      } catch (...) {
        const MutexLock lock(mutex_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
        cancelled_.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Rethrows the first captured exception, if any. Must only be called
  // after every worker has been joined (the join is what orders the
  // workers' writes before this read).
  void rethrow_if_failed() {
    const MutexLock lock(mutex_);
    if (first_error_ != nullptr) std::rethrow_exception(first_error_);
  }

 private:
  const std::size_t trials_;
  const std::function<void(std::size_t)>& body_;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> cancelled_{false};
  Mutex mutex_;
  std::exception_ptr first_error_ DBS_GUARDED_BY(mutex_);
};

}  // namespace

void run_trials(std::size_t trials, std::size_t workers,
                const std::function<void(std::size_t)>& body) {
  // 0 auto-detects; the pool never exceeds the trial count (idle workers
  // are pure overhead).
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (workers > trials) workers = trials;
  if (workers <= 1) {
    // Serial path: run inline so exceptions propagate directly and the
    // parallel path has a bit-identical reference to be diffed against.
    for (std::size_t trial = 0; trial < trials; ++trial) body(trial);
    return;
  }
  TrialPool pool(trials, body);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&pool] { pool.worker(); });
  }
  for (std::thread& thread : threads) thread.join();
  pool.rethrow_if_failed();
}

std::vector<Measurement> measure_trials(const WorkloadConfig& config,
                                        Algorithm algorithm, ChannelId channels,
                                        double bandwidth, const Options& options,
                                        std::uint64_t base_seed) {
  // Each trial writes only its own slot, so no two threads ever touch the
  // same element and no ordering between trials is assumed.
  std::vector<Measurement> per_trial(options.trials);
  run_trials(options.trials, options.threads, [&](std::size_t trial) {
    per_trial[trial] = run_trial(config, algorithm, channels, bandwidth,
                                 options, base_seed, trial);
  });
  return per_trial;
}

Measurement average_over_trials(const WorkloadConfig& config, Algorithm algorithm,
                                ChannelId channels, double bandwidth,
                                const Options& options, std::uint64_t base_seed) {
  const std::vector<Measurement> per_trial =
      measure_trials(config, algorithm, channels, bandwidth, options, base_seed);
  // Reduce in trial order: floating-point addition is not associative, so a
  // fixed summation order is what keeps parallel == serial bit-for-bit.
  Measurement total;
  for (const Measurement& m : per_trial) {
    total.waiting_time += m.waiting_time;
    total.cost += m.cost;
    total.elapsed_ms += m.elapsed_ms;
  }
  const auto n = static_cast<double>(options.trials);
  return Measurement{total.waiting_time / n, total.cost / n, total.elapsed_ms / n};
}

void emit(const AsciiTable& table, const Options& options,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<double>>& csv_rows) {
  std::fputs(table.render().c_str(), stdout);
  if (!options.csv_path.empty()) {
    CsvWriter csv(options.csv_path, csv_header);
    for (const auto& row : csv_rows) csv.row_values(row);
    std::printf("csv: wrote %zu rows to %s\n", csv.rows_written(),
                options.csv_path.c_str());
  }
}

void banner(const std::string& figure, const std::string& description,
            const Options& options) {
  std::printf("== %s — %s (trials per point: %zu%s) ==\n", figure.c_str(),
              description.c_str(), options.trials, options.quick ? ", quick" : "");
}

}  // namespace dbs::bench
