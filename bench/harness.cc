#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"

namespace dbs::bench {

Options Options::parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.trials = 2;
    } else if (arg == "--trials" && i + 1 < argc) {
      options.trials = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.trials == 0) options.trials = 1;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--threads N] [--csv PATH] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return options;
}

Measurement measure(const Database& db, Algorithm algorithm, ChannelId channels,
                    double bandwidth, bool quick, std::uint64_t seed,
                    std::size_t cds_max_iterations) {
  ScheduleRequest request;
  request.algorithm = algorithm;
  request.channels = channels;
  request.bandwidth = bandwidth;
  request.gopt.seed = seed;
  request.portfolio.gopt.seed = seed;
  if (quick) {
    request.gopt.population = 60;
    request.gopt.generations = 150;
    request.gopt.stall_generations = 50;
    request.portfolio.gopt = request.gopt;
  }
  if (cds_max_iterations != 0) {
    request.drp_cds.cds.max_iterations = cds_max_iterations;
    request.portfolio.drp_cds.cds.max_iterations = cds_max_iterations;
    request.portfolio.kk_cds.max_iterations = cds_max_iterations;
  }
  if (algorithm == Algorithm::kPortfolio) {
    // Bench rows must stay seed-deterministic: give the race a budget no
    // racer ever exhausts, so every racer runs to completion and the winner
    // depends only on the seeds, never on host timing.
    request.portfolio_deadline_ms = 60'000.0;
  }
  const ScheduleResult result = schedule(db, request);
  return Measurement{result.waiting_time, result.cost, result.elapsed_ms};
}

namespace {

// Runs one seeded trial. Seeds are pre-assigned (base_seed + trial), so the
// result depends only on the trial index, never on scheduling order.
Measurement run_trial(const WorkloadConfig& config, Algorithm algorithm,
                      ChannelId channels, double bandwidth,
                      const Options& options, std::uint64_t base_seed,
                      std::size_t trial) {
  WorkloadConfig cfg = config;
  cfg.seed = base_seed + trial;
  const Database db = generate_database(cfg);
  return measure(db, algorithm, channels, bandwidth, options.quick, cfg.seed,
                 options.cds_max_iterations);
}

}  // namespace

void run_trials(std::size_t trials, std::size_t workers,
                const std::function<void(std::size_t)>& body) {
  // The pool itself moved to common/parallel.h (PR 9) so the optimizer
  // portfolio can race planners on it; the bench-facing name and contract
  // are unchanged.
  run_tasks(trials, workers, body);
}

std::vector<Measurement> measure_trials(const WorkloadConfig& config,
                                        Algorithm algorithm, ChannelId channels,
                                        double bandwidth, const Options& options,
                                        std::uint64_t base_seed) {
  // Each trial writes only its own slot, so no two threads ever touch the
  // same element and no ordering between trials is assumed.
  std::vector<Measurement> per_trial(options.trials);
  run_trials(options.trials, options.threads, [&](std::size_t trial) {
    per_trial[trial] = run_trial(config, algorithm, channels, bandwidth,
                                 options, base_seed, trial);
  });
  return per_trial;
}

Measurement average_over_trials(const WorkloadConfig& config, Algorithm algorithm,
                                ChannelId channels, double bandwidth,
                                const Options& options, std::uint64_t base_seed) {
  const std::vector<Measurement> per_trial =
      measure_trials(config, algorithm, channels, bandwidth, options, base_seed);
  // Reduce in trial order: floating-point addition is not associative, so a
  // fixed summation order is what keeps parallel == serial bit-for-bit.
  Measurement total;
  for (const Measurement& m : per_trial) {
    total.waiting_time += m.waiting_time;
    total.cost += m.cost;
    total.elapsed_ms += m.elapsed_ms;
  }
  const auto n = static_cast<double>(options.trials);
  return Measurement{total.waiting_time / n, total.cost / n, total.elapsed_ms / n};
}

void emit(const AsciiTable& table, const Options& options,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<double>>& csv_rows) {
  std::fputs(table.render().c_str(), stdout);
  if (!options.csv_path.empty()) {
    CsvWriter csv(options.csv_path, csv_header);
    for (const auto& row : csv_rows) csv.row_values(row);
    std::printf("csv: wrote %zu rows to %s\n", csv.rows_written(),
                options.csv_path.c_str());
  }
}

void banner(const std::string& figure, const std::string& description,
            const Options& options) {
  std::printf("== %s — %s (trials per point: %zu%s) ==\n", figure.c_str(),
              description.c_str(), options.trials, options.quick ? ", quick" : "");
}

}  // namespace dbs::bench
