#include "harness.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/csv.h"

namespace dbs::bench {

Options Options::parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.trials = 2;
    } else if (arg == "--trials" && i + 1 < argc) {
      options.trials = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.trials == 0) options.trials = 1;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--threads N] [--csv PATH] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return options;
}

Measurement measure(const Database& db, Algorithm algorithm, ChannelId channels,
                    double bandwidth, bool quick, std::uint64_t seed) {
  ScheduleRequest request;
  request.algorithm = algorithm;
  request.channels = channels;
  request.bandwidth = bandwidth;
  request.gopt.seed = seed;
  if (quick) {
    request.gopt.population = 60;
    request.gopt.generations = 150;
    request.gopt.stall_generations = 50;
  }
  const ScheduleResult result = schedule(db, request);
  return Measurement{result.waiting_time, result.cost, result.elapsed_ms};
}

namespace {

// Resolves the worker count: explicit --threads wins, 0 auto-detects, and
// the pool never exceeds the trial count (idle workers are pure overhead).
std::size_t worker_count(const Options& options) {
  std::size_t workers = options.threads;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  return workers < options.trials ? workers : options.trials;
}

// Runs one seeded trial. Seeds are pre-assigned (base_seed + trial), so the
// result depends only on the trial index, never on scheduling order.
Measurement run_trial(const WorkloadConfig& config, Algorithm algorithm,
                      ChannelId channels, double bandwidth,
                      const Options& options, std::uint64_t base_seed,
                      std::size_t trial) {
  WorkloadConfig cfg = config;
  cfg.seed = base_seed + trial;
  const Database db = generate_database(cfg);
  return measure(db, algorithm, channels, bandwidth, options.quick, cfg.seed);
}

}  // namespace

std::vector<Measurement> measure_trials(const WorkloadConfig& config,
                                        Algorithm algorithm, ChannelId channels,
                                        double bandwidth, const Options& options,
                                        std::uint64_t base_seed) {
  std::vector<Measurement> per_trial(options.trials);
  const std::size_t workers = worker_count(options);
  if (workers <= 1) {
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      per_trial[trial] = run_trial(config, algorithm, channels, bandwidth,
                                   options, base_seed, trial);
    }
    return per_trial;
  }
  // Fixed-size pool over an atomic work index: each worker claims the next
  // unclaimed trial and writes only its own slot, so no two threads ever
  // touch the same element and no ordering between trials is assumed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t trial = next.fetch_add(1); trial < options.trials;
           trial = next.fetch_add(1)) {
        per_trial[trial] = run_trial(config, algorithm, channels, bandwidth,
                                     options, base_seed, trial);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return per_trial;
}

Measurement average_over_trials(const WorkloadConfig& config, Algorithm algorithm,
                                ChannelId channels, double bandwidth,
                                const Options& options, std::uint64_t base_seed) {
  const std::vector<Measurement> per_trial =
      measure_trials(config, algorithm, channels, bandwidth, options, base_seed);
  // Reduce in trial order: floating-point addition is not associative, so a
  // fixed summation order is what keeps parallel == serial bit-for-bit.
  Measurement total;
  for (const Measurement& m : per_trial) {
    total.waiting_time += m.waiting_time;
    total.cost += m.cost;
    total.elapsed_ms += m.elapsed_ms;
  }
  const auto n = static_cast<double>(options.trials);
  return Measurement{total.waiting_time / n, total.cost / n, total.elapsed_ms / n};
}

void emit(const AsciiTable& table, const Options& options,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<double>>& csv_rows) {
  std::fputs(table.render().c_str(), stdout);
  if (!options.csv_path.empty()) {
    CsvWriter csv(options.csv_path, csv_header);
    for (const auto& row : csv_rows) csv.row_values(row);
    std::printf("csv: wrote %zu rows to %s\n", csv.rows_written(),
                options.csv_path.c_str());
  }
}

void banner(const std::string& figure, const std::string& description,
            const Options& options) {
  std::printf("== %s — %s (trials per point: %zu%s) ==\n", figure.c_str(),
              description.c_str(), options.trials, options.quick ? ", quick" : "");
}

}  // namespace dbs::bench
