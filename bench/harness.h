// Shared driver for the figure-reproduction benches. Each bench binary
// defines one experiment of the paper's §4 and prints the same series the
// paper plots; this harness supplies option parsing, trial averaging (serial
// or thread-pooled, bit-identical either way), table rendering and CSV
// output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/scheduler.h"
#include "common/table.h"
#include "model/database.h"
#include "workload/generator.h"

namespace dbs::bench {

/// \brief Command-line options shared by every figure bench.
struct Options {
  std::size_t trials = 8;   ///< seeds averaged per data point
  std::size_t threads = 0;  ///< worker threads for trial averaging; 0 = one
                            ///< per hardware core (capped at the trial count)
  std::string csv_path;     ///< empty = no CSV dump
  bool quick = false;       ///< --quick: 2 trials, reduced GOPT budget

  /// CDS iteration cap for kDrpCds trials; 0 (the default) runs to
  /// convergence as the paper does. The perfsuite's million-item scale rows
  /// set this: CDS-to-convergence takes Θ(N) iterations, so an unbounded run
  /// at N=10^6 would measure the workload size, not the per-iteration cost
  /// the rows are pinned to track.
  std::size_t cds_max_iterations = 0;

  /// \brief Parses `--trials N`, `--threads N`, `--csv PATH`, `--quick`.
  ///
  /// `argc`/`argv` are the untouched `main` arguments; flag values must
  /// follow their flag as the next argument. Unknown flags abort with a
  /// usage message (exit status 2). `--trials 0` is clamped to 1;
  /// `--threads 0` (the default) means auto-detect.
  static Options parse(int argc, char** argv);
};

/// \brief The paper's default simulation parameters (Table 5 midpoints).
struct Defaults {
  std::size_t items = 120;
  ChannelId channels = 6;
  double skewness = 0.8;
  double diversity = 2.0;
  double bandwidth = 10.0;
};

/// \brief Measurement of one algorithm on one workload (or the mean of
/// several trials — see average_over_trials).
struct Measurement {
  double waiting_time = 0.0;  ///< W_b (paper Eq. 2) at the requested bandwidth
  double cost = 0.0;          ///< Σ F_i·Z_i (paper Eq. 3)
  double elapsed_ms = 0.0;    ///< wall-clock runtime of the algorithm proper
};

/// \brief Runs `algorithm` on `db` and reports waiting time / cost / runtime.
///
/// `channels` and `bandwidth` parameterize the schedule request; `seed`
/// seeds the stochastic algorithms (GOPT's GA, both standalone and inside
/// the portfolio), so equal seeds give bit-identical cost and waiting time.
/// When `quick` is set, GOPT receives a scaled-down budget (population 60,
/// 150 generations) for smoke runs. `cds_max_iterations` follows the
/// Options convention (0 = unbounded). kPortfolio runs get a 60 s race
/// deadline no racer exhausts, so bench portfolio results stay
/// seed-deterministic instead of host-timing-dependent.
Measurement measure(const Database& db, Algorithm algorithm, ChannelId channels,
                    double bandwidth, bool quick, std::uint64_t seed,
                    std::size_t cds_max_iterations = 0);

/// \brief Averages `measure` over `options.trials` seeded workloads drawn
/// from `config` (trial t uses seed `base_seed + t` for both the workload
/// and the algorithm).
///
/// Trials are independent, so they run on a fixed-size pool of
/// `options.threads` workers (0 = one per hardware core). Each trial writes
/// only its own slot and the reduction always sums in trial order, so the
/// returned waiting time and cost are bit-identical to the serial path no
/// matter the thread count; only `elapsed_ms` (a wall-clock reading) varies
/// between runs.
Measurement average_over_trials(const WorkloadConfig& config, Algorithm algorithm,
                                ChannelId channels, double bandwidth,
                                const Options& options, std::uint64_t base_seed);

/// \brief Runs `measure` once per trial as average_over_trials does (same
/// pool, same per-trial seeds) and returns the `options.trials` individual
/// Measurements in trial order. Used by perfsuite, which needs the per-trial
/// sample to report medians and IQRs instead of means.
std::vector<Measurement> measure_trials(const WorkloadConfig& config,
                                        Algorithm algorithm, ChannelId channels,
                                        double bandwidth, const Options& options,
                                        std::uint64_t base_seed);

/// \brief Runs `body(trial)` for every trial in [0, trials) on a fixed-size
/// worker pool — the primitive underneath measure_trials. Since PR 9 the
/// pool itself lives in common/parallel.h (dbs::run_tasks, shared with the
/// optimizer portfolio); this wrapper keeps the bench-facing name.
///
/// `workers` follows the --threads convention: 0 auto-detects one worker per
/// hardware core, the pool never exceeds `trials`, and a count of one runs
/// every trial inline on the calling thread. Trial indices are claimed from
/// a lock-free atomic counter, so each index is executed exactly once with
/// no ordering guarantee between indices; `body` must only touch
/// trial-private state (e.g. slot `trial` of a pre-sized vector).
///
/// Failure contract (tests/harness_test.cc): if any `body` call throws, the
/// pool stops handing out new trials, lets in-flight trials finish, joins
/// every worker, and rethrows the first exception on the calling thread —
/// a throwing trial can neither deadlock the pool nor leak a joinable
/// thread. Later exceptions (at most one per worker) are discarded.
void run_trials(std::size_t trials, std::size_t workers,
                const std::function<void(std::size_t)>& body);

/// \brief Emits `table` to stdout and, when `--csv` was given, writes
/// `csv_header` + `csv_rows` to the CSV file (one value per cell, same
/// column order as the header).
void emit(const AsciiTable& table, const Options& options,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<double>>& csv_rows);

/// \brief Prints the standard bench banner: `figure` identifies the paper
/// artifact, `description` the sweep, and `options` contributes the trial /
/// quick-mode suffix.
void banner(const std::string& figure, const std::string& description,
            const Options& options);

}  // namespace dbs::bench
