// Shared driver for the figure-reproduction benches. Each bench binary
// defines one experiment of the paper's §4 and prints the same series the
// paper plots; this harness supplies option parsing, trial averaging, table
// rendering and CSV output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/scheduler.h"
#include "common/table.h"
#include "model/database.h"
#include "workload/generator.h"

namespace dbs::bench {

/// Command-line options shared by every figure bench.
struct Options {
  std::size_t trials = 8;   ///< seeds averaged per data point
  std::string csv_path;     ///< empty = no CSV dump
  bool quick = false;       ///< --quick: 2 trials, reduced GOPT budget

  /// Parses --trials N, --csv PATH, --quick. Unknown flags abort with usage.
  static Options parse(int argc, char** argv);
};

/// The paper's default simulation parameters (Table 5 midpoints).
struct Defaults {
  std::size_t items = 120;
  ChannelId channels = 6;
  double skewness = 0.8;
  double diversity = 2.0;
  double bandwidth = 10.0;
};

/// Measurement of one algorithm on one workload.
struct Measurement {
  double waiting_time = 0.0;
  double cost = 0.0;
  double elapsed_ms = 0.0;
};

/// Runs `algorithm` on `db` and reports waiting time / cost / runtime.
/// GOPT receives a budget scaled down when `quick` is set.
Measurement measure(const Database& db, Algorithm algorithm, ChannelId channels,
                    double bandwidth, bool quick, std::uint64_t seed);

/// Averages `measure` over `trials` seeded workloads drawn from `config`
/// (seed = base_seed + trial).
Measurement average_over_trials(const WorkloadConfig& config, Algorithm algorithm,
                                ChannelId channels, double bandwidth,
                                const Options& options, std::uint64_t base_seed);

/// Emits the table to stdout and, when --csv was given, writes
/// header+rows to the CSV file.
void emit(const AsciiTable& table, const Options& options,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<double>>& csv_rows);

/// Prints the standard bench banner (figure id + sweep description).
void banner(const std::string& figure, const std::string& description,
            const Options& options);

}  // namespace dbs::bench
