// Microbenchmarks (google-benchmark) for the primitive operations behind the
// paper's complexity analysis: the O(N) partition scan, the O(1) Δc formula,
// single CDS sweeps, full DRP / DRP-CDS / VF^K / GOPT runs, and the workload
// generator and simulator substrates.
#include <benchmark/benchmark.h>

#include "baselines/annealing.h"
#include "baselines/gopt.h"
#include "baselines/vfk.h"
#include "common/distributions.h"
#include "replication/min_wait.h"
#include "core/cds.h"
#include "core/drp.h"
#include "core/drp_cds.h"
#include "core/partition.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace {

using namespace dbs;

Database make_db(std::size_t n, std::uint64_t seed = 1) {
  return generate_database({.items = n, .skewness = 0.8, .diversity = 2.0,
                            .seed = seed});
}

void BM_ZipfGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf_probabilities(n, 0.8));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ZipfGeneration)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_database({.items = n, .skewness = 0.8, .diversity = 2.0,
                           .seed = ++seed}));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Range(64, 4096);

void BM_PartitionScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_split(sums, 0, n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PartitionScan)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_MoveGain(benchmark::State& state) {
  const Database db = make_db(512);
  const Allocation alloc = run_drp(db, 8).allocation;
  ItemId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.move_gain(id, static_cast<ChannelId>(id % 8)));
    id = (id + 1) % 512;
  }
}
BENCHMARK(BM_MoveGain);

void BM_CdsSingleSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  const Allocation start = run_drp(db, 8).allocation;
  for (auto _ : state) {
    Allocation alloc = start;
    benchmark::DoNotOptimize(best_move(alloc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CdsSingleSweep)->Range(64, 2048)->Complexity(benchmark::oN);

void BM_DrpFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_drp(db, 8));
  }
}
BENCHMARK(BM_DrpFull)->Range(64, 4096);

void BM_DrpCdsFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_drp_cds(db, 8));
  }
}
BENCHMARK(BM_DrpCdsFull)->Range(64, 1024);

void BM_Vfk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_vfk(db, 8));
  }
}
BENCHMARK(BM_Vfk)->Range(64, 1024);

void BM_GoptSmallBudget(benchmark::State& state) {
  const Database db = make_db(120);
  GoptOptions o;
  o.population = 60;
  o.generations = 100;
  o.stall_generations = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_gopt(db, 6, o));
  }
}
BENCHMARK(BM_GoptSmallBudget)->Unit(benchmark::kMillisecond);

void BM_CdsScanEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  const Allocation start = run_drp(db, 10).allocation;
  for (auto _ : state) {
    Allocation alloc = start;
    CdsOptions o;
    o.engine = CdsEngine::kScan;
    benchmark::DoNotOptimize(run_cds(alloc, o));
  }
}
BENCHMARK(BM_CdsScanEngine)->Range(128, 2048);

void BM_CdsIndexedEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Database db = make_db(n);
  const Allocation start = run_drp(db, 10).allocation;
  for (auto _ : state) {
    Allocation alloc = start;
    CdsOptions o;
    o.engine = CdsEngine::kIndexed;
    benchmark::DoNotOptimize(run_cds(alloc, o));
  }
}
BENCHMARK(BM_CdsIndexedEngine)->Range(128, 2048);

void BM_Annealing(benchmark::State& state) {
  const Database db = make_db(120);
  AnnealOptions o;
  o.steps = 50'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_annealing(db, 6, o));
  }
}
BENCHMARK(BM_Annealing)->Unit(benchmark::kMillisecond);

void BM_ExpectedMinUniform(benchmark::State& state) {
  const std::vector<double> cycles = {3.0, 7.5, 11.0, 4.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_min_uniform(cycles));
  }
}
BENCHMARK(BM_ExpectedMinUniform);

void BM_SimulatorThroughput(benchmark::State& state) {
  const Database db = make_db(100);
  const Allocation alloc = run_drp_cds(db, 6).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const auto trace = generate_trace(db, {.requests = 5000, .arrival_rate = 10.0,
                                         .seed = 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(program, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_AnalyticReplay(benchmark::State& state) {
  const Database db = make_db(100);
  const Allocation alloc = run_drp_cds(db, 6).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const auto trace = generate_trace(db, {.requests = 5000, .arrival_rate = 10.0,
                                         .seed = 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_analytic(program, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_AnalyticReplay)->Unit(benchmark::kMillisecond);

}  // namespace
