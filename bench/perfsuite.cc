// perfsuite — the repo's performance trajectory recorder.
//
// Runs a pinned matrix of DRP / DRP-CDS / VF^K / GOPT configurations (the
// paper's Table-5 midpoints plus an N=2000 scale point) and emits a
// machine-readable BENCH_<sha>.json with the per-config median and IQR of
// wall time and cost plus host metadata. tools/perf_compare.py diffs two
// such files and gates CI on >15% median wall-time regressions and on any
// cost drift (costs are seeded, hence deterministic).
//
//   perfsuite [--out PATH] [--sha LABEL] [--trials N] [--gate]
//             [--metrics-out PATH] [--trace-out PATH]
//
// --metrics-out dumps the process-global metrics registry (every counter the
// schedulers incremented across the whole run) as dbs-metrics-v1 JSON —
// pretty-print it with tools/obs_dump. --trace-out enables the scoped-span
// tracer before the matrix runs and writes Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto. Both files are empty shells when the
// build has DBS_OBS=OFF, since the no-op macros record nothing.
//
// --gate shrinks the run for CI: 3 trials and the heavy scale-point GOPT
// config skipped (compare gate files against a full baseline with
// perf_compare.py --subset). Trials always run serially, one at a time, so
// wall times measure the algorithm, not scheduler contention; per-trial
// seeds are fixed, so every cost in the file is reproducible bit-for-bit.
//
// Every trial is bracketed by a fixed floating-point calibration spin whose
// wall time probes the host's effective speed at that instant (recorded as
// "calib_ms"). perf_compare gates the minimum wall/calibration ratio, which
// cancels host-wide clock swings — shared and burstable cloud machines
// routinely vary 2x minute to minute, which would otherwise make any fixed
// wall-time threshold meaningless.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server_loop.h"
#include "workload/generator.h"

namespace {

using dbs::Algorithm;
using dbs::ChannelId;
using dbs::WorkloadConfig;
using dbs::bench::Measurement;
using dbs::bench::Options;

struct SuiteConfig {
  const char* name;       // stable key perf_compare matches on
  Algorithm algorithm;
  std::size_t items;
  ChannelId channels;
  double skewness;
  double diversity;
  double bandwidth;
  std::uint64_t base_seed;
  bool heavy;                          // skipped in --gate mode
  std::size_t cds_max_iterations = 0;  // 0 = run CDS to convergence
  bool serve_drift = false;  // scripted server-loop scenario, not one planner run
};

// The pinned matrix. Midpoint rows use the paper's Table-5 midpoints
// (N=120, K=6, θ=0.8, Φ=2, b=10) with the same seed base as the figure
// benches; scale rows stress the hot paths at N=2000, K=10. Changing any
// row invalidates comparisons against older BENCH files — add new rows
// instead of editing existing ones.
//
// The scale1e5/scale1e6 rows track the columnar + candidate-index hot path
// (docs/ARCHITECTURE.md §3/§5). Their drp-cds runs cap CDS at 64 iterations:
// CDS-to-convergence applies Θ(N) moves, so an unbounded row would time the
// move count, not the per-iteration machinery these rows exist to pin.
// Both land above kAutoIndexedThreshold, so kAuto gives them the indexed
// engine while every older row keeps the scan engine (and its exact costs).
constexpr double kSkew = 0.8, kPhi = 2.0, kBandwidth = 10.0;
const SuiteConfig kMatrix[] = {
    {"midpoint/drp", Algorithm::kDrp, 120, 6, kSkew, kPhi, kBandwidth, 1000, false},
    {"midpoint/drp-cds", Algorithm::kDrpCds, 120, 6, kSkew, kPhi, kBandwidth, 1000,
     false},
    {"midpoint/vfk", Algorithm::kVfk, 120, 6, kSkew, kPhi, kBandwidth, 1000, false},
    {"midpoint/gopt", Algorithm::kGopt, 120, 6, kSkew, kPhi, kBandwidth, 1000, false},
    // The budgeted optimizer portfolio (DESIGN.md §13) on the same midpoint
    // workloads. The harness gives bench portfolio runs a deadline no racer
    // exhausts, so all three racers finish and the winner's cost is as
    // seed-deterministic as every other row; by construction it is ≤ the
    // midpoint/drp-cds cost at the same trial seeds. wall_ms is the whole
    // race (racers run concurrently, timeshared on small hosts).
    {"midpoint/portfolio", Algorithm::kPortfolio, 120, 6, kSkew, kPhi, kBandwidth,
     1000, false},
    {"scale2000/drp", Algorithm::kDrp, 2000, 10, kSkew, kPhi, kBandwidth, 7000, false},
    {"scale2000/drp-cds", Algorithm::kDrpCds, 2000, 10, kSkew, kPhi, kBandwidth, 7000,
     false},
    {"scale2000/vfk", Algorithm::kVfk, 2000, 10, kSkew, kPhi, kBandwidth, 7000, false},
    {"scale2000/gopt", Algorithm::kGopt, 2000, 10, kSkew, kPhi, kBandwidth, 7000,
     true},
    {"scale1e5/drp", Algorithm::kDrp, 100000, 64, kSkew, kPhi, kBandwidth, 9000,
     true},
    {"scale1e5/drp-cds", Algorithm::kDrpCds, 100000, 64, kSkew, kPhi, kBandwidth,
     9000, true, 64},
    {"scale1e6/drp", Algorithm::kDrp, 1000000, 512, kSkew, kPhi, kBandwidth, 9100,
     true},
    {"scale1e6/drp-cds", Algorithm::kDrpCds, 1000000, 512, kSkew, kPhi, kBandwidth,
     9100, true, 64},
    // The online re-allocation service (DESIGN.md §12): a scripted 30-epoch
    // hot-set-rotation scenario through BroadcastServerLoop. wall_ms is the
    // summed observe_window() wall over all epochs (estimate + repair + any
    // escalated rebuilds), so wall/30 is the mean epoch latency; the extra
    // "escalations" metric is the per-trial full-rebuild count (the
    // escalation rate of the control loop — seeded, hence deterministic).
    {"serve_drift/rotate30", Algorithm::kDrpCds, 120, 6, kSkew, kPhi, kBandwidth,
     11000, false, 0, true},
};

// One scripted serve_drift trial: 6 warm-up epochs of stable Zipf traffic,
// 18 epochs with the popularity ranks rotating by 7 positions each (the
// drift that forces repairs and occasional escalations), then 6 steady
// epochs back. Everything derives from `seed`, so cost/wait/escalations are
// reproducible bit-for-bit like every other row.
struct ServeDriftSample {
  double wall_ms = 0.0;        // Σ observe_window wall across the 30 epochs
  double cost = 0.0;           // final on-air program cost
  double waiting_time = 0.0;   // final on-air W_b
  double escalations = 0.0;    // epochs that ran the full DRP-CDS rebuild
};

ServeDriftSample run_serve_drift_trial(const SuiteConfig& config,
                                       std::uint64_t seed) {
  dbs::Rng rng(seed);
  std::vector<double> sizes(config.items);
  for (double& z : sizes) z = dbs::sample_item_size(rng, config.diversity);
  dbs::BroadcastServerLoop server(
      std::move(sizes),
      {.channels = config.channels, .bandwidth = config.bandwidth});
  std::vector<double> freqs =
      dbs::zipf_probabilities(config.items, config.skewness);

  ServeDriftSample sample;
  constexpr std::size_t kEpochs = 30, kWindow = 3000;
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch >= 6 && epoch < 24) {
      std::rotate(freqs.begin(), freqs.begin() + 7, freqs.end());
    }
    const dbs::AliasSampler sampler(freqs);
    std::vector<dbs::Request> window;
    window.reserve(kWindow);
    for (std::size_t i = 0; i < kWindow; ++i) {
      window.push_back({static_cast<double>(i),
                        static_cast<dbs::ItemId>(sampler.sample(rng))});
    }
    const dbs::Stopwatch watch;
    const dbs::EpochReport report = server.observe_window(window);
    sample.wall_ms += watch.millis();
    sample.escalations += report.escalated ? 1.0 : 0.0;
  }
  const std::shared_ptr<const dbs::ProgramSnapshot> final = server.snapshot();
  sample.cost = final->cost;
  sample.waiting_time = final->waiting_time;
  return sample;
}

// Reads the first "model name" line of /proc/cpuinfo; "unknown" elsewhere.
std::string cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[512];
  std::string model = "unknown";
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model = colon + 1;
        while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
          model.erase(model.begin());
        }
        while (!model.empty() && (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void json_number_list(std::FILE* f, const std::vector<double>& values) {
  std::fputc('[', f);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%s%.17g", i == 0 ? "" : ", ", values[i]);
  }
  std::fputc(']', f);
}

// Median/IQR block for one metric: the per-trial sample is persisted so
// perf_compare can diff files with different trial counts over the common
// seed prefix.
void json_metric(std::FILE* f, const char* key, const std::vector<double>& values) {
  const double p25 = dbs::percentile(values, 0.25);
  const double p75 = dbs::percentile(values, 0.75);
  std::fprintf(f, "      \"%s\": {\"median\": %.17g, \"p25\": %.17g, "
               "\"p75\": %.17g, \"iqr\": %.17g, \"per_trial\": ",
               key, dbs::percentile(values, 0.5), p25, p75, p75 - p25);
  json_number_list(f, values);
  std::fputs("}", f);
}

// The calibration spin: a serially-dependent FP chain whose work never
// changes, so its wall time measures only how fast the host runs right now.
// The volatile sink keeps the loop from being folded away; the dependent
// multiply-add chain keeps it from vectorizing, so the spin scales with
// clock speed the same way the schedulers' inner loops do.
volatile double g_calibration_sink = 0.0;

double calibration_spin_ms() {
  const dbs::Stopwatch watch;
  double acc = 1.0;
  for (int i = 0; i < 1'000'000; ++i) acc = acc * 1.0000000001 + 1e-9;
  g_calibration_sink = acc;
  return watch.millis();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--sha LABEL] [--trials N] [--gate]\n"
               "          [--metrics-out PATH] [--trace-out PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string sha = "local";
  Options options;
  options.trials = 9;
  options.threads = 1;  // always serial: wall times must not share cores,
                        // and calibration spins must bracket each trial
  bool gate = false;
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--sha" && i + 1 < argc) {
      sha = argv[++i];
    } else if (arg == "--trials" && i + 1 < argc) {
      options.trials = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.trials == 0) options.trials = 1;
    } else if (arg == "--gate") {
      gate = true;
      options.trials = 3;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (out_path.empty()) out_path = "BENCH_" + sha + ".json";
  // Spans only cost anything when something will consume them; wall times in
  // the emitted BENCH file therefore include tracing overhead iff the caller
  // asked for a trace.
  if (!trace_out.empty()) dbs::obs::Tracer::global().enable();

  std::printf("== perfsuite — %zu trials/config, %s mode ==\n", options.trials,
              gate ? "gate" : "full");

  dbs::AsciiTable table({"config", "wall ms (median)", "wall ms (IQR)",
                         "calib ms (median)", "cost (median)"});
  struct Row {
    const SuiteConfig* config;
    std::vector<double> wall, calib, cost, wait;
    std::vector<double> escalations;  // serve_drift rows only
  };
  std::vector<Row> rows;
  for (const SuiteConfig& config : kMatrix) {
    if (gate && config.heavy) {
      std::printf("   %-18s skipped (heavy config, gate mode)\n", config.name);
      continue;
    }
    const WorkloadConfig workload{.items = config.items,
                                  .skewness = config.skewness,
                                  .diversity = config.diversity,
                                  .seed = 0};
    // Trials run one at a time so each can be bracketed by calibration
    // spins; measure_trials seeds trial t of a batch as base + t, so a
    // 1-trial batch at base + t reproduces exactly the same measurement.
    Row row{&config, {}, {}, {}, {}, {}};
    Options one_trial = options;
    one_trial.trials = 1;
    one_trial.cds_max_iterations = config.cds_max_iterations;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const double calib_before = calibration_spin_ms();
      double wall_ms, cost, wait;
      if (config.serve_drift) {
        const ServeDriftSample sample =
            run_serve_drift_trial(config, config.base_seed + trial);
        wall_ms = sample.wall_ms;
        cost = sample.cost;
        wait = sample.waiting_time;
        row.escalations.push_back(sample.escalations);
      } else {
        const std::vector<Measurement> batch = dbs::bench::measure_trials(
            workload, config.algorithm, config.channels, config.bandwidth,
            one_trial, config.base_seed + trial);
        const Measurement& m = batch.front();
        wall_ms = m.elapsed_ms;
        cost = m.cost;
        wait = m.waiting_time;
      }
      const double calib_after = calibration_spin_ms();
      row.wall.push_back(wall_ms);
      // Timing noise only ever adds time, so the smaller spin is the truer
      // probe of the host's speed around this trial; a preemption hitting
      // one spin must not masquerade as the machine being slow.
      row.calib.push_back(std::min(calib_before, calib_after));
      row.cost.push_back(cost);
      row.wait.push_back(wait);
    }
    table.add_row(config.name,
                  {dbs::percentile(row.wall, 0.5),
                   dbs::percentile(row.wall, 0.75) - dbs::percentile(row.wall, 0.25),
                   dbs::percentile(row.calib, 0.5),
                   dbs::percentile(row.cost, 0.5)},
                  3);
    rows.push_back(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perfsuite: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"dbs-bench-v1\",\n");
  std::fprintf(f, "  \"sha\": \"%s\",\n", json_escape(sha).c_str());
  std::fprintf(f, "  \"mode\": \"%s\",\n", gate ? "gate" : "full");
  std::fprintf(f, "  \"trials\": %zu,\n", options.trials);
  std::fprintf(f, "  \"threads\": %zu,\n", options.threads);
  std::fprintf(f, "  \"host\": {\"cpu_model\": \"%s\", \"hardware_threads\": %u, "
               "\"compiler\": \"%s\", \"build_flavor\": \"%s\"},\n",
               json_escape(cpu_model()).c_str(),
               std::thread::hardware_concurrency(), json_escape(__VERSION__).c_str(),
               json_escape(DBS_BENCH_FLAVOR).c_str());
  std::fputs("  \"configs\": [\n", f);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SuiteConfig& config = *rows[i].config;
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n", config.name);
    std::fprintf(f, "      \"algorithm\": \"%s\",\n",
                 std::string(dbs::algorithm_name(config.algorithm)).c_str());
    std::fprintf(f, "      \"items\": %zu, \"channels\": %u, "
                 "\"skewness\": %.17g, \"diversity\": %.17g, "
                 "\"bandwidth\": %.17g, \"base_seed\": %llu, "
                 "\"cds_max_iterations\": %zu,\n",
                 config.items, static_cast<unsigned>(config.channels),
                 config.skewness, config.diversity, config.bandwidth,
                 static_cast<unsigned long long>(config.base_seed),
                 config.cds_max_iterations);
    json_metric(f, "wall_ms", rows[i].wall);
    std::fputs(",\n", f);
    json_metric(f, "calib_ms", rows[i].calib);
    std::fputs(",\n", f);
    json_metric(f, "cost", rows[i].cost);
    std::fputs(",\n", f);
    json_metric(f, "wait", rows[i].wait);
    if (!rows[i].escalations.empty()) {
      std::fputs(",\n", f);
      json_metric(f, "escalations", rows[i].escalations);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fputs("  ]\n}\n", f);
  std::fclose(f);
  std::printf("perfsuite: wrote %s (%zu configs)\n", out_path.c_str(), rows.size());

  if (!metrics_out.empty()) {
    const dbs::obs::MetricsSnapshot snapshot =
        dbs::obs::MetricsRegistry::global().snapshot();
    if (!dbs::obs::write_json_file(snapshot, metrics_out)) {
      std::fprintf(stderr, "perfsuite: cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("perfsuite: wrote %s (%zu instruments)\n", metrics_out.c_str(),
                snapshot.size());
  }
  if (!trace_out.empty()) {
    dbs::obs::Tracer& tracer = dbs::obs::Tracer::global();
    tracer.disable();
    if (!tracer.write_json_file(trace_out)) {
      std::fprintf(stderr, "perfsuite: cannot open %s for writing\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("perfsuite: wrote %s (%zu events, %llu dropped)\n",
                trace_out.c_str(), tracer.events().size(),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  return 0;
}
