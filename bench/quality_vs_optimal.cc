// Quality audit against the exact optimum (paper §4's "local optimum is very
// close to the global optimum" claim): on small instances where the
// branch-and-bound solver is exact, report each heuristic's mean excess over
// optimal cost.
#include <cstdio>

#include "baselines/brute_force.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dbs;
  using namespace dbs::bench;
  Options options = Options::parse(argc, argv);
  const Defaults d;
  banner("Quality vs exact optimum",
         "mean cost excess over brute-force optimum (N=14, K=4)", options);

  const std::vector<Algorithm> algos = {Algorithm::kVfk, Algorithm::kGreedy,
                                        Algorithm::kDrp, Algorithm::kDrpCds,
                                        Algorithm::kOrderedDp, Algorithm::kGopt};
  const std::size_t instances = options.quick ? 5 : 20;

  std::vector<double> excess(algos.size(), 0.0);
  std::size_t solved = 0;
  for (std::size_t trial = 0; trial < instances; ++trial) {
    const Database db = generate_database({.items = 14, .skewness = d.skewness,
                                           .diversity = d.diversity,
                                           .seed = 11000 + trial});
    const auto exact = brute_force_optimal(db, 4);
    if (!exact.has_value()) continue;
    ++solved;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const Measurement m = measure(db, algos[a], 4, d.bandwidth, options.quick,
                                    11000 + trial);
      excess[a] += (m.cost - exact->cost) / exact->cost;
    }
  }

  AsciiTable table({"algorithm", "mean excess over optimal (%)"});
  std::vector<std::vector<double>> rows;
  for (std::size_t a = 0; a < algos.size(); ++a) {
    const double pct = 100.0 * excess[a] / static_cast<double>(solved);
    table.add_row(std::string(algorithm_name(algos[a])), {pct}, 2);
    rows.push_back({static_cast<double>(a), pct});
  }
  std::printf("instances solved exactly: %zu\n", solved);
  emit(table, options, {"algorithm_index", "excess_pct"}, rows);
  std::puts("expect: drp-cds and gopt within a few percent of optimal "
            "(paper reports ~3% for DRP-CDS); vfk far above on diverse data.");
  return 0;
}
