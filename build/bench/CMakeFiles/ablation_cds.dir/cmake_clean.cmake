file(REMOVE_RECURSE
  "CMakeFiles/ablation_cds.dir/ablation_cds.cc.o"
  "CMakeFiles/ablation_cds.dir/ablation_cds.cc.o.d"
  "ablation_cds"
  "ablation_cds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
