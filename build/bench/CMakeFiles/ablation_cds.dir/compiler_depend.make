# Empty compiler generated dependencies file for ablation_cds.
# This may be replaced when dependencies are built.
