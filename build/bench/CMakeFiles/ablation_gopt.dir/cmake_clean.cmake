file(REMOVE_RECURSE
  "CMakeFiles/ablation_gopt.dir/ablation_gopt.cc.o"
  "CMakeFiles/ablation_gopt.dir/ablation_gopt.cc.o.d"
  "ablation_gopt"
  "ablation_gopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
