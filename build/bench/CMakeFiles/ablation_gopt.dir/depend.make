# Empty dependencies file for ablation_gopt.
# This may be replaced when dependencies are built.
