file(REMOVE_RECURSE
  "CMakeFiles/ablation_split.dir/ablation_split.cc.o"
  "CMakeFiles/ablation_split.dir/ablation_split.cc.o.d"
  "ablation_split"
  "ablation_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
