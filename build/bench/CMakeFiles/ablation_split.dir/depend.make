# Empty dependencies file for ablation_split.
# This may be replaced when dependencies are built.
