file(REMOVE_RECURSE
  "CMakeFiles/ablation_swap.dir/ablation_swap.cc.o"
  "CMakeFiles/ablation_swap.dir/ablation_swap.cc.o.d"
  "ablation_swap"
  "ablation_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
