# Empty compiler generated dependencies file for ablation_swap.
# This may be replaced when dependencies are built.
