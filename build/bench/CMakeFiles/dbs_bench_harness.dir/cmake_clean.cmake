file(REMOVE_RECURSE
  "CMakeFiles/dbs_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dbs_bench_harness.dir/harness.cc.o.d"
  "libdbs_bench_harness.a"
  "libdbs_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
