file(REMOVE_RECURSE
  "libdbs_bench_harness.a"
)
