# Empty dependencies file for dbs_bench_harness.
# This may be replaced when dependencies are built.
