file(REMOVE_RECURSE
  "CMakeFiles/ext_air_index.dir/ext_air_index.cc.o"
  "CMakeFiles/ext_air_index.dir/ext_air_index.cc.o.d"
  "ext_air_index"
  "ext_air_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_air_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
