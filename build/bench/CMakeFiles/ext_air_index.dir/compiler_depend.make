# Empty compiler generated dependencies file for ext_air_index.
# This may be replaced when dependencies are built.
