file(REMOVE_RECURSE
  "CMakeFiles/ext_depend.dir/ext_depend.cc.o"
  "CMakeFiles/ext_depend.dir/ext_depend.cc.o.d"
  "ext_depend"
  "ext_depend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_depend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
