# Empty dependencies file for ext_depend.
# This may be replaced when dependencies are built.
