file(REMOVE_RECURSE
  "CMakeFiles/ext_ondemand.dir/ext_ondemand.cc.o"
  "CMakeFiles/ext_ondemand.dir/ext_ondemand.cc.o.d"
  "ext_ondemand"
  "ext_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
