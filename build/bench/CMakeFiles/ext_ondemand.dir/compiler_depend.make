# Empty compiler generated dependencies file for ext_ondemand.
# This may be replaced when dependencies are built.
