file(REMOVE_RECURSE
  "CMakeFiles/ext_planner.dir/ext_planner.cc.o"
  "CMakeFiles/ext_planner.dir/ext_planner.cc.o.d"
  "ext_planner"
  "ext_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
