# Empty compiler generated dependencies file for ext_planner.
# This may be replaced when dependencies are built.
