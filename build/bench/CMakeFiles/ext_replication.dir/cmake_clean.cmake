file(REMOVE_RECURSE
  "CMakeFiles/ext_replication.dir/ext_replication.cc.o"
  "CMakeFiles/ext_replication.dir/ext_replication.cc.o.d"
  "ext_replication"
  "ext_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
