file(REMOVE_RECURSE
  "CMakeFiles/ext_size_models.dir/ext_size_models.cc.o"
  "CMakeFiles/ext_size_models.dir/ext_size_models.cc.o.d"
  "ext_size_models"
  "ext_size_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_size_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
