# Empty dependencies file for ext_size_models.
# This may be replaced when dependencies are built.
