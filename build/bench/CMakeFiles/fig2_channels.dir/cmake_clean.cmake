file(REMOVE_RECURSE
  "CMakeFiles/fig2_channels.dir/fig2_channels.cc.o"
  "CMakeFiles/fig2_channels.dir/fig2_channels.cc.o.d"
  "fig2_channels"
  "fig2_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
