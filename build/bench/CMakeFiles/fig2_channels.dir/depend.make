# Empty dependencies file for fig2_channels.
# This may be replaced when dependencies are built.
