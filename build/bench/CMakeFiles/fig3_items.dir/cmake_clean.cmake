file(REMOVE_RECURSE
  "CMakeFiles/fig3_items.dir/fig3_items.cc.o"
  "CMakeFiles/fig3_items.dir/fig3_items.cc.o.d"
  "fig3_items"
  "fig3_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
