# Empty compiler generated dependencies file for fig3_items.
# This may be replaced when dependencies are built.
