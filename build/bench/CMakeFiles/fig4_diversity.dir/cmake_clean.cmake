file(REMOVE_RECURSE
  "CMakeFiles/fig4_diversity.dir/fig4_diversity.cc.o"
  "CMakeFiles/fig4_diversity.dir/fig4_diversity.cc.o.d"
  "fig4_diversity"
  "fig4_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
