# Empty dependencies file for fig4_diversity.
# This may be replaced when dependencies are built.
