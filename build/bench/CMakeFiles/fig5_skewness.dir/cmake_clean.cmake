file(REMOVE_RECURSE
  "CMakeFiles/fig5_skewness.dir/fig5_skewness.cc.o"
  "CMakeFiles/fig5_skewness.dir/fig5_skewness.cc.o.d"
  "fig5_skewness"
  "fig5_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
