# Empty dependencies file for fig5_skewness.
# This may be replaced when dependencies are built.
