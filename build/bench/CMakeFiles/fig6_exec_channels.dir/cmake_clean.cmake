file(REMOVE_RECURSE
  "CMakeFiles/fig6_exec_channels.dir/fig6_exec_channels.cc.o"
  "CMakeFiles/fig6_exec_channels.dir/fig6_exec_channels.cc.o.d"
  "fig6_exec_channels"
  "fig6_exec_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_exec_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
