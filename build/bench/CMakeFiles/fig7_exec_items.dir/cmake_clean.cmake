file(REMOVE_RECURSE
  "CMakeFiles/fig7_exec_items.dir/fig7_exec_items.cc.o"
  "CMakeFiles/fig7_exec_items.dir/fig7_exec_items.cc.o.d"
  "fig7_exec_items"
  "fig7_exec_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_exec_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
