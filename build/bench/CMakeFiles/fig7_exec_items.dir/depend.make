# Empty dependencies file for fig7_exec_items.
# This may be replaced when dependencies are built.
