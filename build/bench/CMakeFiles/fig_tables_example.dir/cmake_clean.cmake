file(REMOVE_RECURSE
  "CMakeFiles/fig_tables_example.dir/fig_tables_example.cc.o"
  "CMakeFiles/fig_tables_example.dir/fig_tables_example.cc.o.d"
  "fig_tables_example"
  "fig_tables_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_tables_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
