# Empty compiler generated dependencies file for fig_tables_example.
# This may be replaced when dependencies are built.
