
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/quality_vs_optimal.cc" "bench/CMakeFiles/quality_vs_optimal.dir/quality_vs_optimal.cc.o" "gcc" "bench/CMakeFiles/quality_vs_optimal.dir/quality_vs_optimal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dbs_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/dbs_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dbs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/air/CMakeFiles/dbs_air.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/dbs_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/ondemand/CMakeFiles/dbs_ondemand.dir/DependInfo.cmake"
  "/root/repo/build/src/hetero/CMakeFiles/dbs_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/depend/CMakeFiles/dbs_depend.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/dbs_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
