file(REMOVE_RECURSE
  "CMakeFiles/quality_vs_optimal.dir/quality_vs_optimal.cc.o"
  "CMakeFiles/quality_vs_optimal.dir/quality_vs_optimal.cc.o.d"
  "quality_vs_optimal"
  "quality_vs_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_vs_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
