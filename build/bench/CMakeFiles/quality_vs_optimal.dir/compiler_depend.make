# Empty compiler generated dependencies file for quality_vs_optimal.
# This may be replaced when dependencies are built.
