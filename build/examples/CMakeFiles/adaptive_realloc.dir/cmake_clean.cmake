file(REMOVE_RECURSE
  "CMakeFiles/adaptive_realloc.dir/adaptive_realloc.cpp.o"
  "CMakeFiles/adaptive_realloc.dir/adaptive_realloc.cpp.o.d"
  "adaptive_realloc"
  "adaptive_realloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_realloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
