# Empty compiler generated dependencies file for adaptive_realloc.
# This may be replaced when dependencies are built.
