file(REMOVE_RECURSE
  "CMakeFiles/broadcast_cli.dir/broadcast_cli.cpp.o"
  "CMakeFiles/broadcast_cli.dir/broadcast_cli.cpp.o.d"
  "broadcast_cli"
  "broadcast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
