# Empty dependencies file for broadcast_cli.
# This may be replaced when dependencies are built.
