file(REMOVE_RECURSE
  "CMakeFiles/hetero_channels.dir/hetero_channels.cpp.o"
  "CMakeFiles/hetero_channels.dir/hetero_channels.cpp.o.d"
  "hetero_channels"
  "hetero_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
