# Empty compiler generated dependencies file for hetero_channels.
# This may be replaced when dependencies are built.
