file(REMOVE_RECURSE
  "CMakeFiles/ondemand_vs_push.dir/ondemand_vs_push.cpp.o"
  "CMakeFiles/ondemand_vs_push.dir/ondemand_vs_push.cpp.o.d"
  "ondemand_vs_push"
  "ondemand_vs_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ondemand_vs_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
