# Empty compiler generated dependencies file for ondemand_vs_push.
# This may be replaced when dependencies are built.
