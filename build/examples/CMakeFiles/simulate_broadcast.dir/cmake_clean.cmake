file(REMOVE_RECURSE
  "CMakeFiles/simulate_broadcast.dir/simulate_broadcast.cpp.o"
  "CMakeFiles/simulate_broadcast.dir/simulate_broadcast.cpp.o.d"
  "simulate_broadcast"
  "simulate_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
