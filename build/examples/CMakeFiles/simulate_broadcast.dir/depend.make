# Empty dependencies file for simulate_broadcast.
# This may be replaced when dependencies are built.
