file(REMOVE_RECURSE
  "CMakeFiles/dbs_air.dir/index.cc.o"
  "CMakeFiles/dbs_air.dir/index.cc.o.d"
  "CMakeFiles/dbs_air.dir/indexed_program.cc.o"
  "CMakeFiles/dbs_air.dir/indexed_program.cc.o.d"
  "libdbs_air.a"
  "libdbs_air.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_air.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
