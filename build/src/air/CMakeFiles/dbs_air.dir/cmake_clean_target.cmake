file(REMOVE_RECURSE
  "libdbs_air.a"
)
