# Empty dependencies file for dbs_air.
# This may be replaced when dependencies are built.
