file(REMOVE_RECURSE
  "CMakeFiles/dbs_api.dir/planner.cc.o"
  "CMakeFiles/dbs_api.dir/planner.cc.o.d"
  "CMakeFiles/dbs_api.dir/scheduler.cc.o"
  "CMakeFiles/dbs_api.dir/scheduler.cc.o.d"
  "libdbs_api.a"
  "libdbs_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
