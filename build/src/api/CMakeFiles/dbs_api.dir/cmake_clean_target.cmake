file(REMOVE_RECURSE
  "libdbs_api.a"
)
