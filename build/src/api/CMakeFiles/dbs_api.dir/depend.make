# Empty dependencies file for dbs_api.
# This may be replaced when dependencies are built.
