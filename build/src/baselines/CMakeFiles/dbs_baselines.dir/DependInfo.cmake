
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/annealing.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/annealing.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/annealing.cc.o.d"
  "/root/repo/src/baselines/brute_force.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/brute_force.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/brute_force.cc.o.d"
  "/root/repo/src/baselines/flat.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/flat.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/flat.cc.o.d"
  "/root/repo/src/baselines/gopt.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/gopt.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/gopt.cc.o.d"
  "/root/repo/src/baselines/greedy.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/greedy.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/greedy.cc.o.d"
  "/root/repo/src/baselines/ordered_dp.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/ordered_dp.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/ordered_dp.cc.o.d"
  "/root/repo/src/baselines/vfk.cc" "src/baselines/CMakeFiles/dbs_baselines.dir/vfk.cc.o" "gcc" "src/baselines/CMakeFiles/dbs_baselines.dir/vfk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
