file(REMOVE_RECURSE
  "CMakeFiles/dbs_baselines.dir/annealing.cc.o"
  "CMakeFiles/dbs_baselines.dir/annealing.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/brute_force.cc.o"
  "CMakeFiles/dbs_baselines.dir/brute_force.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/flat.cc.o"
  "CMakeFiles/dbs_baselines.dir/flat.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/gopt.cc.o"
  "CMakeFiles/dbs_baselines.dir/gopt.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/greedy.cc.o"
  "CMakeFiles/dbs_baselines.dir/greedy.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/ordered_dp.cc.o"
  "CMakeFiles/dbs_baselines.dir/ordered_dp.cc.o.d"
  "CMakeFiles/dbs_baselines.dir/vfk.cc.o"
  "CMakeFiles/dbs_baselines.dir/vfk.cc.o.d"
  "libdbs_baselines.a"
  "libdbs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
