file(REMOVE_RECURSE
  "libdbs_baselines.a"
)
