# Empty compiler generated dependencies file for dbs_baselines.
# This may be replaced when dependencies are built.
