file(REMOVE_RECURSE
  "CMakeFiles/dbs_common.dir/csv.cc.o"
  "CMakeFiles/dbs_common.dir/csv.cc.o.d"
  "CMakeFiles/dbs_common.dir/distributions.cc.o"
  "CMakeFiles/dbs_common.dir/distributions.cc.o.d"
  "CMakeFiles/dbs_common.dir/rng.cc.o"
  "CMakeFiles/dbs_common.dir/rng.cc.o.d"
  "CMakeFiles/dbs_common.dir/stats.cc.o"
  "CMakeFiles/dbs_common.dir/stats.cc.o.d"
  "CMakeFiles/dbs_common.dir/strings.cc.o"
  "CMakeFiles/dbs_common.dir/strings.cc.o.d"
  "CMakeFiles/dbs_common.dir/table.cc.o"
  "CMakeFiles/dbs_common.dir/table.cc.o.d"
  "libdbs_common.a"
  "libdbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
