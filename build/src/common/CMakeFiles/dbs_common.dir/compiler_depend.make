# Empty compiler generated dependencies file for dbs_common.
# This may be replaced when dependencies are built.
