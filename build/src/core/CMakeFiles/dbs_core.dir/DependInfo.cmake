
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cds.cc" "src/core/CMakeFiles/dbs_core.dir/cds.cc.o" "gcc" "src/core/CMakeFiles/dbs_core.dir/cds.cc.o.d"
  "/root/repo/src/core/drp.cc" "src/core/CMakeFiles/dbs_core.dir/drp.cc.o" "gcc" "src/core/CMakeFiles/dbs_core.dir/drp.cc.o.d"
  "/root/repo/src/core/drp_cds.cc" "src/core/CMakeFiles/dbs_core.dir/drp_cds.cc.o" "gcc" "src/core/CMakeFiles/dbs_core.dir/drp_cds.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/dbs_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/dbs_core.dir/partition.cc.o.d"
  "/root/repo/src/core/swap.cc" "src/core/CMakeFiles/dbs_core.dir/swap.cc.o" "gcc" "src/core/CMakeFiles/dbs_core.dir/swap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
