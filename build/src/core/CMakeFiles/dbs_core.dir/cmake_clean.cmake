file(REMOVE_RECURSE
  "CMakeFiles/dbs_core.dir/cds.cc.o"
  "CMakeFiles/dbs_core.dir/cds.cc.o.d"
  "CMakeFiles/dbs_core.dir/drp.cc.o"
  "CMakeFiles/dbs_core.dir/drp.cc.o.d"
  "CMakeFiles/dbs_core.dir/drp_cds.cc.o"
  "CMakeFiles/dbs_core.dir/drp_cds.cc.o.d"
  "CMakeFiles/dbs_core.dir/partition.cc.o"
  "CMakeFiles/dbs_core.dir/partition.cc.o.d"
  "CMakeFiles/dbs_core.dir/swap.cc.o"
  "CMakeFiles/dbs_core.dir/swap.cc.o.d"
  "libdbs_core.a"
  "libdbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
