
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depend/queries.cc" "src/depend/CMakeFiles/dbs_depend.dir/queries.cc.o" "gcc" "src/depend/CMakeFiles/dbs_depend.dir/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
