file(REMOVE_RECURSE
  "CMakeFiles/dbs_depend.dir/queries.cc.o"
  "CMakeFiles/dbs_depend.dir/queries.cc.o.d"
  "libdbs_depend.a"
  "libdbs_depend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_depend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
