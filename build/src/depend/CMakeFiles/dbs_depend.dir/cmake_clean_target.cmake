file(REMOVE_RECURSE
  "libdbs_depend.a"
)
