# Empty dependencies file for dbs_depend.
# This may be replaced when dependencies are built.
