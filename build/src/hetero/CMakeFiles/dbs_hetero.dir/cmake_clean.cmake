file(REMOVE_RECURSE
  "CMakeFiles/dbs_hetero.dir/hetero.cc.o"
  "CMakeFiles/dbs_hetero.dir/hetero.cc.o.d"
  "libdbs_hetero.a"
  "libdbs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
