file(REMOVE_RECURSE
  "libdbs_hetero.a"
)
