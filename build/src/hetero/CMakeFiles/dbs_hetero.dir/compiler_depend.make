# Empty compiler generated dependencies file for dbs_hetero.
# This may be replaced when dependencies are built.
