
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/allocation.cc" "src/model/CMakeFiles/dbs_model.dir/allocation.cc.o" "gcc" "src/model/CMakeFiles/dbs_model.dir/allocation.cc.o.d"
  "/root/repo/src/model/allocation_io.cc" "src/model/CMakeFiles/dbs_model.dir/allocation_io.cc.o" "gcc" "src/model/CMakeFiles/dbs_model.dir/allocation_io.cc.o.d"
  "/root/repo/src/model/cost.cc" "src/model/CMakeFiles/dbs_model.dir/cost.cc.o" "gcc" "src/model/CMakeFiles/dbs_model.dir/cost.cc.o.d"
  "/root/repo/src/model/database.cc" "src/model/CMakeFiles/dbs_model.dir/database.cc.o" "gcc" "src/model/CMakeFiles/dbs_model.dir/database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
