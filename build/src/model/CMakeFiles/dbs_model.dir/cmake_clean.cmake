file(REMOVE_RECURSE
  "CMakeFiles/dbs_model.dir/allocation.cc.o"
  "CMakeFiles/dbs_model.dir/allocation.cc.o.d"
  "CMakeFiles/dbs_model.dir/allocation_io.cc.o"
  "CMakeFiles/dbs_model.dir/allocation_io.cc.o.d"
  "CMakeFiles/dbs_model.dir/cost.cc.o"
  "CMakeFiles/dbs_model.dir/cost.cc.o.d"
  "CMakeFiles/dbs_model.dir/database.cc.o"
  "CMakeFiles/dbs_model.dir/database.cc.o.d"
  "libdbs_model.a"
  "libdbs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
