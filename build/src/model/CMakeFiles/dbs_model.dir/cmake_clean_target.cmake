file(REMOVE_RECURSE
  "libdbs_model.a"
)
