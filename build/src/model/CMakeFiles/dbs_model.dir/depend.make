# Empty dependencies file for dbs_model.
# This may be replaced when dependencies are built.
