file(REMOVE_RECURSE
  "CMakeFiles/dbs_ondemand.dir/server.cc.o"
  "CMakeFiles/dbs_ondemand.dir/server.cc.o.d"
  "libdbs_ondemand.a"
  "libdbs_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
