file(REMOVE_RECURSE
  "libdbs_ondemand.a"
)
