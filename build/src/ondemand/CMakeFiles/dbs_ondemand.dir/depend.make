# Empty dependencies file for dbs_ondemand.
# This may be replaced when dependencies are built.
