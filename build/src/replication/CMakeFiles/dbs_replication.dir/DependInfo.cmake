
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/min_wait.cc" "src/replication/CMakeFiles/dbs_replication.dir/min_wait.cc.o" "gcc" "src/replication/CMakeFiles/dbs_replication.dir/min_wait.cc.o.d"
  "/root/repo/src/replication/multi_program.cc" "src/replication/CMakeFiles/dbs_replication.dir/multi_program.cc.o" "gcc" "src/replication/CMakeFiles/dbs_replication.dir/multi_program.cc.o.d"
  "/root/repo/src/replication/replicate.cc" "src/replication/CMakeFiles/dbs_replication.dir/replicate.cc.o" "gcc" "src/replication/CMakeFiles/dbs_replication.dir/replicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
