file(REMOVE_RECURSE
  "CMakeFiles/dbs_replication.dir/min_wait.cc.o"
  "CMakeFiles/dbs_replication.dir/min_wait.cc.o.d"
  "CMakeFiles/dbs_replication.dir/multi_program.cc.o"
  "CMakeFiles/dbs_replication.dir/multi_program.cc.o.d"
  "CMakeFiles/dbs_replication.dir/replicate.cc.o"
  "CMakeFiles/dbs_replication.dir/replicate.cc.o.d"
  "libdbs_replication.a"
  "libdbs_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
