file(REMOVE_RECURSE
  "libdbs_replication.a"
)
