# Empty compiler generated dependencies file for dbs_replication.
# This may be replaced when dependencies are built.
