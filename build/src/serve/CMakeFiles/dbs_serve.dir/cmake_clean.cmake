file(REMOVE_RECURSE
  "CMakeFiles/dbs_serve.dir/server_loop.cc.o"
  "CMakeFiles/dbs_serve.dir/server_loop.cc.o.d"
  "libdbs_serve.a"
  "libdbs_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
