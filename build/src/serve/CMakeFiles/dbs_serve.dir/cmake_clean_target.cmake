file(REMOVE_RECURSE
  "libdbs_serve.a"
)
