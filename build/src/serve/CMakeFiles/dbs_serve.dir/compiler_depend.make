# Empty compiler generated dependencies file for dbs_serve.
# This may be replaced when dependencies are built.
