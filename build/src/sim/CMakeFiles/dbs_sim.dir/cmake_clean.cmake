file(REMOVE_RECURSE
  "CMakeFiles/dbs_sim.dir/event_queue.cc.o"
  "CMakeFiles/dbs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/dbs_sim.dir/program.cc.o"
  "CMakeFiles/dbs_sim.dir/program.cc.o.d"
  "CMakeFiles/dbs_sim.dir/simulator.cc.o"
  "CMakeFiles/dbs_sim.dir/simulator.cc.o.d"
  "libdbs_sim.a"
  "libdbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
