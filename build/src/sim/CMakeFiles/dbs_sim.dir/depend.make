# Empty dependencies file for dbs_sim.
# This may be replaced when dependencies are built.
