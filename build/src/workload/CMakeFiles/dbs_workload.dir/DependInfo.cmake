
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog_io.cc" "src/workload/CMakeFiles/dbs_workload.dir/catalog_io.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/catalog_io.cc.o.d"
  "/root/repo/src/workload/drift.cc" "src/workload/CMakeFiles/dbs_workload.dir/drift.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/drift.cc.o.d"
  "/root/repo/src/workload/estimate.cc" "src/workload/CMakeFiles/dbs_workload.dir/estimate.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/estimate.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/dbs_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/paper_example.cc" "src/workload/CMakeFiles/dbs_workload.dir/paper_example.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/paper_example.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/dbs_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/dbs_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dbs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
