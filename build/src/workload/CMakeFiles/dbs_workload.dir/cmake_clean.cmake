file(REMOVE_RECURSE
  "CMakeFiles/dbs_workload.dir/catalog_io.cc.o"
  "CMakeFiles/dbs_workload.dir/catalog_io.cc.o.d"
  "CMakeFiles/dbs_workload.dir/drift.cc.o"
  "CMakeFiles/dbs_workload.dir/drift.cc.o.d"
  "CMakeFiles/dbs_workload.dir/estimate.cc.o"
  "CMakeFiles/dbs_workload.dir/estimate.cc.o.d"
  "CMakeFiles/dbs_workload.dir/generator.cc.o"
  "CMakeFiles/dbs_workload.dir/generator.cc.o.d"
  "CMakeFiles/dbs_workload.dir/paper_example.cc.o"
  "CMakeFiles/dbs_workload.dir/paper_example.cc.o.d"
  "CMakeFiles/dbs_workload.dir/trace.cc.o"
  "CMakeFiles/dbs_workload.dir/trace.cc.o.d"
  "libdbs_workload.a"
  "libdbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
