file(REMOVE_RECURSE
  "libdbs_workload.a"
)
