# Empty dependencies file for dbs_workload.
# This may be replaced when dependencies are built.
