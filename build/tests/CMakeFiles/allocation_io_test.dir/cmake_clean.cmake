file(REMOVE_RECURSE
  "CMakeFiles/allocation_io_test.dir/allocation_io_test.cc.o"
  "CMakeFiles/allocation_io_test.dir/allocation_io_test.cc.o.d"
  "allocation_io_test"
  "allocation_io_test.pdb"
  "allocation_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
