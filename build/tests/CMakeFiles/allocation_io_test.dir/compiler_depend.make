# Empty compiler generated dependencies file for allocation_io_test.
# This may be replaced when dependencies are built.
