file(REMOVE_RECURSE
  "CMakeFiles/depend_test.dir/depend_test.cc.o"
  "CMakeFiles/depend_test.dir/depend_test.cc.o.d"
  "depend_test"
  "depend_test.pdb"
  "depend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
