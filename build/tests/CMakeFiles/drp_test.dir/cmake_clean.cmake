file(REMOVE_RECURSE
  "CMakeFiles/drp_test.dir/drp_test.cc.o"
  "CMakeFiles/drp_test.dir/drp_test.cc.o.d"
  "drp_test"
  "drp_test.pdb"
  "drp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
