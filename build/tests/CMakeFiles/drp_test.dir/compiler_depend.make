# Empty compiler generated dependencies file for drp_test.
# This may be replaced when dependencies are built.
