file(REMOVE_RECURSE
  "CMakeFiles/gopt_test.dir/gopt_test.cc.o"
  "CMakeFiles/gopt_test.dir/gopt_test.cc.o.d"
  "gopt_test"
  "gopt_test.pdb"
  "gopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
