# Empty dependencies file for gopt_test.
# This may be replaced when dependencies are built.
