file(REMOVE_RECURSE
  "CMakeFiles/indexed_program_test.dir/indexed_program_test.cc.o"
  "CMakeFiles/indexed_program_test.dir/indexed_program_test.cc.o.d"
  "indexed_program_test"
  "indexed_program_test.pdb"
  "indexed_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
