# Empty dependencies file for indexed_program_test.
# This may be replaced when dependencies are built.
