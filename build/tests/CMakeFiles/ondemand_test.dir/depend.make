# Empty dependencies file for ondemand_test.
# This may be replaced when dependencies are built.
