file(REMOVE_RECURSE
  "CMakeFiles/operator_story_test.dir/operator_story_test.cc.o"
  "CMakeFiles/operator_story_test.dir/operator_story_test.cc.o.d"
  "operator_story_test"
  "operator_story_test.pdb"
  "operator_story_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_story_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
