# Empty dependencies file for operator_story_test.
# This may be replaced when dependencies are built.
