file(REMOVE_RECURSE
  "CMakeFiles/property_ext_test.dir/property_ext_test.cc.o"
  "CMakeFiles/property_ext_test.dir/property_ext_test.cc.o.d"
  "property_ext_test"
  "property_ext_test.pdb"
  "property_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
