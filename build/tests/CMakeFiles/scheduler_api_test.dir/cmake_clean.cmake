file(REMOVE_RECURSE
  "CMakeFiles/scheduler_api_test.dir/scheduler_api_test.cc.o"
  "CMakeFiles/scheduler_api_test.dir/scheduler_api_test.cc.o.d"
  "scheduler_api_test"
  "scheduler_api_test.pdb"
  "scheduler_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
