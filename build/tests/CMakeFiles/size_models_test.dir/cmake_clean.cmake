file(REMOVE_RECURSE
  "CMakeFiles/size_models_test.dir/size_models_test.cc.o"
  "CMakeFiles/size_models_test.dir/size_models_test.cc.o.d"
  "size_models_test"
  "size_models_test.pdb"
  "size_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
