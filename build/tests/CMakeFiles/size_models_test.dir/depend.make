# Empty dependencies file for size_models_test.
# This may be replaced when dependencies are built.
