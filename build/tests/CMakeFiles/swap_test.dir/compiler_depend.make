# Empty compiler generated dependencies file for swap_test.
# This may be replaced when dependencies are built.
