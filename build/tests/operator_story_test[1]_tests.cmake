add_test([=[OperatorStory.EstimateScheduleStoreLoadSimulate]=]  /root/repo/build/tests/operator_story_test [==[--gtest_filter=OperatorStory.EstimateScheduleStoreLoadSimulate]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[OperatorStory.EstimateScheduleStoreLoadSimulate]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  operator_story_test_TESTS OperatorStory.EstimateScheduleStoreLoadSimulate)
