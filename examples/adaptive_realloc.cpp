// Access-pattern drift: a broadcast server periodically re-learns item
// popularity and must refresh its channel allocation. Because CDS is a local
// search, it can *incrementally* repair the previous allocation instead of
// rebuilding from scratch — usually a handful of moves instead of a full
// DRP+CDS run, with equal quality.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/cds.h"
#include "core/drp_cds.h"
#include "workload/drift.h"
#include "workload/generator.h"

int main() {
  using namespace dbs;
  constexpr ChannelId kChannels = 6;

  Rng rng(2026);
  Database db = generate_database({.items = 150, .skewness = 1.0, .diversity = 2.0,
                                   .seed = 42});
  DrpCdsResult current = run_drp_cds(db, kChannels);
  std::puts("== adaptive_realloc: repairing allocations under popularity drift ==");
  std::printf("initial DRP-CDS cost: %.3f\n\n", current.final_cost);
  std::printf("%-6s %14s %14s %12s %14s %14s\n", "epoch", "repair cost",
              "rebuild cost", "excess(%)", "repair moves", "speedup(x)");

  std::vector<ChannelId> carried = current.allocation.assignment();
  for (int epoch = 1; epoch <= 8; ++epoch) {
    db = drift_frequencies(db, rng, {.transfers = 6, .intensity = 0.5});

    // Incremental repair: re-seed CDS with the stale assignment.
    Stopwatch repair_watch;
    Allocation repaired(db, kChannels, carried);
    const CdsStats repair_stats = run_cds(repaired);
    const double repair_ms = repair_watch.millis();

    // Full rebuild for comparison.
    Stopwatch rebuild_watch;
    const DrpCdsResult rebuilt = run_drp_cds(db, kChannels);
    const double rebuild_ms = rebuild_watch.millis();

    const double excess =
        100.0 * (repaired.cost() - rebuilt.final_cost) / rebuilt.final_cost;
    std::printf("%-6d %14.3f %14.3f %12.2f %14zu %14.1f\n", epoch,
                repaired.cost(), rebuilt.final_cost, excess,
                repair_stats.iterations,
                repair_ms > 0.0 ? rebuild_ms / repair_ms : 0.0);

    carried = repaired.assignment();
  }

  std::puts("\nrepair = re-running CDS from the stale allocation; rebuild = "
            "full DRP+CDS from scratch. Repair tracks rebuild quality while "
            "moving only a few items per epoch.");
  return 0;
}
