// broadcast_cli — command-line front end to the library.
//
//   broadcast_cli algorithms
//       list the available channel-allocation algorithms
//   broadcast_cli generate --items N [--theta T] [--phi P] [--seed S]
//       emit a synthetic catalogue (CSV on stdout) per the paper's model
//   broadcast_cli schedule --catalog FILE --channels K
//                 [--algorithm NAME] [--bandwidth B] [--simulate REQUESTS]
//       load a catalogue, build a broadcast program, print the layout and
//       expected waiting time; optionally validate with the DES
//   broadcast_cli plan --catalog FILE --total-bandwidth B [--max-channels K]
//       sweep channel counts under a fixed total bandwidth and report the
//       waiting-time-optimal K
//
// Run with no arguments for this usage text.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "api/planner.h"
#include "api/scheduler.h"
#include "sim/simulator.h"
#include "workload/catalog_io.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

using namespace dbs;

int usage() {
  std::puts(
      "usage:\n"
      "  broadcast_cli algorithms\n"
      "  broadcast_cli generate --items N [--theta T] [--phi P] [--seed S]\n"
      "  broadcast_cli schedule --catalog FILE --channels K\n"
      "                [--algorithm NAME] [--bandwidth B] [--simulate REQUESTS]\n"
      "  broadcast_cli plan --catalog FILE --total-bandwidth B [--max-channels K]");
  return 0;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) {
      throw std::runtime_error("bad or valueless flag: " + arg);
    }
    flags[arg.substr(2)] = argv[++i];
  }
  return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_algorithms() {
  for (const AlgorithmInfo& info : all_algorithms()) {
    std::printf("%-14s %s%s\n", std::string(info.name).c_str(),
                std::string(info.summary).c_str(),
                info.exponential ? " [exponential: small N only]" : "");
  }
  return 0;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config;
  config.items = std::stoul(flag_or(flags, "items", "120"));
  config.skewness = std::stod(flag_or(flags, "theta", "0.8"));
  config.diversity = std::stod(flag_or(flags, "phi", "2.0"));
  config.seed = std::stoull(flag_or(flags, "seed", "1"));
  const Database db = generate_database(config);
  const Catalog catalog{db, std::vector<std::string>(db.size())};
  store_catalog(std::cout, catalog);
  return 0;
}

int cmd_schedule(const std::map<std::string, std::string>& flags) {
  const auto catalog_path = flags.find("catalog");
  const auto channels_flag = flags.find("channels");
  if (catalog_path == flags.end() || channels_flag == flags.end()) {
    std::fputs("schedule requires --catalog and --channels\n", stderr);
    return 2;
  }
  const Catalog catalog = load_catalog_file(catalog_path->second);

  ScheduleRequest request;
  request.channels = static_cast<ChannelId>(std::stoul(channels_flag->second));
  request.bandwidth = std::stod(flag_or(flags, "bandwidth", "10"));
  const std::string algo_name = flag_or(flags, "algorithm", "drp-cds");
  const auto algorithm = algorithm_from_name(algo_name);
  if (!algorithm.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s' (try: broadcast_cli algorithms)\n",
                 algo_name.c_str());
    return 2;
  }
  request.algorithm = *algorithm;

  const ScheduleResult result = schedule(catalog.database, request);
  std::printf("algorithm: %s   cost: %.4f   W_b: %.4f s   runtime: %.3f ms\n",
              algo_name.c_str(), result.cost, result.waiting_time,
              result.elapsed_ms);
  for (ChannelId c = 0; c < request.channels; ++c) {
    std::printf("channel %u (F=%.4f, Z=%.2f, cycle=%.2f s):\n", c + 1,
                result.allocation.freq_of(c), result.allocation.size_of(c),
                result.allocation.size_of(c) / request.bandwidth);
    for (ItemId id : result.allocation.items_in(c)) {
      std::printf("  %-24s z=%-10.3f f=%.5f\n", catalog.name_of(id).c_str(),
                  catalog.database.item(id).size, catalog.database.item(id).freq);
    }
  }

  const std::size_t requests = std::stoul(flag_or(flags, "simulate", "0"));
  if (requests > 0) {
    const BroadcastProgram program(result.allocation, request.bandwidth);
    const auto trace = generate_trace(catalog.database,
                                      {.requests = requests, .arrival_rate = 10.0,
                                       .seed = 1});
    const SimReport report = simulate(program, trace);
    std::printf("\nsimulated %zu requests: mean wait %.4f s (analytic %.4f s, "
                "ratio %.3f)\n",
                report.requests_served, report.mean_wait(), result.waiting_time,
                report.mean_wait() / result.waiting_time);
  }
  return 0;
}

int cmd_plan(const std::map<std::string, std::string>& flags) {
  const auto catalog_path = flags.find("catalog");
  const auto budget_flag = flags.find("total-bandwidth");
  if (catalog_path == flags.end() || budget_flag == flags.end()) {
    std::fputs("plan requires --catalog and --total-bandwidth\n", stderr);
    return 2;
  }
  const Catalog catalog = load_catalog_file(catalog_path->second);
  const double budget = std::stod(budget_flag->second);
  const auto max_channels =
      static_cast<ChannelId>(std::stoul(flag_or(flags, "max-channels", "10")));

  const PlanResult plan =
      plan_channel_count(catalog.database, budget, max_channels);
  std::printf("%-4s %16s %14s\n", "K", "b per channel", "W_b (s)");
  for (const PlanPoint& point : plan.sweep) {
    std::printf("%-4u %16.3f %14.4f%s\n", point.channels,
                point.per_channel_bandwidth, point.waiting_time,
                point.channels == plan.best_channels ? "   <- best" : "");
  }
  std::printf("\nbest: K=%u (W_b = %.4f s at b = %.3f per channel)\n",
              plan.best_channels, plan.best.waiting_time,
              budget / plan.best_channels);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "algorithms") return cmd_algorithms();
    if (command == "generate") return cmd_generate(parse_flags(argc, argv, 2));
    if (command == "schedule") return cmd_schedule(parse_flags(argc, argv, 2));
    if (command == "plan") return cmd_plan(parse_flags(argc, argv, 2));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  usage();
  return 2;
}
