// Heterogeneous channels: the broadcast operator owns a mix of fast and slow
// channels. Shows the generalized scheduler assigning hot/compact content to
// fast channels, and quantifies the cost of pretending channels are equal.
#include <cstdio>
#include <numeric>

#include "core/drp_cds.h"
#include "hetero/hetero.h"
#include "workload/generator.h"

int main() {
  using namespace dbs;

  const Database db = generate_database({.items = 100, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 11});
  // Two fast licensed channels, two mid, two slow shared ones.
  const std::vector<double> bandwidths = {40.0, 40.0, 10.0, 10.0, 2.5, 2.5};

  std::puts("== hetero_channels: 6 channels at 40/40/10/10/2.5/2.5 units/s ==\n");

  // Naive: pretend channels are homogeneous (DRP-CDS), keep its labels.
  const Allocation naive = run_drp_cds(
      db, static_cast<ChannelId>(bandwidths.size())).allocation;
  const double naive_wait = hetero_wait(naive, bandwidths);

  // Heterogeneous-aware two-step scheduler.
  const HeteroResult tuned = schedule_hetero(db, bandwidths);

  std::printf("bandwidth-blind DRP-CDS : W = %8.3f s\n", naive_wait);
  std::printf("hetero scheduler        : W = %8.3f s  (%zu fine moves, "
              "%.1f%% better)\n\n",
              tuned.wait, tuned.moves, 100.0 * (naive_wait - tuned.wait) / naive_wait);

  std::printf("%-8s %10s %10s %10s %12s\n", "channel", "b", "items", "F", "Z");
  for (ChannelId c = 0; c < tuned.allocation.channels(); ++c) {
    std::printf("%-8u %10.1f %10zu %10.3f %12.2f\n", c + 1, bandwidths[c],
                tuned.allocation.count_of(c), tuned.allocation.freq_of(c),
                tuned.allocation.size_of(c));
  }

  std::puts("\nthe scheduler concentrates access probability on the fast "
            "channels and parks bulky cold objects on slow spectrum; the "
            "generalized Eq. (4) move rule then polishes to a local optimum.");
  return 0;
}
