// A mobile news service broadcasting a mixed-media catalogue (headlines,
// photos, podcasts, video clips) over a handful of wireless channels —
// exactly the "modern information system" the paper's introduction motivates.
// Compares every shipped algorithm on the same catalogue and prints the
// winning channel layout.
#include <cstdio>
#include <string>
#include <vector>

#include "api/scheduler.h"
#include "model/cost.h"

namespace {

struct CatalogueEntry {
  const char* name;
  double size_mb;
  double daily_requests;
};

// A plausible editorial mix: tiny, hot text items; mid-size images; heavy,
// colder audio/video objects.
const std::vector<CatalogueEntry> kCatalogue = {
    {"breaking-news.txt", 0.02, 9200},   {"weather-today.txt", 0.01, 8100},
    {"stock-ticker.txt", 0.015, 7400},   {"sports-scores.txt", 0.02, 6900},
    {"traffic-map.png", 1.8, 5200},      {"front-page.html", 0.4, 4800},
    {"local-events.txt", 0.03, 3100},    {"photo-essay.jpg", 6.5, 2500},
    {"tech-column.html", 0.5, 2300},     {"cartoon.png", 2.2, 2100},
    {"morning-brief.mp3", 18.0, 1900},   {"interview.mp3", 24.0, 1200},
    {"cooking-video.mp4", 85.0, 900},    {"match-highlights.mp4", 140.0, 850},
    {"documentary-clip.mp4", 220.0, 400},{"weekly-review.mp4", 180.0, 300},
    {"archive-gallery.zip", 95.0, 150},  {"full-podcast.mp3", 55.0, 500},
};

}  // namespace

int main() {
  using namespace dbs;

  std::vector<double> sizes, freqs;
  for (const CatalogueEntry& e : kCatalogue) {
    sizes.push_back(e.size_mb);
    freqs.push_back(e.daily_requests);  // Database normalizes to probabilities
  }
  const Database db(sizes, freqs);

  constexpr ChannelId kChannels = 4;
  constexpr double kBandwidthMbps = 2.0;  // MB per second per channel

  std::puts("== news_service: 18 mixed-media items on 4 broadcast channels ==\n");
  std::printf("%-14s %12s %12s %10s\n", "algorithm", "cost", "W_b (s)", "time(ms)");
  ScheduleResult best = [&] {
    ScheduleRequest r;
    r.algorithm = Algorithm::kDrpCds;
    r.channels = kChannels;
    r.bandwidth = kBandwidthMbps;
    return schedule(db, r);
  }();

  for (const AlgorithmInfo& info : all_algorithms()) {
    if (info.exponential) continue;  // brute force would be fine at N=18, but slow-ish
    ScheduleRequest r;
    r.algorithm = info.id;
    r.channels = kChannels;
    r.bandwidth = kBandwidthMbps;
    const ScheduleResult result = schedule(db, r);
    std::printf("%-14s %12.3f %12.2f %10.3f\n", std::string(info.name).c_str(),
                result.cost, result.waiting_time, result.elapsed_ms);
    if (result.cost < best.cost) best = std::move(result);
  }

  std::puts("\nbest layout found:");
  for (ChannelId c = 0; c < kChannels; ++c) {
    std::printf("  channel %u  (cycle %.1f s, F=%.3f):\n", c + 1,
                best.allocation.size_of(c) / kBandwidthMbps,
                best.allocation.freq_of(c));
    for (ItemId id : best.allocation.items_in(c)) {
      std::printf("    %-22s %7.2f MB  f=%.4f\n", kCatalogue[id].name,
                  db.item(id).size, db.item(id).freq);
    }
  }
  std::printf("\nexpected waiting time: %.2f s  (flat round-robin would be "
              "%.2f s)\n",
              best.waiting_time, [&] {
                ScheduleRequest r;
                r.algorithm = Algorithm::kFlat;
                r.channels = kChannels;
                r.bandwidth = kBandwidthMbps;
                return schedule(db, r).waiting_time;
              }());
  return 0;
}
