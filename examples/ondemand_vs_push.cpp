// Push vs pull: compares the paper's push-based broadcast program against an
// on-demand (pull-based) server on the same catalogue and request load, and
// shows how the on-demand scheduling policy matters for diverse item sizes.
#include <cstdio>

#include "core/drp_cds.h"
#include "model/cost.h"
#include "ondemand/server.h"
#include "sim/simulator.h"
#include "workload/generator.h"

int main() {
  using namespace dbs;

  const Database db = generate_database({.items = 80, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 5});
  constexpr double kBandwidth = 10.0;
  constexpr ChannelId kChannels = 4;
  const auto trace = generate_trace(db, {.requests = 20000, .arrival_rate = 8.0,
                                         .seed = 17});

  std::puts("== ondemand_vs_push: one catalogue, one request load ==\n");

  // Push: the paper's DRP-CDS program broadcast cyclically.
  const Allocation alloc = run_drp_cds(db, kChannels).allocation;
  const BroadcastProgram program(alloc, kBandwidth);
  const SimReport push = simulate(program, trace);
  std::printf("%-10s %12s %12s %12s\n", "server", "mean wait", "p95 wait",
              "broadcasts");
  std::printf("%-10s %12.3f %12.3f %12s\n", "push", push.waiting.mean,
              push.waiting.p95, "(cyclic)");

  // Pull: on-demand server with each classic policy, same channel resources.
  for (OnDemandPolicy policy : all_ondemand_policies()) {
    const OnDemandReport r = run_ondemand(
        db, trace, {.policy = policy, .channels = kChannels, .bandwidth = kBandwidth});
    std::printf("pull-%-5s %12.3f %12.3f %12zu   (mean stretch %.2f)\n",
                std::string(ondemand_policy_name(policy)).c_str(), r.waiting.mean,
                r.waiting.p95, r.broadcasts, r.mean_stretch());
  }

  std::puts("\npush needs no uplink and scales to any audience size; pull "
            "adapts to the observed demand and skips cold items. With diverse "
            "sizes, size-aware policies (ltsf) control stretch where fcfs "
            "lets small hot items starve behind large transfers.");
  return 0;
}
