// Quickstart: build a catalogue, run the paper's DRP-CDS scheduler, print
// the resulting channel layout and expected waiting time.
#include <cstdio>

#include "api/scheduler.h"
#include "model/cost.h"

int main() {
  // A small diverse catalogue: (size, access frequency) per item. Sizes are
  // in abstract units (think MB), frequencies are relative popularity —
  // the library normalizes them.
  const std::vector<double> sizes = {120.0, 4.5, 3.0, 55.0, 2.2, 18.0, 7.5, 1.1};
  const std::vector<double> freqs = {0.30, 0.22, 0.15, 0.10, 0.08, 0.07, 0.05, 0.03};
  const dbs::Database catalogue(sizes, freqs);

  dbs::ScheduleRequest request;
  request.algorithm = dbs::Algorithm::kDrpCds;
  request.channels = 3;
  request.bandwidth = 10.0;  // size units per second

  const dbs::ScheduleResult result = dbs::schedule(catalogue, request);

  std::printf("cost (sum F_i*Z_i): %.4f\n", result.cost);
  std::printf("expected waiting time W_b: %.4f s\n", result.waiting_time);
  for (dbs::ChannelId c = 0; c < request.channels; ++c) {
    std::printf("channel %u (F=%.3f, Z=%.1f):", c, result.allocation.freq_of(c),
                result.allocation.size_of(c));
    for (dbs::ItemId id : result.allocation.items_in(c)) {
      std::printf(" d%u", id + 1);
    }
    std::printf("\n");
  }
  return 0;
}
