// End-to-end simulation demo: schedule a diverse catalogue, put the program
// "on air" in the discrete-event simulator with tens of thousands of mobile
// clients, and compare the measured waiting time against the paper's
// analytic model (Eq. 2) — channel by channel.
#include <cstdio>

#include "api/scheduler.h"
#include "model/cost.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/trace.h"

int main() {
  using namespace dbs;

  const Database db = generate_database({.items = 100, .skewness = 0.9,
                                         .diversity = 2.0, .seed = 7});
  constexpr ChannelId kChannels = 5;
  constexpr double kBandwidth = 10.0;

  ScheduleRequest request;
  request.algorithm = Algorithm::kDrpCds;
  request.channels = kChannels;
  request.bandwidth = kBandwidth;
  const ScheduleResult scheduled = schedule(db, request);

  std::puts("== simulate_broadcast: DES vs the analytic model ==\n");
  std::printf("catalogue: N=%zu items, K=%u channels, b=%.0f units/s\n", db.size(),
              kChannels, kBandwidth);
  std::printf("DRP-CDS cost=%.3f, analytic W_b=%.3f s\n\n", scheduled.cost,
              scheduled.waiting_time);

  const BroadcastProgram program(scheduled.allocation, kBandwidth);
  const auto trace =
      generate_trace(db, {.requests = 50000, .arrival_rate = 25.0, .seed = 99});
  const SimReport report = simulate(program, trace);

  std::printf("simulated %zu client requests over %.0f s of air time\n",
              report.requests_served, report.sim_end_time);
  std::printf("empirical wait: mean=%.3f  p50=%.3f  p95=%.3f  max=%.3f\n",
              report.waiting.mean, report.waiting.p50, report.waiting.p95,
              report.waiting.max);
  std::printf("analytic  W_b : %.3f  (empirical/analytic = %.3f)\n\n",
              scheduled.waiting_time, report.mean_wait() / scheduled.waiting_time);

  std::printf("%-8s %10s %12s %14s %14s\n", "channel", "items", "requests",
              "mean wait", "analytic W(i)");
  for (ChannelId c = 0; c < kChannels; ++c) {
    std::printf("%-8u %10zu %12zu %14.3f %14.3f\n", c + 1,
                scheduled.allocation.count_of(c), report.channel_requests[c],
                report.channel_mean_wait[c],
                channel_waiting_time(scheduled.allocation, c, kBandwidth));
  }
  std::puts("\nthe empirical means converge on Eq. (1)/(2) as the trace grows — "
            "the simulator and the cost model validate each other.");
  return 0;
}
