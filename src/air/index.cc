#include "air/index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dbs {
namespace {

/// Frequency-weighted mean download time of channel c: Σ f z / (b F).
double mean_download(const Allocation& alloc, ChannelId c, double bandwidth) {
  double weighted = 0.0;
  for (ItemId id : alloc.items_in(c)) {
    const Item& it = alloc.database().item(id);
    weighted += it.freq * it.size;
  }
  const double f = alloc.freq_of(c);
  return f > 0.0 ? weighted / (bandwidth * f) : 0.0;
}

}  // namespace

IndexedChannelMetrics indexed_channel_metrics(const Allocation& alloc, ChannelId c,
                                              double bandwidth,
                                              const IndexConfig& config) {
  DBS_CHECK(bandwidth > 0.0);
  DBS_CHECK(config.replication >= 1);
  DBS_CHECK(config.index_size > 0.0);
  DBS_CHECK_MSG(alloc.count_of(c) > 0, "channel " << c << " is empty");

  const double m = static_cast<double>(config.replication);
  const double data = alloc.size_of(c) / bandwidth;           // D
  const double index = config.index_size / bandwidth;         // I
  const double header = config.header_size / bandwidth;
  const double download = mean_download(alloc, c, bandwidth); // E[z]/b (weighted)

  IndexedChannelMetrics metrics;
  metrics.cycle_time = data + m * index;
  metrics.expected_access =
      (data / m + index) / 2.0 + index + (data + m * index) / 2.0 + download;
  metrics.expected_tuning = header + index + download;
  return metrics;
}

std::size_t optimal_replication(const Allocation& alloc, ChannelId c,
                                double bandwidth, const IndexConfig& config) {
  DBS_CHECK(bandwidth > 0.0);
  const double data = alloc.size_of(c);
  const double ratio = data / config.index_size;
  const double m_star = std::sqrt(std::max(ratio, 1.0));
  const auto lo = static_cast<std::size_t>(std::max(1.0, std::floor(m_star)));
  const std::size_t hi = lo + 1;

  auto access_at = [&](std::size_t m) {
    IndexConfig candidate = config;
    candidate.replication = m;
    return indexed_channel_metrics(alloc, c, bandwidth, candidate).expected_access;
  };
  return access_at(lo) <= access_at(hi) ? lo : hi;
}

double indexed_program_access(const Allocation& alloc, double bandwidth,
                              const IndexConfig& config) {
  double total = 0.0;
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    if (alloc.count_of(c) == 0) continue;
    IndexConfig tuned = config;
    tuned.replication = optimal_replication(alloc, c, bandwidth, config);
    total += alloc.freq_of(c) *
             indexed_channel_metrics(alloc, c, bandwidth, tuned).expected_access;
  }
  return total;
}

double indexed_program_tuning(const Allocation& alloc, double bandwidth,
                              const IndexConfig& config) {
  double total = 0.0;
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    if (alloc.count_of(c) == 0) continue;
    IndexConfig tuned = config;
    tuned.replication = optimal_replication(alloc, c, bandwidth, config);
    total += alloc.freq_of(c) *
             indexed_channel_metrics(alloc, c, bandwidth, tuned).expected_tuning;
  }
  return total;
}

}  // namespace dbs
