// Air indexing extension: (1,m) index interleaving per broadcast channel.
//
// The paper's model assumes clients listen continuously from tune-in until
// their item arrives (tuning time = access latency). Battery-constrained
// clients instead doze and wake: the classic (1,m) scheme of Imielinski,
// Viswanathan & Badrinath (reference [11] of the paper) interleaves m copies
// of an index segment into each cycle so a client can read the next index,
// sleep until its item's slot, and wake to download.
//
// Analytical model used here (derived in DESIGN.md terms; all times in
// seconds for a channel with data payload D = Z_i/b and index transmission
// time I = index_size/b):
//   cycle(m)          = D + m·I
//   probe-to-index(m) = (D/m + I) / 2        (half the inter-index gap)
//   post-index wait   = (D + m·I) / 2        (item uniform in the cycle)
//   access(m)         = probe-to-index + I + post-index wait + z/b
//   tuning(m)         = header + I + z/b     (doze between index and item)
// The access-optimal replication factor is m* = √(D/I) (continuous optimum
// of the m-dependent terms D/(2m) + I·m/2), rounded to the better neighbour.
#pragma once

#include <cstddef>

#include "model/allocation.h"
#include "model/item.h"

namespace dbs {

/// Index configuration for one channel.
struct IndexConfig {
  double index_size = 1.0;   ///< size units of one full index segment
  double header_size = 0.05; ///< size units of the per-bucket header clients
                             ///< must read to locate the next index
  std::size_t replication = 1;  ///< m — copies of the index per cycle
};

/// Analytic metrics of an indexed channel.
struct IndexedChannelMetrics {
  double cycle_time = 0.0;        ///< (Z_i + m·index_size) / b
  double expected_access = 0.0;   ///< frequency-weighted access latency
  double expected_tuning = 0.0;   ///< frequency-weighted tuning time
};

/// Computes the (1,m) metrics of channel `c` under allocation `alloc`.
/// Requires a non-empty channel, bandwidth > 0 and replication ≥ 1.
IndexedChannelMetrics indexed_channel_metrics(const Allocation& alloc, ChannelId c,
                                              double bandwidth,
                                              const IndexConfig& config);

/// Access-optimal integer replication factor m* for channel `c`:
/// √(D/I) rounded to whichever neighbour yields the lower expected access.
std::size_t optimal_replication(const Allocation& alloc, ChannelId c,
                                double bandwidth, const IndexConfig& config);

/// Program-wide expected access latency with per-channel optimal m, weighted
/// by channel aggregate frequency (the indexed analogue of Eq. 2's W_b).
double indexed_program_access(const Allocation& alloc, double bandwidth,
                              const IndexConfig& config);

/// Program-wide expected tuning time with per-channel optimal m.
double indexed_program_tuning(const Allocation& alloc, double bandwidth,
                              const IndexConfig& config);

}  // namespace dbs
