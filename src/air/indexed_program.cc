#include "air/indexed_program.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dbs {

IndexedProgram::IndexedProgram(const Allocation& alloc, double bandwidth,
                               const IndexConfig& config, bool optimal_m)
    : db_(&alloc.database()), bandwidth_(bandwidth),
      index_time_(config.index_size / bandwidth),
      header_time_(config.header_size / bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  DBS_CHECK(config.index_size > 0.0);
  DBS_CHECK(config.header_size >= 0.0);
  DBS_CHECK(config.replication >= 1);

  const ChannelId k = alloc.channels();
  cycle_.assign(k, 0.0);
  layout_.resize(k);
  item_channel_.assign(db_->size(), 0);
  item_slot_.assign(db_->size(), 0);

  for (ChannelId c = 0; c < k; ++c) {
    const std::vector<ItemId> ids = alloc.items_in(c);
    if (ids.empty()) continue;
    std::size_t m = config.replication;
    if (optimal_m) m = optimal_replication(alloc, c, bandwidth, config);
    m = std::max<std::size_t>(1, std::min(m, ids.size()));

    // Interleave: before starting each of m roughly equal-time data runs,
    // transmit one index segment.
    const double data_time = alloc.size_of(c) / bandwidth;
    const double run_target = data_time / static_cast<double>(m);

    ChannelLayout& layout = layout_[c];
    double offset = 0.0;
    std::size_t next_item = 0;
    for (std::size_t seg = 0; seg < m; ++seg) {
      layout.index_starts.push_back(offset);
      offset += index_time_;
      double run = 0.0;
      while (next_item < ids.size() &&
             (run < run_target || seg + 1 == m)) {
        const ItemId id = ids[next_item++];
        item_channel_[id] = c;
        item_slot_[id] = layout.items.size();
        layout.items.push_back(id);
        layout.item_starts.push_back(offset);
        const double duration = db_->item(id).size / bandwidth_;
        offset += duration;
        run += duration;
      }
    }
    DBS_CHECK(next_item == ids.size());
    cycle_[c] = offset;
  }
}

double IndexedProgram::cycle_time(ChannelId c) const {
  DBS_CHECK(c < cycle_.size());
  return cycle_[c];
}

std::size_t IndexedProgram::replication_of(ChannelId c) const {
  DBS_CHECK(c < layout_.size());
  return layout_[c].index_starts.size();
}

double IndexedProgram::next_occurrence(double offset, double cycle, double t) {
  const double m = std::ceil((t - offset) / cycle);
  return offset + std::max(0.0, m) * cycle;
}

IndexedRequestOutcome IndexedProgram::replay_request(ItemId item, double t) const {
  DBS_CHECK(item < item_channel_.size());
  DBS_CHECK(t >= 0.0);
  const ChannelId c = item_channel_[item];
  const ChannelLayout& layout = layout_[c];
  const double cycle = cycle_[c];
  DBS_CHECK_MSG(cycle > 0.0, "item on an empty channel");

  // Step 1: read the current bucket header to locate the next index segment.
  const double after_header = t + header_time_;
  double index_start = std::numeric_limits<double>::infinity();
  for (double offset : layout.index_starts) {
    index_start = std::min(index_start, next_occurrence(offset, cycle, after_header));
  }

  // Step 2: read that index segment.
  const double after_index = index_start + index_time_;

  // Step 3: doze until the item's next start at or after the index read.
  const double item_start =
      next_occurrence(layout.item_starts[item_slot_[item]], cycle, after_index);
  const double duration = db_->item(item).size / bandwidth_;
  const double done = item_start + duration;

  IndexedRequestOutcome outcome;
  outcome.access = done - t;
  outcome.tuning = header_time_ + index_time_ + duration;
  return outcome;
}

IndexedSimReport IndexedProgram::replay(const std::vector<Request>& trace) const {
  std::vector<double> access;
  std::vector<double> tuning;
  access.reserve(trace.size());
  tuning.reserve(trace.size());
  for (const Request& r : trace) {
    const IndexedRequestOutcome outcome = replay_request(r.item, r.time);
    access.push_back(outcome.access);
    tuning.push_back(outcome.tuning);
  }
  IndexedSimReport report;
  report.requests = trace.size();
  report.access = summarize(access);
  report.tuning = summarize(tuning);
  return report;
}

}  // namespace dbs
