// A physical (1,m) indexed broadcast schedule and its selective-tuning
// client replay. This is the executable counterpart of the analytic model in
// air/index.h: it lays out real index and data slots on the air and replays
// dozing clients against them, measuring both access latency and tuning
// (awake) time per request.
//
// Channel cycle layout for replication m over data slots d_1..d_n:
//   [IDX] d_… [IDX] d_… … — the m index segments are spread so that each is
// followed by roughly 1/m of the data payload (by transmission time).
//
// Client protocol (classic selective tuning):
//   1. tune in at t, listen to the current bucket's header (header_time) to
//      learn the next index segment's start — then doze;
//   2. wake for the index segment (index_time), learn the target item's next
//      transmission start — then doze;
//   3. wake exactly at the item's start and stay for the download.
// Tuning time = header + index + download; access = completion − t.
#pragma once

#include <cstddef>
#include <vector>

#include "air/index.h"
#include "common/stats.h"
#include "model/allocation.h"
#include "workload/trace.h"

namespace dbs {

/// One replayed request's outcome.
struct IndexedRequestOutcome {
  double access = 0.0;  ///< completion − tune-in
  double tuning = 0.0;  ///< time spent listening
};

/// Aggregate replay report.
struct IndexedSimReport {
  std::size_t requests = 0;
  Summary access;
  Summary tuning;
};

/// Concrete (1,m) schedule for every channel of an allocation.
class IndexedProgram {
 public:
  /// Uses config.replication for every channel when `optimal_m` is false,
  /// otherwise the per-channel √(D/I) optimum from air/index.h.
  IndexedProgram(const Allocation& alloc, double bandwidth,
                 const IndexConfig& config, bool optimal_m = false);

  ChannelId channels() const { return static_cast<ChannelId>(cycle_.size()); }
  double cycle_time(ChannelId c) const;
  std::size_t replication_of(ChannelId c) const;

  /// Replays one request; see the protocol above.
  IndexedRequestOutcome replay_request(ItemId item, double t) const;

  /// Replays a whole trace.
  IndexedSimReport replay(const std::vector<Request>& trace) const;

 private:
  struct ChannelLayout {
    std::vector<double> index_starts;  ///< starts of the m index segments
    std::vector<double> item_starts;   ///< per local item, slot start
    std::vector<ItemId> items;         ///< local item ids (parallel array)
  };

  /// Next occurrence ≥ t of a periodic offset within this channel's cycle.
  static double next_occurrence(double offset, double cycle, double t);

  const Database* db_;
  double bandwidth_;
  double index_time_;
  double header_time_;
  std::vector<double> cycle_;
  std::vector<ChannelLayout> layout_;
  std::vector<ChannelId> item_channel_;
  std::vector<std::size_t> item_slot_;  ///< index into layout_[c].item_starts
};

}  // namespace dbs
