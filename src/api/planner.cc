#include "api/planner.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "obs/obs.h"

namespace dbs {

PlanResult plan_channel_count(const Database& db, double total_bandwidth,
                              ChannelId max_channels, Algorithm algorithm) {
  DBS_OBS_SPAN("api.planner.plan");
  DBS_CHECK(total_bandwidth > 0.0);
  DBS_CHECK(max_channels >= 1);
  // Matches schedule()'s contract, and guarantees the sweep below runs at
  // least once — without it an empty catalogue would fall through to a
  // std::nullopt dereference.
  DBS_CHECK_MSG(db.size() > 0, "plan_channel_count() needs a non-empty catalogue");
  // Take the min in std::size_t: casting db.size() to ChannelId first could
  // truncate a huge catalogue to a smaller limit (or even to zero).
  const auto limit =
      static_cast<ChannelId>(std::min<std::size_t>(max_channels, db.size()));

  std::optional<ScheduleResult> best;
  ChannelId best_k = 1;
  std::vector<PlanPoint> sweep;
  sweep.reserve(limit);

  for (ChannelId k = 1; k <= limit; ++k) {
    DBS_OBS_SPAN("api.planner.sweep_k");
    ScheduleRequest request;
    request.algorithm = algorithm;
    request.channels = k;
    request.bandwidth = total_bandwidth / static_cast<double>(k);
    ScheduleResult result = schedule(db, request);
    sweep.push_back(PlanPoint{k, request.bandwidth, result.waiting_time});
    if (!best.has_value() || result.waiting_time < best->waiting_time) {
      best = std::move(result);
      best_k = k;
    }
  }

  DBS_OBS_COUNTER_INC("api.planner.runs");
  DBS_OBS_COUNTER_ADD("api.planner.k_evaluated", limit);
  DBS_OBS_GAUGE_SET("api.planner.best_k", best_k);
  DBS_CHECK_MSG(best.has_value(), "planner sweep ran zero iterations");
  return PlanResult{std::move(*best), best_k, std::move(sweep)};
}

}  // namespace dbs
