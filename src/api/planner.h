// Channel-count planning under a fixed total bandwidth budget.
//
// The paper varies K with a *fixed per-channel* bandwidth, so more channels
// are a free win. A deployment usually owns a fixed total bandwidth B that K
// channels split evenly (b = B/K): more channels shorten each cycle's
// content but slow every transfer, so an interior optimum K* appears. This
// planner sweeps K and returns the best program.
#pragma once

#include <cstddef>
#include <vector>

#include "api/scheduler.h"
#include "model/database.h"

namespace dbs {

/// One row of the planner's sweep.
struct PlanPoint {
  ChannelId channels = 0;
  double per_channel_bandwidth = 0.0;
  double waiting_time = 0.0;
};

/// Planner outcome: the winning schedule plus the full sweep for inspection.
struct PlanResult {
  ScheduleResult best;
  ChannelId best_channels = 0;
  std::vector<PlanPoint> sweep;
};

/// \brief Evaluates K = 1..max_channels (capped at N), scheduling with
/// `algorithm` at per-channel bandwidth total_bandwidth/K, and returns the
/// K minimizing W_b.
/// `db` must be a validated non-empty catalogue (DBS_CHECKed, matching
/// schedule()); requires total_bandwidth > 0 and max_channels ≥ 1. On equal
/// waiting times the smallest K wins deterministically (the comparison is
/// strict, so later K never displaces an equal earlier one). The returned
/// sweep holds one PlanPoint per evaluated K so callers can plot the full
/// trade-off curve.
PlanResult plan_channel_count(const Database& db, double total_bandwidth,
                              ChannelId max_channels,
                              Algorithm algorithm = Algorithm::kDrpCds);

}  // namespace dbs
