#include "api/portfolio.h"

#include <array>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/deadline.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/kk_partition.h"
#include "obs/obs.h"

namespace dbs {

std::string_view portfolio_racer_name(PortfolioRacer racer) {
  switch (racer) {
    case PortfolioRacer::kDrpCds:
      return "drp-cds";
    case PortfolioRacer::kKkCds:
      return "kk-cds";
    case PortfolioRacer::kGopt:
      return "gopt";
  }
  DBS_CHECK_MSG(false, "unregistered PortfolioRacer "
                           << static_cast<int>(racer));
  return {};  // unreachable
}

PortfolioResult plan(const Database& db, ChannelId channels, double deadline_ms,
                     const PortfolioOptions& options) {
  DBS_OBS_SPAN("api.portfolio.plan");
  DBS_CHECK_MSG(db.size() > 0, "plan() needs a non-empty catalogue");
  DBS_CHECK_MSG(channels >= 1, "plan() needs at least one channel");
  DBS_CHECK_MSG(channels <= db.size(), "cannot fill more channels than items");
  DBS_CHECK_MSG(deadline_ms > 0.0, "plan() needs a positive deadline");

  Stopwatch watch;
  const Deadline deadline = Deadline::after_ms(deadline_ms);

  // One slot per racer; each racer writes only its own slot, so the race
  // needs no synchronization beyond the pool's join.
  struct Slot {
    std::optional<Allocation> allocation;
    double cost = 0.0;
    double elapsed_ms = 0.0;
    bool completed = true;
  };
  constexpr std::size_t kRacers = 3;
  std::array<Slot, kRacers> slots;

  const auto run_racer = [&](std::size_t index) {
    Stopwatch racer_watch;
    Slot& slot = slots[index];
    switch (static_cast<PortfolioRacer>(index)) {
      case PortfolioRacer::kDrpCds: {
        DrpCdsOptions opts = options.drp_cds;
        opts.cds.deadline = deadline;
        DrpCdsResult result = run_drp_cds(db, channels, opts);
        slot.completed = !opts.run_cds || result.cds.converged;
        slot.allocation.emplace(std::move(result.allocation));
        break;
      }
      case PortfolioRacer::kKkCds: {
        CdsOptions opts = options.kk_cds;
        opts.deadline = deadline;
        RepairResult result = repair_assignment(
            db, channels, kk_seed_allocation(db, channels).assignment(), opts);
        slot.completed = result.cds.converged;
        slot.allocation.emplace(std::move(result.allocation));
        break;
      }
      case PortfolioRacer::kGopt: {
        GoptOptions opts = options.gopt;
        opts.deadline = deadline;
        GoptResult result = run_gopt(db, channels, opts);
        slot.completed = result.completed;
        slot.allocation.emplace(std::move(result.allocation));
        break;
      }
    }
    slot.cost = slot.allocation->cost();
    slot.elapsed_ms = racer_watch.millis();
  };

  run_tasks(kRacers, options.threads == 0 ? kRacers : options.threads,
            run_racer);

  // Deterministic winner selection: strict cost argmin, ties to the lowest
  // racer index. Finish order plays no part, so the choice depends only on
  // the racers' (seeded) outputs.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < kRacers; ++i) {
    if (slots[i].cost < slots[winner].cost) winner = i;
  }

  PortfolioResult result{std::move(*slots[winner].allocation),
                         slots[winner].cost,
                         static_cast<PortfolioRacer>(winner),
                         {},
                         0.0};
  result.racers.reserve(kRacers);
  for (std::size_t i = 0; i < kRacers; ++i) {
    result.racers.push_back(RacerOutcome{static_cast<PortfolioRacer>(i),
                                         slots[i].cost, slots[i].elapsed_ms,
                                         slots[i].completed});
  }
  result.elapsed_ms = watch.millis();

  DBS_OBS_COUNTER_INC("api.portfolio.runs");
  switch (result.winner) {
    case PortfolioRacer::kDrpCds:
      DBS_OBS_COUNTER_INC("api.portfolio.wins.drp_cds");
      break;
    case PortfolioRacer::kKkCds:
      DBS_OBS_COUNTER_INC("api.portfolio.wins.kk_cds");
      break;
    case PortfolioRacer::kGopt:
      DBS_OBS_COUNTER_INC("api.portfolio.wins.gopt");
      break;
  }
  DBS_OBS_HISTOGRAM_OBSERVE("api.portfolio.plan_ms", result.elapsed_ms);
  return result;
}

}  // namespace dbs
