// Budgeted optimizer portfolio (ROADMAP item 3, DESIGN.md §13): the "best
// answer by a deadline" entry point the online service escalates to.
//
// plan() races three complementary planners on the shared worker pool
// (common/parallel.h):
//   * DRP+CDS — the paper's two-step scheme, the quality workhorse;
//   * KK+CDS  — a Karmarkar–Karp differencing seed over the √(f·z) column
//               (core/kk_partition.h) repaired by CDS, strong exactly where
//               DRP's benefit-ratio ordering is weak;
//   * GOPT    — the memetic GA, given whatever budget remains after the
//               cheap racers typically finish early.
// All racers share one cooperative Deadline (common/deadline.h), polled per
// CDS iteration and per GOPT generation, so the race returns within the
// deadline plus at most one such granule. The winner is the strict cost
// argmin with ties resolved to the lowest racer index — never to whichever
// thread happened to finish first — so results are deterministic under
// fixed seeds regardless of scheduling.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "baselines/gopt.h"
#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// The portfolio's racers, in tie-break priority order: on equal costs the
/// lowest enumerator wins, so the cheap deterministic heuristics outrank
/// the GA.
enum class PortfolioRacer {
  kDrpCds,  ///< paper's two-step scheme (core/drp_cds.h)
  kKkCds,   ///< KK differencing seed + CDS repair (core/kk_partition.h)
  kGopt,    ///< deadline-capped memetic GA (baselines/gopt.h)
};

/// \brief Stable display name of a racer ("drp-cds", "kk-cds", "gopt").
/// The returned view points at a string literal and never dangles.
std::string_view portfolio_racer_name(PortfolioRacer racer);

/// Portfolio tuning knobs. The deadline itself is a plan() argument — it is
/// the contract of the call, not a tunable.
struct PortfolioOptions {
  DrpCdsOptions drp_cds;  ///< DRP+CDS racer (its cds.deadline is overwritten)
  CdsOptions kk_cds;      ///< CDS repair of the KK seed (deadline overwritten)
  GoptOptions gopt;       ///< GA racer (its deadline is overwritten)
  /// Worker threads for the race; 0 (the default) runs one per racer. 1
  /// runs the racers sequentially on the calling thread — same result by
  /// the determinism contract, useful under sanitizers.
  std::size_t threads = 0;
};

/// Telemetry for one racer's run within the race.
struct RacerOutcome {
  PortfolioRacer racer = PortfolioRacer::kDrpCds;
  double cost = 0.0;        ///< Eq. 3 cost of this racer's allocation
  double elapsed_ms = 0.0;  ///< wall time of this racer (not the whole race)
  /// False iff the deadline cut this racer short (its allocation is still
  /// valid — just not refined to its natural stopping point).
  bool completed = true;
};

/// Portfolio outcome: the winning allocation plus race telemetry.
struct PortfolioResult {
  Allocation allocation;           ///< the winner's allocation, bound to db
  double cost = 0.0;               ///< allocation.cost()
  PortfolioRacer winner = PortfolioRacer::kDrpCds;
  std::vector<RacerOutcome> racers;  ///< per-racer telemetry, in racer order
  double elapsed_ms = 0.0;         ///< wall time of the whole race
};

/// \brief Races DRP+CDS, KK+CDS and deadline-capped GOPT for `deadline_ms`
/// milliseconds and returns the cheapest allocation found.
///
/// `db` must be a validated non-empty catalogue; requires 1 ≤ channels ≤ N
/// and deadline_ms > 0. Every racer runs to its own completion or to the
/// shared deadline, whichever comes first, so the call returns within
/// deadline_ms plus one cancellation-check granule (one CDS iteration or
/// GOPT generation). Deterministic under fixed seeds: the winner is the
/// cost argmin with ties to the lowest racer index, independent of thread
/// scheduling; with a deadline generous enough for every racer to finish,
/// the full result is bit-identical across runs and thread counts. Throws
/// ContractViolation on invalid input.
PortfolioResult plan(const Database& db, ChannelId channels, double deadline_ms,
                     const PortfolioOptions& options = {});

}  // namespace dbs
