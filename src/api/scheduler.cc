#include "api/scheduler.h"

#include <stdexcept>

#include "api/portfolio.h"
#include "baselines/brute_force.h"
#include "baselines/flat.h"
#include "baselines/greedy.h"
#include "baselines/ordered_dp.h"
#include "baselines/vfk.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "model/cost.h"

namespace dbs {

const std::vector<AlgorithmInfo>& all_algorithms() {
  static const std::vector<AlgorithmInfo> kRegistry = {
      {Algorithm::kFlat, "flat", "round-robin flat program", false},
      {Algorithm::kFlatBalanced, "flat-balanced", "size-balanced flat program", false},
      {Algorithm::kGreedy, "greedy", "best-channel insertion in br order", false},
      {Algorithm::kVfk, "vfk", "conventional frequency-only VF^K", false},
      {Algorithm::kDrp, "drp", "dimension reduction partitioning", false},
      {Algorithm::kDrpCds, "drp-cds", "DRP refined by cost-diminishing selection",
       false},
      {Algorithm::kOrderedDp, "ordered-dp",
       "optimal contiguous partition of the br order", false},
      {Algorithm::kGopt, "gopt", "genetic near-global optimum", false},
      {Algorithm::kAnneal, "anneal", "simulated annealing over Eq. (4) moves", false},
      {Algorithm::kBruteForce, "brute-force", "exact optimum (small N only)", true},
      {Algorithm::kPortfolio, "portfolio",
       "deadline-budgeted race: DRP-CDS | KK-CDS | GOPT", false},
  };
  return kRegistry;
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (const AlgorithmInfo& info : all_algorithms()) {
    if (info.name == name) return info.id;
  }
  return std::nullopt;
}

std::string_view algorithm_name(Algorithm algorithm) {
  for (const AlgorithmInfo& info : all_algorithms()) {
    if (info.id == algorithm) return info.name;
  }
  // Failing loudly is the point: a silent "unknown" is how an enumerator
  // ships without a registry entry (and thus without CLI/CSV discovery).
  DBS_CHECK_MSG(false, "Algorithm enumerator " << static_cast<int>(algorithm)
                                               << " missing from all_algorithms()");
  return {};  // unreachable
}

ScheduleResult schedule(const Database& db, const ScheduleRequest& request) {
  DBS_CHECK_MSG(request.channels >= 1, "schedule() needs at least one channel");
  DBS_CHECK_MSG(request.bandwidth > 0.0, "schedule() needs positive bandwidth");
  DBS_CHECK_MSG(db.size() > 0, "schedule() needs a non-empty catalogue");
  Stopwatch watch;
  std::optional<Allocation> alloc;

  switch (request.algorithm) {
    case Algorithm::kFlat:
      alloc = flat_round_robin(db, request.channels);
      break;
    case Algorithm::kFlatBalanced:
      alloc = flat_size_balanced(db, request.channels);
      break;
    case Algorithm::kGreedy:
      alloc = greedy_insertion(db, request.channels);
      break;
    case Algorithm::kVfk:
      alloc = run_vfk(db, request.channels);
      break;
    case Algorithm::kDrp: {
      DrpCdsOptions options = request.drp_cds;
      options.run_cds = false;
      alloc = run_drp_cds(db, request.channels, options).allocation;
      break;
    }
    case Algorithm::kDrpCds: {
      DrpCdsOptions options = request.drp_cds;
      options.run_cds = true;
      alloc = run_drp_cds(db, request.channels, options).allocation;
      break;
    }
    case Algorithm::kOrderedDp:
      alloc = ordered_dp_optimal(db, request.channels);
      break;
    case Algorithm::kGopt:
      alloc = run_gopt(db, request.channels, request.gopt).allocation;
      break;
    case Algorithm::kAnneal:
      alloc = run_annealing(db, request.channels, request.anneal).allocation;
      break;
    case Algorithm::kBruteForce: {
      auto exact = brute_force_optimal(db, request.channels);
      if (!exact.has_value()) {
        throw std::runtime_error("brute-force search exceeded its node budget");
      }
      alloc = std::move(exact->allocation);
      break;
    }
    case Algorithm::kPortfolio:
      alloc = plan(db, request.channels, request.portfolio_deadline_ms,
                   request.portfolio)
                  .allocation;
      break;
  }

  ScheduleResult result{std::move(*alloc), 0.0, 0.0, 0.0};
  result.cost = result.allocation.cost();
  result.waiting_time = program_waiting_time(result.allocation, request.bandwidth);
  // Convention (docs/BENCHMARKING.md): elapsed_ms covers the whole call —
  // algorithm plus metric evaluation — so it matches what any external
  // stopwatch around schedule() measures.
  result.elapsed_ms = watch.millis();
  return result;
}

}  // namespace dbs
