// High-level facade: pick an algorithm by name or id, run it, and collect
// cost / waiting-time / runtime in one record. This is the entry point the
// examples and the figure-reproduction benches use.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/annealing.h"
#include "baselines/gopt.h"
#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Every channel-allocation algorithm the library ships.
enum class Algorithm {
  kFlat,          ///< round-robin, ignores f and z
  kFlatBalanced,  ///< size-balanced flat program
  kGreedy,        ///< best-channel insertion in br order
  kVfk,           ///< conventional frequency-only VF^K (paper baseline)
  kDrp,           ///< paper's rough allocation
  kDrpCds,        ///< paper's full two-step scheme
  kOrderedDp,     ///< optimal contiguous partition of the br order
  kGopt,          ///< genetic near-global-optimum (paper baseline)
  kAnneal,        ///< simulated-annealing metaheuristic
  kBruteForce,    ///< exact optimum, small N only
};

/// Metadata for algorithm discovery (used by examples to enumerate).
struct AlgorithmInfo {
  Algorithm id;
  std::string_view name;      ///< stable CLI/CSV name, e.g. "drp-cds"
  std::string_view summary;   ///< one-line description
  bool exponential = false;   ///< true for BruteForce
};

/// All registered algorithms in presentation order.
const std::vector<AlgorithmInfo>& all_algorithms();

/// Name → algorithm lookup ("drp-cds", "vfk", ...). Nullopt when unknown.
std::optional<Algorithm> algorithm_from_name(std::string_view name);

/// Algorithm → stable name.
std::string_view algorithm_name(Algorithm algorithm);

/// Request: which algorithm, how many channels, and tuning knobs for the
/// algorithms that have them.
struct ScheduleRequest {
  Algorithm algorithm = Algorithm::kDrpCds;
  ChannelId channels = 4;
  double bandwidth = 10.0;  ///< for the reported waiting time (paper Table 5)
  DrpCdsOptions drp_cds;    ///< used by kDrp / kDrpCds
  GoptOptions gopt;         ///< used by kGopt
  AnnealOptions anneal;     ///< used by kAnneal
};

/// Result: the allocation plus the headline metrics.
struct ScheduleResult {
  Allocation allocation;
  double cost = 0.0;          ///< Σ F_i·Z_i (Eq. 3)
  double waiting_time = 0.0;  ///< W_b (Eq. 2) at the requested bandwidth
  double elapsed_ms = 0.0;    ///< wall-clock runtime of the algorithm proper
};

/// Runs the requested algorithm. Throws ContractViolation on invalid input
/// (e.g. K > N) and std::runtime_error if BruteForce exceeds its node budget.
ScheduleResult schedule(const Database& db, const ScheduleRequest& request);

}  // namespace dbs
