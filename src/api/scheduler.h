// High-level facade: pick an algorithm by name or id, run it, and collect
// cost / waiting-time / runtime in one record. This is the entry point the
// examples and the figure-reproduction benches use.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/portfolio.h"
#include "baselines/annealing.h"
#include "baselines/gopt.h"
#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Every channel-allocation algorithm the library ships.
enum class Algorithm {
  kFlat,          ///< round-robin, ignores f and z
  kFlatBalanced,  ///< size-balanced flat program
  kGreedy,        ///< best-channel insertion in br order
  kVfk,           ///< conventional frequency-only VF^K (paper baseline)
  kDrp,           ///< paper's rough allocation
  kDrpCds,        ///< paper's full two-step scheme
  kOrderedDp,     ///< optimal contiguous partition of the br order
  kGopt,          ///< genetic near-global-optimum (paper baseline)
  kAnneal,        ///< simulated-annealing metaheuristic
  kBruteForce,    ///< exact optimum, small N only
  kPortfolio,     ///< budgeted race: DRP-CDS | KK-CDS | GOPT (api/portfolio.h)
};

/// Metadata for algorithm discovery (used by examples to enumerate).
struct AlgorithmInfo {
  Algorithm id;
  std::string_view name;      ///< stable CLI/CSV name, e.g. "drp-cds"
  std::string_view summary;   ///< one-line description
  bool exponential = false;   ///< true for BruteForce
};

/// \brief All registered algorithms in presentation order.
/// The returned registry is a process-lifetime constant; iterate it to
/// enumerate every algorithm with its stable name and summary.
const std::vector<AlgorithmInfo>& all_algorithms();

/// \brief Name → algorithm lookup ("drp-cds", "vfk", ...).
/// `name` must be one of the stable CLI/CSV names from all_algorithms();
/// returns std::nullopt when the name is unknown.
std::optional<Algorithm> algorithm_from_name(std::string_view name);

/// \brief Algorithm → stable name.
/// Every Algorithm enumerator is registered, so this throws
/// ContractViolation for an enum value missing from all_algorithms() — a
/// silent "unknown" once let unregistered algorithms ship unnoticed. The
/// returned view points at the static registry and never dangles.
std::string_view algorithm_name(Algorithm algorithm);

/// Request: which algorithm, how many channels, and tuning knobs for the
/// algorithms that have them.
struct ScheduleRequest {
  Algorithm algorithm = Algorithm::kDrpCds;
  ChannelId channels = 4;
  double bandwidth = 10.0;  ///< for the reported waiting time (paper Table 5)
  DrpCdsOptions drp_cds;    ///< used by kDrp / kDrpCds
  GoptOptions gopt;         ///< used by kGopt
  AnnealOptions anneal;     ///< used by kAnneal
  PortfolioOptions portfolio;  ///< used by kPortfolio
  /// Race budget for kPortfolio, in milliseconds (see api/portfolio.h).
  double portfolio_deadline_ms = 250.0;
};

/// Result: the allocation plus the headline metrics.
struct ScheduleResult {
  Allocation allocation;
  double cost = 0.0;          ///< Σ F_i·Z_i (Eq. 3)
  double waiting_time = 0.0;  ///< W_b (Eq. 2) at the requested bandwidth
  /// Wall-clock time of the whole schedule() call: the algorithm *plus* the
  /// cost / waiting-time evaluation above. This is the same span an
  /// external stopwatch around schedule() sees, so harness brackets and
  /// this field agree by construction (convention documented in
  /// docs/BENCHMARKING.md; before PR 9 evaluation was excluded).
  double elapsed_ms = 0.0;
};

/// \brief Runs the requested algorithm on `db` and returns the allocation
/// with its headline metrics.
/// `db` must be a validated non-empty catalogue; `request` selects the
/// algorithm, channel count (1 ≤ K ≤ N), bandwidth (> 0) and per-algorithm
/// tuning knobs. Throws ContractViolation on invalid input (e.g. K > N) and
/// std::runtime_error if BruteForce exceeds its node budget. Stateless and
/// safe to call from several threads on the same `db` concurrently.
ScheduleResult schedule(const Database& db, const ScheduleRequest& request);

}  // namespace dbs
