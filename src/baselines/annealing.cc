#include "baselines/annealing.h"

#include <cmath>

#include "baselines/greedy.h"
#include "common/check.h"
#include "common/rng.h"

namespace dbs {

AnnealResult run_annealing(const Database& db, ChannelId channels,
                           const AnnealOptions& options) {
  const std::size_t n = db.size();
  DBS_CHECK(channels >= 1);
  DBS_CHECK_MSG(channels <= n, "cannot fill more channels than items");
  DBS_CHECK(options.initial_temperature > 0.0);
  DBS_CHECK(options.cooling > 0.0 && options.cooling <= 1.0);

  Rng rng(options.seed);

  Allocation current = options.start_from_greedy
                           ? greedy_insertion(db, channels)
                           : [&] {
                               std::vector<ChannelId> genes(n);
                               for (auto& g : genes) {
                                 g = static_cast<ChannelId>(rng.below(channels));
                               }
                               return Allocation(db, channels, std::move(genes));
                             }();

  double current_cost = current.cost();
  Allocation best = current;
  double best_cost = current_cost;
  double temperature = options.initial_temperature * current_cost;
  std::size_t accepted = 0;

  for (std::size_t step = 0; step < options.steps && channels > 1; ++step) {
    const ItemId item = static_cast<ItemId>(rng.below(n));
    // Propose a different channel (channels ≥ 2 here).
    ChannelId to = static_cast<ChannelId>(rng.below(channels - 1));
    if (to >= current.channel_of(item)) ++to;

    const double gain = current.move_gain(item, to);  // positive = downhill
    const bool accept =
        gain >= 0.0 ||
        (temperature > 0.0 && rng.uniform01() < std::exp(gain / temperature));
    if (accept) {
      current.move(item, to);
      current_cost -= gain;
      ++accepted;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
    temperature *= options.cooling;
  }

  // Re-derive the exact cost to shed any accumulated float drift.
  best_cost = best.cost();
  return AnnealResult{std::move(best), best_cost, accepted};
}

}  // namespace dbs
