// Simulated-annealing baseline: a second metaheuristic reference point
// besides GOPT. Anneals over single-item moves using the O(1) reduction of
// Eq. (4), accepting uphill moves with the Metropolis rule under a geometric
// cooling schedule, and remembers the best allocation visited.
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Annealer knobs. The defaults anneal long enough to be competitive with
/// DRP-CDS on the paper's workload sizes while staying well under GOPT cost.
struct AnnealOptions {
  std::size_t steps = 200'000;     ///< proposed moves
  double initial_temperature = 0.05;  ///< relative to the starting cost
  double cooling = 0.9999;         ///< geometric factor per step
  bool start_from_greedy = true;   ///< false = uniform random start
  std::uint64_t seed = 7;
};

/// Annealing outcome.
struct AnnealResult {
  Allocation allocation;  ///< best allocation visited
  double cost = 0.0;
  std::size_t accepted = 0;  ///< accepted proposals (incl. uphill)
};

/// Runs simulated annealing. Requires 1 ≤ K ≤ N.
AnnealResult run_annealing(const Database& db, ChannelId channels,
                           const AnnealOptions& options = {});

}  // namespace dbs
