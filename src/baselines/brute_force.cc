#include "baselines/brute_force.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dbs {
namespace {

/// Depth-first enumeration with symmetry breaking: item at depth d may use
/// channels 0..min(used, K−1), so each set partition is visited once.
/// Pruning: the incremental cost of placing remaining item x anywhere is at
/// least f_x·z_x (placing it alone), so
///   lower_bound = partial_cost + Σ_{remaining} f_x z_x.
class Searcher {
 public:
  Searcher(const Database& db, ChannelId channels, const BruteForceLimits& limits)
      : db_(db), channels_(channels), limits_(limits) {
    // Assign high-impact items first: larger f·z fixes more cost early and
    // tightens the bound sooner.
    order_.resize(db.size());
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&db](ItemId a, ItemId b) {
      const double wa = db.item(a).freq * db.item(a).size;
      const double wb = db.item(b).freq * db.item(b).size;
      if (wa != wb) return wa > wb;
      return a < b;
    });
    suffix_weight_.assign(db.size() + 1, 0.0);
    for (std::size_t i = db.size(); i > 0; --i) {
      const Item& it = db.item(order_[i - 1]);
      suffix_weight_[i - 1] = suffix_weight_[i] + it.freq * it.size;
    }
    freq_.assign(channels, 0.0);
    size_.assign(channels, 0.0);
    current_.assign(db.size(), 0);
    best_assignment_.assign(db.size(), 0);
  }

  bool run() {
    best_cost_ = greedy_upper_bound();
    dfs(0, 0, 0.0);
    return nodes_ <= limits_.max_nodes;
  }

  const std::vector<ChannelId>& best_assignment() const { return best_assignment_; }
  double best_cost() const { return best_cost_; }
  std::uint64_t nodes() const { return nodes_; }

 private:
  /// Seeds the incumbent with greedy insertion so pruning bites immediately.
  double greedy_upper_bound() {
    std::vector<double> f(channels_, 0.0), z(channels_, 0.0);
    for (std::size_t depth = 0; depth < order_.size(); ++depth) {
      const Item& it = db_.item(order_[depth]);
      ChannelId best = 0;
      double best_delta = 0.0;
      for (ChannelId c = 0; c < channels_; ++c) {
        const double delta = it.freq * z[c] + it.size * f[c] + it.freq * it.size;
        if (c == 0 || delta < best_delta) {
          best = c;
          best_delta = delta;
        }
      }
      f[best] += it.freq;
      z[best] += it.size;
      best_assignment_[order_[depth]] = best;
    }
    double cost = 0.0;
    for (ChannelId c = 0; c < channels_; ++c) cost += f[c] * z[c];
    return cost;
  }

  void dfs(std::size_t depth, ChannelId used, double partial_cost) {
    if (nodes_ > limits_.max_nodes) return;
    ++nodes_;
    if (partial_cost + suffix_weight_[depth] >= best_cost_) return;
    if (depth == order_.size()) {
      best_cost_ = partial_cost;
      for (std::size_t i = 0; i < current_.size(); ++i) {
        best_assignment_[order_[i]] = current_[i];
      }
      return;
    }
    const Item& it = db_.item(order_[depth]);
    const ChannelId limit = std::min<ChannelId>(channels_ - 1, used);
    for (ChannelId c = 0; c <= limit; ++c) {
      const double delta = it.freq * size_[c] + it.size * freq_[c] + it.freq * it.size;
      freq_[c] += it.freq;
      size_[c] += it.size;
      current_[depth] = c;
      dfs(depth + 1, std::max<ChannelId>(used, c + 1), partial_cost + delta);
      freq_[c] -= it.freq;
      size_[c] -= it.size;
    }
  }

  const Database& db_;
  const ChannelId channels_;
  const BruteForceLimits limits_;
  std::vector<ItemId> order_;
  std::vector<double> suffix_weight_;
  std::vector<double> freq_, size_;
  std::vector<ChannelId> current_;
  std::vector<ChannelId> best_assignment_;
  double best_cost_ = 0.0;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::optional<BruteForceResult> brute_force_optimal(const Database& db,
                                                    ChannelId channels,
                                                    const BruteForceLimits& limits) {
  DBS_CHECK(channels >= 1);
  DBS_CHECK_MSG(channels <= db.size(), "cannot fill more channels than items");
  Searcher searcher(db, channels, limits);
  const bool complete = searcher.run();
  if (!complete) return std::nullopt;
  Allocation alloc(db, channels, searcher.best_assignment());
  return BruteForceResult{std::move(alloc), searcher.best_cost(), searcher.nodes()};
}

}  // namespace dbs
