// Exact global optimum by branch-and-bound enumeration of set partitions.
// Exponential — only feasible for small databases (N ≲ 18); used by tests to
// certify that the heuristics' "local optimum is close to the global optimum"
// claim holds, and by the small-N quality benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Search limits for the exact solver.
struct BruteForceLimits {
  /// Abort (return nullopt) after visiting this many search nodes.
  std::uint64_t max_nodes = 200'000'000;
};

/// Result of an exact search.
struct BruteForceResult {
  Allocation allocation;
  double cost = 0.0;
  std::uint64_t nodes_visited = 0;
};

/// Finds a minimum-cost partition of the database into at most `channels`
/// groups (empty channels cost nothing, so "at most" and "exactly" have the
/// same optimum value whenever K ≤ N). Channel indices are canonicalized in
/// first-use order. Returns nullopt if the node budget is exhausted.
std::optional<BruteForceResult> brute_force_optimal(
    const Database& db, ChannelId channels, const BruteForceLimits& limits = {});

}  // namespace dbs
