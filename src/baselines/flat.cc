#include "baselines/flat.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dbs {

Allocation flat_round_robin(const Database& db, ChannelId channels) {
  DBS_CHECK(channels >= 1);
  std::vector<ChannelId> assignment(db.size());
  for (ItemId id = 0; id < db.size(); ++id) {
    assignment[id] = static_cast<ChannelId>(id % channels);
  }
  return Allocation(db, channels, std::move(assignment));
}

Allocation flat_size_balanced(const Database& db, ChannelId channels) {
  DBS_CHECK(channels >= 1);
  std::vector<ItemId> ids(db.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&db](ItemId a, ItemId b) {
    if (db.item(a).size != db.item(b).size) return db.item(a).size > db.item(b).size;
    return a < b;
  });

  std::vector<double> load(channels, 0.0);
  std::vector<ChannelId> assignment(db.size(), 0);
  for (ItemId id : ids) {
    const auto lightest = static_cast<ChannelId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[id] = lightest;
    load[lightest] += db.item(id).size;
  }
  return Allocation(db, channels, std::move(assignment));
}

}  // namespace dbs
