// Flat broadcast programs: the naive allocations the paper's introduction
// dismisses, kept as the floor every real algorithm must beat.
#pragma once

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Round-robin in item-id order: item i goes to channel i mod K. Ignores
/// both frequency and size.
Allocation flat_round_robin(const Database& db, ChannelId channels);

/// Size-balanced flat program: items in size-descending order, each placed on
/// the channel with the smallest aggregate size so far (LPT makespan rule).
/// Equalizes broadcast cycles but still ignores access frequencies.
Allocation flat_size_balanced(const Database& db, ChannelId channels);

}  // namespace dbs
