#include "baselines/gopt.h"

#include <algorithm>
#include <utility>

#include "baselines/greedy.h"
#include "baselines/ordered_dp.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/cds.h"
#include "core/drp.h"

namespace dbs {
namespace {

using Chromosome = std::vector<ChannelId>;

/// Cost of a chromosome: Σ F_i·Z_i computed in one pass.
double chromosome_cost(const Database& db, ChannelId channels,
                       const Chromosome& genes) {
  std::vector<double> f(channels, 0.0), z(channels, 0.0);
  for (ItemId id = 0; id < genes.size(); ++id) {
    const Item& it = db.item(id);
    f[genes[id]] += it.freq;
    z[genes[id]] += it.size;
  }
  double cost = 0.0;
  for (ChannelId c = 0; c < channels; ++c) cost += f[c] * z[c];
  return cost;
}

struct Individual {
  Chromosome genes;
  double cost = 0.0;
};

}  // namespace

GoptResult run_gopt(const Database& db, ChannelId channels,
                    const GoptOptions& options) {
  const std::size_t n = db.size();
  DBS_CHECK(channels >= 1);
  DBS_CHECK_MSG(channels <= n, "cannot fill more channels than items");
  DBS_CHECK(options.population >= 2);
  DBS_CHECK(options.tournament >= 1);

  Rng rng(options.seed);
  std::uint64_t evaluations = 0;

  auto evaluate = [&](Individual& ind) {
    ind.cost = chromosome_cost(db, channels, ind.genes);
    ++evaluations;
  };

  // Every internal CDS polish shares the run's deadline, so a budgeted GOPT
  // cannot hide an unbounded local search inside a generation.
  CdsOptions polish_options;
  polish_options.deadline = options.deadline;

  // ---- initial population -------------------------------------------------
  std::vector<Individual> population(options.population);
  std::size_t next = 0;
  if (options.seed_with_heuristics) {
    // Memetic seeds: the paper's two-step heuristic and the DP-optimal
    // contiguous partition, each CDS-polished, plus plain greedy. With
    // elitism this makes GOPT never worse than any of them, matching its
    // role as the (near-)global-optimum reference.
    Allocation drp_polished = run_drp(db, channels).allocation;
    run_cds(drp_polished, polish_options);
    population[next].genes = drp_polished.assignment();
    evaluate(population[next++]);
    if (next < population.size() && !options.deadline.armed()) {
      // Skipped under any armed deadline (not just an expired one): the
      // ordered-DP seed is O(K·N²) with no cancellation point, so on large
      // instances it alone could overrun an entire race budget.
      Allocation dp_polished = ordered_dp_optimal(db, channels);
      run_cds(dp_polished, polish_options);
      population[next].genes = dp_polished.assignment();
      evaluate(population[next++]);
    }
    if (next < population.size()) {
      population[next].genes = greedy_insertion(db, channels).assignment();
      evaluate(population[next++]);
    }
  }
  for (; next < population.size(); ++next) {
    Chromosome genes(n);
    for (ItemId id = 0; id < n; ++id) {
      genes[id] = static_cast<ChannelId>(rng.below(channels));
    }
    population[next].genes = std::move(genes);
    evaluate(population[next]);
  }

  auto better = [](const Individual& a, const Individual& b) {
    return a.cost < b.cost;
  };

  Individual best = *std::min_element(population.begin(), population.end(), better);

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = &population[rng.below(population.size())];
    for (std::size_t t = 1; t < options.tournament; ++t) {
      const Individual& challenger = population[rng.below(population.size())];
      if (challenger.cost < winner->cost) winner = &challenger;
    }
    return *winner;
  };

  // ---- generational loop --------------------------------------------------
  std::size_t generations_run = 0;
  std::size_t stall = 0;
  bool completed = true;
  std::vector<Individual> offspring(population.size());

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    if (options.deadline.expired()) {
      // Cooperative cancellation granule: one generation.
      completed = false;
      break;
    }
    ++generations_run;

    // Elitism: copy the best individuals unchanged.
    std::partial_sort(population.begin(),
                      population.begin() +
                          static_cast<std::ptrdiff_t>(
                              std::min(options.elites, population.size())),
                      population.end(), better);
    std::size_t produced = 0;
    for (; produced < options.elites && produced < population.size(); ++produced) {
      offspring[produced] = population[produced];
    }

    while (produced < population.size()) {
      Individual child;
      const Individual& mother = tournament_pick();
      if (rng.chance(options.crossover_rate)) {
        const Individual& father = tournament_pick();
        child.genes.resize(n);
        if (rng.chance(options.uniform_crossover)) {
          for (std::size_t i = 0; i < n; ++i) {
            child.genes[i] = rng.chance(0.5) ? mother.genes[i] : father.genes[i];
          }
        } else {
          const std::size_t cut = static_cast<std::size_t>(rng.below(n + 1));
          for (std::size_t i = 0; i < n; ++i) {
            child.genes[i] = i < cut ? mother.genes[i] : father.genes[i];
          }
        }
      } else {
        child.genes = mother.genes;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(options.mutation_rate)) {
          child.genes[i] = static_cast<ChannelId>(rng.below(channels));
        }
      }
      evaluate(child);
      offspring[produced++] = std::move(child);
    }
    population.swap(offspring);

    // Memetic step: occasionally polish the generation's best individual to
    // its local optimum and put it back; recombination then explores from
    // refined material instead of half-finished assignments.
    if (options.polish_interval != 0 && (gen + 1) % options.polish_interval == 0) {
      auto best_it = std::min_element(population.begin(), population.end(), better);
      Allocation polished(db, channels, best_it->genes);
      run_cds(polished, polish_options);
      best_it->genes = polished.assignment();
      evaluate(*best_it);
    }

    const Individual& gen_best =
        *std::min_element(population.begin(), population.end(), better);
    if (gen_best.cost < best.cost) {
      best = gen_best;
      stall = 0;
    } else if (++stall >= options.stall_generations) {
      break;
    }
  }

  Allocation alloc(db, channels, best.genes);
  if (options.local_search_final) {
    // Memetic polish; strictly non-increasing in cost. Deadline-capped like
    // every other CDS run, so an expired budget still gets whatever moves
    // fit before returning.
    run_cds(alloc, polish_options);
  }
  const double final_cost = alloc.cost();
  return GoptResult{std::move(alloc), final_cost, generations_run, evaluations,
                    completed};
}

}  // namespace dbs
