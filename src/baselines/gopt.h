// Algorithm GOPT — the paper's global-optimum reference, implemented with a
// generational Genetic Algorithm (the paper cites Goldberg 1989 / Holland
// 1975 and omits details "for interest of space").
//
// Chromosome: an assignment vector of length N with gene values in 0..K−1.
// The paper notes exactly this encoding when explaining why GOPT's execution
// time is more sensitive to N (chromosome length) than to K (gene alphabet).
// Fitness is the reciprocal of the cost function (Eq. 3). Selection is
// tournament-based; crossover mixes one-point and uniform operators; mutation
// re-draws single genes; the best individuals survive unchanged (elitism).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/deadline.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// GA hyper-parameters. Defaults are sized so that on the paper's workloads
/// (N ≤ 180, K ≤ 10) GOPT matches the exact optimum on small instances while
/// remaining orders of magnitude slower than DRP-CDS — the paper's trade-off.
struct GoptOptions {
  std::size_t population = 120;
  std::size_t generations = 600;
  std::size_t tournament = 3;       ///< tournament size for parent selection
  double crossover_rate = 0.9;      ///< probability a pair is crossed over
  double uniform_crossover = 0.5;   ///< share of crossovers that are uniform
  double mutation_rate = 0.02;      ///< per-gene reassignment probability
  std::size_t elites = 2;           ///< individuals copied unchanged
  std::size_t stall_generations = 150;  ///< early stop if no improvement
  bool seed_with_heuristics = true; ///< inject DRP-CDS/greedy seeds (memetic start)
  bool local_search_final = true;   ///< polish the best individual with CDS
  std::size_t polish_interval = 40; ///< every k generations, CDS-polish the
                                    ///< current best and reinsert (0 = never);
                                    ///< lets the GA escape local optima that
                                    ///< crossover alone cannot leave
  std::uint64_t seed = 42;

  /// Cooperative cancellation (DESIGN.md §13): polled once per generation,
  /// between heuristic seeds, and forwarded into every internal CDS polish.
  /// When it fires the search stops and returns the best individual found so
  /// far. An *armed* deadline also skips the O(K·N²) ordered-DP seed, which
  /// has no cancellation point of its own — a budgeted run must not sink its
  /// whole budget before the first generation. never() (the default)
  /// reproduces the unbudgeted search bit-for-bit.
  Deadline deadline = Deadline::never();
};

/// GOPT run record.
struct GoptResult {
  Allocation allocation;
  double cost = 0.0;
  std::size_t generations_run = 0;
  std::uint64_t evaluations = 0;  ///< number of fitness evaluations performed
  bool completed = true;  ///< false iff the deadline stopped the search early
};

/// Runs the genetic search. Requires 1 ≤ K ≤ N.
GoptResult run_gopt(const Database& db, ChannelId channels,
                    const GoptOptions& options = {});

}  // namespace dbs
