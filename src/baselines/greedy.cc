#include "baselines/greedy.h"

#include "common/check.h"

namespace dbs {

Allocation greedy_insertion(const Database& db, ChannelId channels) {
  DBS_CHECK(channels >= 1);
  std::vector<double> freq(channels, 0.0);
  std::vector<double> size(channels, 0.0);
  std::vector<ChannelId> assignment(db.size(), 0);

  for (ItemId id : db.benefit_order()) {
    const Item& it = db.item(id);
    ChannelId best = 0;
    double best_delta = 0.0;
    for (ChannelId c = 0; c < channels; ++c) {
      const double delta = it.freq * size[c] + it.size * freq[c] + it.freq * it.size;
      if (c == 0 || delta < best_delta) {
        best = c;
        best_delta = delta;
      }
    }
    assignment[id] = best;
    freq[best] += it.freq;
    size[best] += it.size;
  }
  return Allocation(db, channels, std::move(assignment));
}

}  // namespace dbs
