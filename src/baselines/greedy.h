// Greedy best-channel insertion: a simple cost-aware heuristic used as an
// intermediate baseline between Flat and DRP.
#pragma once

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Inserts items in benefit-ratio-descending order, each onto the channel
/// where it increases total cost the least. Adding item (f, z) to channel c
/// raises cost by f·Z_c + z·F_c + f·z, so the scan is O(N·K).
Allocation greedy_insertion(const Database& db, ChannelId channels);

}  // namespace dbs
