#include "baselines/ordered_dp.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "core/partition.h"

namespace dbs {

Allocation ordered_dp_optimal(const Database& db, ChannelId channels,
                              ItemOrdering ordering) {
  const std::size_t n = db.size();
  DBS_CHECK(channels >= 1);
  DBS_CHECK_MSG(channels <= n, "cannot fill more channels than items");

  std::vector<ItemId> order;
  switch (ordering) {
    case ItemOrdering::kBenefitRatioDesc:
      // GOPT's canonical ordering: reuse the Database's cached sort.
      order = db.benefit_order();
      break;
    case ItemOrdering::kFreqDesc:
      order = db.ids_by_freq_desc();
      break;
    case ItemOrdering::kSizeAsc: {
      order.resize(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&db](ItemId a, ItemId b) {
        if (db.item(a).size != db.item(b).size) return db.item(a).size < db.item(b).size;
        return a < b;
      });
      break;
    }
  }

  std::optional<PrefixSums> local_sums;
  if (ordering != ItemOrdering::kBenefitRatioDesc) local_sums.emplace(db, order);
  const PrefixSums& sums =
      local_sums.has_value() ? *local_sums : db.benefit_prefix();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(channels + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> cut(channels + 1,
                                            std::vector<std::size_t>(n + 1, 0));
  dp[0][0] = 0.0;
  for (ChannelId k = 1; k <= channels; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      for (std::size_t j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] == kInf) continue;
        const double candidate = dp[k - 1][j] + sums.cost_of(j, i);
        if (candidate < dp[k][i]) {
          dp[k][i] = candidate;
          cut[k][i] = j;
        }
      }
    }
  }

  std::vector<ChannelId> assignment(n, 0);
  std::size_t end = n;
  for (ChannelId k = channels; k >= 1; --k) {
    const std::size_t begin = cut[k][end];
    for (std::size_t i = begin; i < end; ++i) {
      assignment[order[i]] = static_cast<ChannelId>(k - 1);
    }
    end = begin;
  }
  DBS_CHECK(end == 0);
  return Allocation(db, channels, std::move(assignment));
}

}  // namespace dbs
