// Optimal contiguous partition under the true diverse cost function.
//
// DRP restricts itself to contiguous groups of the benefit-ratio order and
// finds them greedily (top-down splitting). This DP computes the *best
// possible* contiguous partition of the same order, so it bounds from below
// what any split strategy operating on that order can achieve — the natural
// quality yardstick for the DRP ablations.
#pragma once

#include "core/drp.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Exact minimum-cost partition of the items into K contiguous runs of the
/// given ordering (default: the paper's benefit-ratio order), minimizing the
/// true objective Σ_i F_i·Z_i. O(K·N²) time, O(K·N) space.
Allocation ordered_dp_optimal(const Database& db, ChannelId channels,
                              ItemOrdering ordering = ItemOrdering::kBenefitRatioDesc);

}  // namespace dbs
