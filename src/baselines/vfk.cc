#include "baselines/vfk.h"

#include <limits>

#include "common/check.h"

namespace dbs {

Allocation run_vfk(const Database& db, ChannelId channels) {
  const std::size_t n = db.size();
  DBS_CHECK(channels >= 1);
  DBS_CHECK_MSG(channels <= n, "VF^K cannot fill more channels than items");

  const std::vector<ItemId> order = db.ids_by_freq_desc();

  // Prefix frequencies over the sorted order; segment [a, b) has aggregate
  // frequency pf[b] − pf[a] and the conventional cost (pf[b] − pf[a])·(b − a).
  std::vector<double> pf(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) pf[i + 1] = pf[i] + db.item(order[i]).freq;
  auto segment_cost = [&](std::size_t a, std::size_t b) {
    return (pf[b] - pf[a]) * static_cast<double>(b - a);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[k][i]: min cost of splitting the first i items into k segments.
  std::vector<std::vector<double>> dp(channels + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> cut(channels + 1,
                                            std::vector<std::size_t>(n + 1, 0));
  dp[0][0] = 0.0;
  for (ChannelId k = 1; k <= channels; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      for (std::size_t j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] == kInf) continue;
        const double candidate = dp[k - 1][j] + segment_cost(j, i);
        if (candidate < dp[k][i]) {
          dp[k][i] = candidate;
          cut[k][i] = j;
        }
      }
    }
  }

  // Recover the segment boundaries, then assign channels in segment order.
  std::vector<ChannelId> assignment(n, 0);
  std::size_t end = n;
  for (ChannelId k = channels; k >= 1; --k) {
    const std::size_t begin = cut[k][end];
    for (std::size_t i = begin; i < end; ++i) {
      assignment[order[i]] = static_cast<ChannelId>(k - 1);
    }
    end = begin;
  }
  DBS_CHECK(end == 0);
  return Allocation(db, channels, std::move(assignment));
}

}  // namespace dbs
