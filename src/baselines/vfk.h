// Algorithm VF^K (Peng & Chen, Wireless Networks 2003) — the conventional
// broadcasting environment's channel-allocation algorithm, used by the paper
// as the frequency-only comparison baseline.
//
// In the conventional environment every item has the same size z, so the
// schedule-dependent cost of channel i reduces to F_i · N_i · z and the
// optimal program is a contiguous partition of the frequency-descending item
// sequence minimizing Σ_i F_i · N_i. We compute that partition exactly with
// dynamic programming (the "variant fanout" tree of the original algorithm
// realizes the same optimum) and then evaluate the resulting allocation under
// the true diverse sizes — exactly what the paper does in §4.
#pragma once

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Runs VF^K: frequency-descending order, DP-optimal contiguous partition
/// under the equal-size objective Σ F_i·N_i. Requires 1 ≤ K ≤ N.
/// Complexity O(K·N²).
Allocation run_vfk(const Database& db, ChannelId channels);

}  // namespace dbs
