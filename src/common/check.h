// Contract-checking macros used across the library.
//
// DBS_CHECK   — precondition / invariant check, always on. Violations throw
//               dbs::ContractViolation; broadcast scheduling inputs come from
//               user-supplied catalogues, so they must be validated even in
//               release builds.
// DBS_ASSERT  — internal sanity check, compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dbs {

/// Thrown when a DBS_CHECK contract fails. Carries the failing expression,
/// source location and an optional caller-supplied message.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace dbs

#define DBS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::dbs::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DBS_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream dbs_check_os_;                                \
      dbs_check_os_ << msg;                                            \
      ::dbs::detail::fail_check(#expr, __FILE__, __LINE__, dbs_check_os_.str()); \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
// The expression stays inside an unevaluated sizeof so its operands remain
// odr-used: variables referenced only from DBS_ASSERT do not trigger
// -Wunused-variable in release builds, yet no code is generated.
#define DBS_ASSERT(expr) ((void)sizeof((expr) ? 1 : 0))
#else
#define DBS_ASSERT(expr) DBS_CHECK(expr)
#endif
