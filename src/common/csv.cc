#include "common/csv.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/strings.h"

namespace dbs {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  DBS_CHECK(!header.empty());
  write_line(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  DBS_CHECK_MSG(fields.size() == columns_,
                "CSV row has " << fields.size() << " fields, header has " << columns_);
  write_line(fields);
  ++rows_;
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v));
  row(fields);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace dbs
