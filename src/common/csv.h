// Minimal CSV writer for experiment output. Fields containing separators,
// quotes or newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dbs {

/// Streams rows to a CSV file. The header is written on construction.
/// Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; the field count must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  void row_values(const std::vector<double>& values);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

  /// Quotes a single field per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& field);

 private:
  void write_line(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace dbs
