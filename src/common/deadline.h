// Cooperative cancellation for budgeted optimizer runs (DESIGN.md §13).
//
// A Deadline is an immutable point on the steady clock that long-running
// search loops poll between iterations: CDS checks it once per applied-move
// iteration and GOPT once per generation, so a budgeted run overshoots its
// deadline by at most one such granule. There is no asynchronous
// interruption — expiry is only ever observed at these cancellation points,
// which keeps every optimizer loop single-threaded and data-race free even
// when several racers share one Deadline by value.
#pragma once

#include <chrono>

namespace dbs {

/// Steady-clock deadline passed by value into optimizer options. The
/// default-constructible state is "never expires" and costs one branch (no
/// clock read) per expired() poll, so un-budgeted callers pay nothing.
class Deadline {
 public:
  /// A deadline that never fires — the default for every optimizer.
  static Deadline never() { return Deadline(); }

  /// A deadline `budget_ms` milliseconds from now. Non-positive budgets
  /// produce an already-expired deadline.
  static Deadline after_ms(double budget_ms) {
    Deadline deadline;
    deadline.armed_ = true;
    deadline.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          budget_ms));
    return deadline;
  }

  /// True once the budget has elapsed; always false for never().
  bool expired() const { return armed_ && Clock::now() >= at_; }

  /// True iff this deadline can ever expire (i.e. it was created by
  /// after_ms). Lets callers skip work whose cost is only justified on
  /// un-budgeted runs without reading the clock.
  bool armed() const { return armed_; }

 private:
  using Clock = std::chrono::steady_clock;
  Deadline() = default;
  bool armed_ = false;
  Clock::time_point at_{};
};

}  // namespace dbs
