#include "common/distributions.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace dbs {

std::vector<double> zipf_probabilities(std::size_t n, double theta) {
  DBS_CHECK(n > 0);
  DBS_CHECK(theta >= 0.0);
  std::vector<double> p(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::pow(1.0 / static_cast<double>(i + 1), theta);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  DBS_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    DBS_CHECK_MSG(w >= 0.0, "alias weights must be non-negative");
    total += w;
  }
  DBS_CHECK_MSG(total > 0.0, "alias weights must have positive sum");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; split into under- and over-full buckets.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers become certain acceptances.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t column = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform01() < prob_[column] ? column : alias_[column];
}

double sample_exponential(Rng& rng, double rate) {
  DBS_CHECK(rate > 0.0);
  // Inversion; uniform01() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - rng.uniform01()) / rate;
}

std::size_t sample_discrete_cdf(Rng& rng, const std::vector<double>& probabilities) {
  DBS_CHECK(!probabilities.empty());
  const double u = rng.uniform01();
  double acc = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    acc += probabilities[i];
    if (u < acc) return i;
  }
  return probabilities.size() - 1;  // guard against rounding at the tail
}

}  // namespace dbs
