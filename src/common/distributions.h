// Sampling distributions used by workload generation and the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dbs {

/// Exact Zipf probability vector: p_i = (1/i)^theta / sum_j (1/j)^theta for
/// ranks i = 1..n. theta = 0 yields the uniform distribution; larger theta
/// skews mass toward low ranks. This is the frequency model of the paper
/// (§4.1, citing Zipf 1949).
std::vector<double> zipf_probabilities(std::size_t n, double theta);

/// O(1) sampling from an arbitrary discrete distribution via Walker's alias
/// method. Construction is O(n). Probabilities need not be normalized; they
/// must be non-negative with a positive sum.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its weight.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for testing / inspection).
  double probability(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;          // alias-table acceptance probabilities
  std::vector<std::uint32_t> alias_;  // alias targets
  std::vector<double> normalized_;    // normalized input distribution
};

/// Exponential inter-arrival sampler with the given rate (events per unit
/// time). Used by the simulator's client arrival process.
double sample_exponential(Rng& rng, double rate);

/// Samples from Zipf by inversion over the exact probability vector.
/// Convenience wrapper for small n; prefer AliasSampler for repeated draws.
std::size_t sample_discrete_cdf(Rng& rng, const std::vector<double>& probabilities);

}  // namespace dbs
