#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dbs {
namespace {

// Fixed-size worker pool over an atomic work index, with an annotated
// first-error slot so a throwing task surfaces on the caller instead of
// std::terminate()-ing the worker.
//
// Concurrency contract: next_ and cancelled_ are lock-free relaxed atomics
// (claims are idempotent and ordering-free; per-slot results are published
// to the caller by the join, not by the atomics); first_error_ is the only
// cross-thread mutable state and is guarded by mutex_.
class TaskPool {
 public:
  TaskPool(std::size_t tasks, const std::function<void(std::size_t)>& body)
      : tasks_(tasks), body_(body) {}

  // Worker loop: claim → run → repeat, bailing out as soon as any worker
  // has failed. Only the first exception is kept; the pool is shutting down
  // either way, and one actionable error beats an arbitrary pile.
  void worker() {
    while (!cancelled_.load(std::memory_order_relaxed)) {
      const std::size_t task = next_.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks_) return;
      try {
        body_(task);
      } catch (...) {
        const MutexLock lock(mutex_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
        cancelled_.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Rethrows the first captured exception, if any. Must only be called
  // after every worker has been joined (the join is what orders the
  // workers' writes before this read).
  void rethrow_if_failed() {
    const MutexLock lock(mutex_);
    if (first_error_ != nullptr) std::rethrow_exception(first_error_);
  }

 private:
  const std::size_t tasks_;
  const std::function<void(std::size_t)>& body_;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> cancelled_{false};
  Mutex mutex_;
  std::exception_ptr first_error_ DBS_GUARDED_BY(mutex_);
};

}  // namespace

void run_tasks(std::size_t tasks, std::size_t workers,
               const std::function<void(std::size_t)>& body) {
  // 0 auto-detects; the pool never exceeds the task count (idle workers are
  // pure overhead).
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (workers > tasks) workers = tasks;
  if (workers <= 1) {
    // Serial path: run inline so exceptions propagate directly and the
    // parallel path has a bit-identical reference to be diffed against.
    for (std::size_t task = 0; task < tasks; ++task) body(task);
    return;
  }
  TaskPool pool(tasks, body);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&pool] { pool.worker(); });
  }
  for (std::thread& thread : threads) thread.join();
  pool.rethrow_if_failed();
}

}  // namespace dbs
