// Fixed-size worker pool over an atomic task index — promoted from the
// bench trial harness (PR 2) so the optimizer portfolio (api/portfolio.h)
// races its planners on the same substrate the benches average trials on.
#pragma once

#include <cstddef>
#include <functional>

namespace dbs {

/// \brief Runs `body(task)` for every task in [0, tasks) on a fixed-size
/// pool of `workers` threads.
///
/// `workers` follows the bench --threads convention: 0 auto-detects one
/// worker per hardware core, the pool never exceeds `tasks`, and a count of
/// one runs every task inline on the calling thread (the bit-identical
/// serial reference path). Task indices are claimed from a lock-free atomic
/// counter, so each index executes exactly once with no ordering guarantee
/// between indices; `body` must only touch task-private state (e.g. slot
/// `task` of a pre-sized vector).
///
/// Failure contract (tests/harness_test.cc): if any `body` call throws, the
/// pool stops handing out new tasks, lets in-flight tasks finish, joins
/// every worker, and rethrows the first exception on the calling thread — a
/// throwing task can neither deadlock the pool nor leak a joinable thread.
/// Later exceptions (at most one per worker) are discarded.
void run_tasks(std::size_t tasks, std::size_t workers,
               const std::function<void(std::size_t)>& body);

}  // namespace dbs
