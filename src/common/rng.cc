#include "common/rng.h"

#include "common/check.h"

namespace dbs {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DBS_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::below(std::uint64_t n) {
  DBS_CHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  DBS_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng((*this)()); }

void Rng::discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) (void)(*this)();
}

}  // namespace dbs
