// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generation, the genetic
// baseline, the discrete-event simulator) draw from dbs::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded through splitmix64 — the standard
// seeding recipe that tolerates low-entropy seeds such as 0 or small integers.
#pragma once

#include <array>
#include <cstdint>

namespace dbs {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256++ pseudo-random generator with helpers for the distributions
/// the library needs. Satisfies std::uniform_random_bit_generator, so it can
/// also be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Splits off an independent generator; the child is seeded from this
  /// generator's stream so sub-components do not share state.
  Rng split();

  /// Long-jump equivalent: discards n outputs.
  void discard(std::uint64_t n);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace dbs
