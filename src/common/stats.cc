#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dbs {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> values, double q) {
  DBS_CHECK(!values.empty());
  DBS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p95=" << p95 << " max=" << max;
  return os.str();
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  return s;
}

}  // namespace dbs
