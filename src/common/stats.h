// Online and batch summary statistics for experiment measurements.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dbs {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile computation. `q` in [0,1]; linear interpolation between
/// order statistics. The input vector is copied, not mutated.
double percentile(std::vector<double> values, double q);

/// Summary of a sample: count, mean, stddev, min, p50, p95, max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;

  /// One-line human-readable rendering.
  std::string to_string() const;
};

/// Computes a Summary of `values` (empty input yields a zero summary).
Summary summarize(const std::vector<double>& values);

}  // namespace dbs
