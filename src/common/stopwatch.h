// Monotonic wall-clock stopwatch for the execution-time experiments
// (paper Figures 6 and 7).
#pragma once

#include <chrono>

namespace dbs {

/// Steady-clock stopwatch. Starts on construction; restart with reset().
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts timing from now.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds (the unit the paper reports).
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dbs
