#include "common/strings.h"

#include <cstdio>

namespace dbs {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) return candidate;
  }
  return buf;
}

std::string format_fixed(double v, int places) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", places, v);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace dbs
