// Small string-formatting helpers shared by the table renderer, CSV writer
// and benchmark drivers.
#pragma once

#include <string>
#include <vector>

namespace dbs {

/// Formats a double with enough digits to round-trip (%.17g trimmed), for CSV.
std::string format_double(double v);

/// Formats a double with fixed decimal places, for human-readable tables.
std::string format_fixed(double v, int places);

/// Left-pads `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace dbs
