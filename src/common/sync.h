// Compiler-enforced concurrency contracts (DESIGN.md §11).
//
// This header is the single place the repo touches a raw mutex. Everything
// else uses the annotated dbs::Mutex / dbs::MutexLock wrappers plus the
// DBS_* capability macros below, so that under Clang the thread-safety
// analysis (-Wthread-safety, promoted to an error by -DDBS_THREAD_SAFETY=ON)
// proves lock discipline at compile time:
//
//   * every field names its protection in the type: DBS_GUARDED_BY(mutex_)
//     for lock-guarded state, std::atomic<> for lock-free state, nothing for
//     immutable-after-construction state;
//   * functions that expect the caller to hold a lock say so with
//     DBS_REQUIRES(mutex_); functions that must not be called with the lock
//     held say so with DBS_EXCLUDES(mutex_);
//   * an unguarded read, a missing-REQUIRES call, a double acquire, or a
//     scope that leaks a held lock is a compile error, not a TSan roll of
//     the dice (tests/thread_safety_compile proves each diagnostic fires).
//
// On GCC/MSVC the annotation macros expand to nothing and the wrappers are
// zero-cost shims over std::mutex / std::lock_guard, so non-Clang builds and
// the perf gate see identical code. tools/dbs_lint.py keeps the contract
// honest everywhere: rule `raw-sync-primitive` bans std::mutex and friends
// outside this header, and rule `guarded-by-audit` flags mutable non-atomic
// fields in sync.h-including TUs that carry no DBS_GUARDED_BY.
#pragma once

#include <mutex>  // dbs-lint: allow(raw-sync-primitive) — the one wrapped primitive

// Clang exposes the capability attributes behind __has_attribute; every
// other compiler compiles the annotations away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DBS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DBS_THREAD_ANNOTATION
#define DBS_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability; `x` names it in diagnostics
/// ("mutex", "shard lock", ...).
#define DBS_CAPABILITY(x) DBS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard shape).
#define DBS_SCOPED_CAPABILITY DBS_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define DBS_GUARDED_BY(x) DBS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x` (the
/// pointer itself is unguarded).
#define DBS_PT_GUARDED_BY(x) DBS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities.
#define DBS_REQUIRES(...) \
  DBS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (or `this` when
/// empty) and holds them on return.
#define DBS_ACQUIRE(...) \
  DBS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (or `this` when
/// empty); the caller must hold them on entry.
#define DBS_RELEASE(...) \
  DBS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (deadlock guard for self-locking entry points).
#define DBS_EXCLUDES(...) DBS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use must
/// justify itself in a comment — it is the annotated-world equivalent of a
/// const_cast.
#define DBS_NO_THREAD_SAFETY_ANALYSIS \
  DBS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dbs {

/// Annotated exclusive mutex: a std::mutex declared as a Clang capability,
/// so functions and fields can name it in DBS_GUARDED_BY / DBS_REQUIRES
/// contracts. Prefer dbs::MutexLock over manual lock()/unlock() pairs — the
/// analysis flags a leaked manual lock, but the scoped form cannot leak at
/// all.
class DBS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBS_ACQUIRE() { mutex_.lock(); }
  void unlock() DBS_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;  // dbs-lint: allow(raw-sync-primitive)
};

/// Annotated scoped lock (std::lock_guard shape): acquires `mutex` for the
/// lifetime of the object. SCOPED_CAPABILITY tells the analysis the
/// destructor releases, so early returns and exceptions are covered.
class DBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DBS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DBS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace dbs
