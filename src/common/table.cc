#include "common/table.h"

#include <algorithm>

#include "common/strings.h"

namespace dbs {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values,
                         int places) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_fixed(v, places));
  add_row(std::move(cells));
}

std::string AsciiTable::render() const {
  const std::size_t cols = header_.size();
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      if (c != 0) line += "  ";
      line += c == 0 ? pad_right(cell, width[c]) : pad_left(cell, width[c]);
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < cols; ++c) rule += width[c] + (c != 0 ? 2 : 0);
  out += std::string(rule, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace dbs
