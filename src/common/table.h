// ASCII table renderer used by the figure-reproduction benches to print the
// paper's series in a readable grid.
#pragma once

#include <string>
#include <vector>

namespace dbs {

/// Collects rows of string cells and renders an aligned ASCII table.
/// Numeric columns are right-aligned; the first column is left-aligned.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, remaining cells are fixed-precision
  /// doubles.
  void add_row(const std::string& label, const std::vector<double>& values,
               int places = 3);

  /// Renders the full table including a rule under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbs
