#include "core/candidate_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "model/database.h"

namespace dbs {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr ChannelId kNoDup = std::numeric_limits<ChannelId>::max();

/// One deduplicated channel point (Z_c, F_c). Channels with bit-identical
/// aggregates (e.g. several empty channels) collapse into one point that
/// remembers its two smallest channel ids, so load ties still resolve to the
/// smallest id exactly like the scan engine.
struct ChannelPoint {
  double z = 0.0;         // Z_c (x axis)
  double f = 0.0;         // F_c (y axis)
  ChannelId id = 0;       // smallest channel with this point
  ChannelId dup = kNoDup; // second-smallest, or kNoDup
};

double cross(const ChannelPoint& o, const ChannelPoint& a, const ChannelPoint& b) {
  return (a.z - o.z) * (b.f - o.f) - (a.f - o.f) * (b.z - o.z);
}

/// Andrew monotone-chain lower hull over points pre-sorted by (z, f).
/// Collinear points are dropped from the chain (they join the next layer).
std::vector<ChannelPoint> lower_hull(const std::vector<ChannelPoint>& pts) {
  std::vector<ChannelPoint> hull;
  for (const ChannelPoint& p : pts) {
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull[hull.size() - 1], p) <= 0.0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace

CandidateIndex::CandidateIndex(Allocation& alloc)
    : alloc_(alloc),
      item_freq_(alloc.database().freqs()),
      item_size_(alloc.database().sizes()),
      chan_freq_(alloc.channel_freqs()),
      chan_size_(alloc.channel_sizes()),
      c1_(alloc.items()),
      c2_(alloc.items()),
      s1_(alloc.items()),
      s2_(alloc.items()),
      gain_(alloc.items()) {
  DBS_CHECK_MSG(alloc_.channels() >= 2,
                "the candidate index needs at least two channels");
  build_hull();
  const std::size_t n = alloc_.items();
  const std::vector<ChannelId>& home = alloc_.assignment();
  for (ItemId y = 0; y < n; ++y) {
    query_pair(y);
    refresh_gain(y, home[y]);
  }
}

void CandidateIndex::build_hull() {
  const ChannelId k = alloc_.channels();
  const std::span<const double> chan_freq = alloc_.channel_freqs();
  const std::span<const double> chan_size = alloc_.channel_sizes();

  // Deduplicate channel points, remembering the two smallest ids per point.
  std::vector<ChannelId> by_zf(k);
  std::iota(by_zf.begin(), by_zf.end(), 0);
  std::sort(by_zf.begin(), by_zf.end(), [&](ChannelId a, ChannelId b) {
    if (chan_size[a] != chan_size[b]) return chan_size[a] < chan_size[b];
    if (chan_freq[a] != chan_freq[b]) return chan_freq[a] < chan_freq[b];
    return a < b;
  });
  std::vector<ChannelPoint> pts;
  pts.reserve(k);
  for (const ChannelId c : by_zf) {
    if (!pts.empty() && pts.back().z == chan_size[c] && pts.back().f == chan_freq[c]) {
      // by_zf is id-ascending within equal points, so the first follower is
      // already the second-smallest id.
      if (pts.back().dup == kNoDup) pts.back().dup = c;
      continue;
    }
    pts.push_back(ChannelPoint{chan_size[c], chan_freq[c], c, kNoDup});
  }

  // Two onion layers: the load argmin lives on layer 1, and the runner-up on
  // layer 1's chain neighbours, layer 1's duplicate id, or layer 2's argmin
  // (second-layer sufficiency: removing one hull vertex exposes at most
  // layer-2 points).
  const std::vector<ChannelPoint> l1 = lower_hull(pts);
  std::vector<ChannelPoint> rest;
  rest.reserve(pts.size());
  {
    std::size_t h = 0;
    for (const ChannelPoint& p : pts) {
      if (h < l1.size() && l1[h].id == p.id) {
        ++h;
      } else {
        rest.push_back(p);
      }
    }
  }
  const std::vector<ChannelPoint> l2 = lower_hull(rest);

  auto fill = [](Layer& layer, const std::vector<ChannelPoint>& chain) {
    layer.z.clear();
    layer.f.clear();
    layer.id.clear();
    layer.dup.clear();
    for (const ChannelPoint& p : chain) {
      layer.z.push_back(p.z);
      layer.f.push_back(p.f);
      layer.id.push_back(p.id);
      layer.dup.push_back(p.dup);
    }
  };
  fill(layer1_, l1);
  fill(layer2_, l2);
}

namespace {

/// Branchless binary search for the argmin of the load functional
/// s = f·Z + z·F over a convex chain. The sign of the per-edge delta
/// f·ΔZ + z·ΔF flips exactly once along the chain (the edge direction
/// rotates monotonically through a half-plane), so "delta ≥ 0" is a
/// monotone predicate and its first edge index is the leftmost minimum.
/// The length-halving form keeps the probe sequence data-independent and
/// the ternaries compile to conditional moves — the predicate is a coin
/// flip per probe, so a branching search would eat a misprediction on
/// nearly every level across millions of queries.
inline std::size_t chain_argmin(const double* zs, const double* fs,
                                std::size_t vertices, double f, double z) {
  std::size_t lo = 0;
  std::size_t len = vertices - 1;  // edges still in play
  while (len > 0) {
    const std::size_t half = len / 2;
    const std::size_t mid = lo + half;
    const double delta = f * (zs[mid + 1] - zs[mid]) + z * (fs[mid + 1] - fs[mid]);
    const bool ge = delta >= 0.0;
    lo = ge ? lo : mid + 1;
    len = ge ? half : len - half - 1;
  }
  return lo;
}

}  // namespace

void CandidateIndex::query_pair(ItemId y) {
  const double f = item_freq_[y];
  const double z = item_size_[y];

  const double* z1 = layer1_.z.data();
  const double* f1 = layer1_.f.data();
  auto load1 = [&](std::size_t i) { return f * z1[i] + z * f1[i]; };
  const std::size_t lo = chain_argmin(z1, f1, layer1_.size(), f, z);

  // Exact best among the located vertex and its chain neighbours, by
  // (load, id) — the scan engine's target tie-break.
  std::size_t bi = lo;
  double bs = load1(lo);
  auto consider_best = [&](std::size_t i) {
    const double s = load1(i);
    if (s < bs || (s == bs && layer1_.id[i] < layer1_.id[bi])) {
      bi = i;
      bs = s;
    }
  };
  if (lo > 0) consider_best(lo - 1);
  if (lo + 1 < layer1_.size()) consider_best(lo + 1);

  // Runner-up candidates: the best point's duplicate id, the best vertex's
  // chain neighbours, and layer 2's own argmin neighbourhood. The true
  // runner-up is always among these (header doc / ARCHITECTURE.md §5), and
  // every candidate is a real channel with its exact load, so the min over
  // this superset is the exact runner-up.
  ChannelId second_c = 0;
  double second_s = 0.0;
  bool have_second = false;
  auto offer = [&](ChannelId c, double s) {
    if (!have_second || s < second_s || (s == second_s && c < second_c)) {
      have_second = true;
      second_c = c;
      second_s = s;
    }
  };
  if (layer1_.dup[bi] != kNoDup) offer(layer1_.dup[bi], bs);
  if (bi > 0) offer(layer1_.id[bi - 1], load1(bi - 1));
  if (bi + 1 < layer1_.size()) offer(layer1_.id[bi + 1], load1(bi + 1));
  if (!layer2_.empty()) {
    const double* z2 = layer2_.z.data();
    const double* f2 = layer2_.f.data();
    auto load2 = [&](std::size_t i) { return f * z2[i] + z * f2[i]; };
    const std::size_t lo2 = chain_argmin(z2, f2, layer2_.size(), f, z);
    offer(layer2_.id[lo2], load2(lo2));
    if (lo2 > 0) offer(layer2_.id[lo2 - 1], load2(lo2 - 1));
    if (lo2 + 1 < layer2_.size()) offer(layer2_.id[lo2 + 1], load2(lo2 + 1));
  }
  DBS_CHECK_MSG(have_second, "K >= 2 guarantees a runner-up candidate");

  c1_[y] = layer1_.id[bi];
  s1_[y] = bs;
  c2_[y] = second_c;
  s2_[y] = second_s;
}

void CandidateIndex::refresh_gain(ItemId y, ChannelId home) {
  const ChannelId to = c1_[y];
  if (to == home) {
    // Home already the min-load channel: every move has
    // Δc = C_y − s_q ≤ C_y − s_home = −2 f_y z_y < 0. Never selectable.
    gain_[y] = kNegInf;
    return;
  }
  const double f = item_freq_[y];
  const double z = item_size_[y];
  // Same expression in the same order as Allocation::move_gain (Eq. 4), so
  // the cached gain is bit-identical to what the scan engine computes — the
  // call is only inlined here because this runs a few million times per
  // large CDS run.
  gain_[y] = f * (chan_size_[home] - chan_size_[to]) +
             z * (chan_freq_[home] - chan_freq_[to]) - 2.0 * f * z;
  ++moves_evaluated_;
}

CdsMove CandidateIndex::best_move() {
  const std::size_t n = alloc_.items();
  const std::vector<ChannelId>& home = alloc_.assignment();

  if (pending_) {
    const ChannelId p = touched_p_;
    const ChannelId q = touched_q_;
    build_hull();
    const double zp = chan_size_[p];
    const double fp = chan_freq_[p];
    const double zq = chan_size_[q];
    const double fq = chan_freq_[q];

    // Pass 1 (pure, sequential): collect the disturbed items. Everything
    // else keeps bit-identical cached state — its slots survived, neither
    // touched channel's new load reaches its runner-up, and its home
    // aggregates are unchanged, so both the pair and the cached Eq. 4 gain
    // are still exact.
    attention_.clear();
    const ChannelId* c1 = c1_.data();
    const ChannelId* c2 = c2_.data();
    const double* s2 = s2_.data();
    const ChannelId* hm = home.data();
    const double* fi = item_freq_.data();
    const double* zi = item_size_.data();
    for (ItemId y = 0; y < n; ++y) {
      const bool slot_touch =
          (c1[y] == p) | (c1[y] == q) | (c2[y] == p) | (c2[y] == q);
      const bool home_touch = (hm[y] == p) | (hm[y] == q);
      const double sp = fi[y] * zp + zi[y] * fp;
      const double sq = fi[y] * zq + zi[y] * fq;
      const bool beat = (sp <= s2[y]) | (sq <= s2[y]);
      if (slot_touch | home_touch | beat) attention_.push_back(y);
    }

    // Pass 2: repair the disturbed items. A pure home-touch only needs its
    // gain refreshed; anything whose min-2 might have shifted is re-queried
    // against the fresh hull, so pairs are always exact — there is no
    // provisional or lapsed state to track.
    for (const ItemId y : attention_) {
      const bool slot_touch =
          (c1_[y] == p) | (c1_[y] == q) | (c2_[y] == p) | (c2_[y] == q);
      const double sp = item_freq_[y] * zp + item_size_[y] * fp;
      const double sq = item_freq_[y] * zq + item_size_[y] * fq;
      const bool beat = (sp <= s2_[y]) | (sq <= s2_[y]);
      if (slot_touch | beat) {
        query_pair(y);
        ++repairs_;
      }
      refresh_gain(y, home[y]);
    }
    pending_ = false;
  }

  // Selection is a pure argmax over the cached gain column. Keeping the
  // first maximum ties to the smallest item id — the same total order the
  // scan engine's ascending-id strict-> loop induces.
  const double* g = gain_.data();
  std::size_t bi = 0;
  double bg = g[0];
  for (std::size_t y = 1; y < n; ++y) {
    if (g[y] > bg) {
      bg = g[y];
      bi = y;
    }
  }
  return CdsMove{static_cast<ItemId>(bi), home[bi], c1_[bi], bg};
}

void CandidateIndex::apply(const CdsMove& move) {
  DBS_CHECK_MSG(!pending_, "apply() calls must be interleaved with best_move()");
  alloc_.move(move.item, move.to);
  touched_p_ = move.from;
  touched_q_ = move.to;
  pending_ = true;
}

}  // namespace dbs
