// Per-item candidate index for CDS's best-improvement move search.
//
// Eq. (4) factors as Δc(x: p→q) = C_x − s_q with
//     C_x = f_x·Z_p + z_x·F_p − 2 f_x z_x   (home potential, q-independent)
//     s_q = f_x·Z_q + z_x·F_q               (target load, home-independent)
// so item x's best target is simply argmin_q s_q — independent of where x
// currently lives. When that argmin IS x's home channel, no move can improve
// (Δc ≤ −2 f_x z_x < 0), so the item drops out of the search entirely.
//
// The index holds three columnar caches, all indexed by ItemId:
//   * (c1, s1): the min-load channel and its load;
//   * (c2, s2): the runner-up channel and its load;
//   * gain: Δc of the item's candidate move (x → c1), computed with the
//     scan engine's exact Eq. 4 arithmetic, or −∞ when c1 is home.
//
// Loads are linear functionals over the channel points (Z_c, F_c), so the
// exact min-2 is found on two convex-hull onion layers with an O(log K)
// binary search per item — never a brute O(K) channel scan. After a move
// p→q one fused O(N) sequential pass refreshes the caches: an item is
// disturbed only if a cached slot or its home is a touched channel, or a
// touched channel's new load now beats its runner-up; disturbed pairs are
// re-queried against a freshly built hull (O(K log K) per iteration,
// negligible), everything else keeps bit-identical cached state. The
// selection itself is then a pure argmax over the gain column. See
// docs/ARCHITECTURE.md §5 for the exactness argument.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/cds.h"
#include "model/allocation.h"

namespace dbs {

/// \brief Incrementally maintained per-item best-target index for CDS.
///
/// The referenced Allocation must outlive the index, and every mutation of
/// it between best_move() calls must go through apply() — an out-of-band
/// Allocation::move() silently invalidates the cached columns.
class CandidateIndex {
 public:
  /// \brief Builds the per-item caches for the current allocation
  /// (O(N log K)). Requires at least two channels.
  explicit CandidateIndex(Allocation& alloc);

  /// \brief Folds any pending move into the caches and returns the best
  /// single-item move (gain may be ≤ 0 at a local optimum). Ties resolve
  /// like the scan engine: smallest item id, and per item the
  /// smallest-load (then smallest-id) target.
  CdsMove best_move();

  /// \brief Applies `move` to the allocation and records its two touched
  /// channels for the next best_move() fold.
  void apply(const CdsMove& move);

  /// \brief Candidate gains computed so far (one per item at construction,
  /// plus one per disturbed item per fold pass). Mirrors
  /// CdsStats::moves_evaluated.
  std::size_t moves_evaluated() const { return moves_evaluated_; }

  /// \brief Disturbed pairs re-queried against the hull. Mirrors
  /// CdsStats::index_repairs.
  std::size_t repairs() const { return repairs_; }

 private:
  /// One hull layer: a lower-hull chain over the deduplicated channel
  /// points, plus per-edge deltas for the binary search.
  struct Layer {
    std::vector<double> z;          // Z of each chain vertex, ascending
    std::vector<double> f;          // F of each chain vertex
    std::vector<ChannelId> id;      // smallest channel id of the vertex
    std::vector<ChannelId> dup;     // second-smallest id (kNoDup if unique)
    bool empty() const { return z.empty(); }
    std::size_t size() const { return z.size(); }
  };

  /// \brief Rebuilds the two onion layers from the current aggregates.
  void build_hull();

  /// \brief Recomputes item y's exact min-2 pair from the hull layers.
  void query_pair(ItemId y);

  /// \brief Refreshes item y's cached gain from its pair and home.
  void refresh_gain(ItemId y, ChannelId home);

  Allocation& alloc_;
  std::span<const double> item_freq_;
  std::span<const double> item_size_;
  std::span<const double> chan_freq_;  // Allocation's F column (stable storage)
  std::span<const double> chan_size_;  // Allocation's Z column (stable storage)

  std::vector<ChannelId> c1_;   // min-load channel per item
  std::vector<ChannelId> c2_;   // runner-up channel per item
  std::vector<double> s1_;      // load of c1
  std::vector<double> s2_;      // load of c2
  std::vector<double> gain_;    // Δc of the move to c1; −∞ when c1 == home

  Layer layer1_;
  Layer layer2_;
  std::vector<ItemId> attention_;  // per-fold scratch: disturbed items

  bool pending_ = false;
  ChannelId touched_p_ = 0;
  ChannelId touched_q_ = 0;
  std::size_t moves_evaluated_ = 0;
  std::size_t repairs_ = 0;
};

}  // namespace dbs
