#include "core/cds.h"

#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "core/candidate_index.h"
#include "obs/obs.h"

namespace dbs {

CdsMove best_move(const Allocation& alloc) {
  CdsMove best;
  best.gain = 0.0;
  bool have = false;
  const std::size_t n = alloc.items();
  const ChannelId k = alloc.channels();
  for (ItemId x = 0; x < n; ++x) {
    const ChannelId p = alloc.channel_of(x);
    for (ChannelId q = 0; q < k; ++q) {
      if (q == p) continue;
      const double gain = alloc.move_gain(x, q);
      if (!have || gain > best.gain) {
        have = true;
        best = CdsMove{x, p, q, gain};
      }
    }
  }
  return best;
}

namespace {

/// Moves one full scan evaluates: every item against every other channel.
std::size_t full_scan_evaluations(const Allocation& alloc) {
  return alloc.channels() == 0
             ? 0
             : alloc.items() * static_cast<std::size_t>(alloc.channels() - 1);
}

/// First strictly-improving move in (item, channel) scan order, or a move
/// with gain 0 when none improves. `evaluated` reports how many candidate
/// gains were computed before returning.
CdsMove first_improving_move(const Allocation& alloc, double min_gain,
                             std::size_t& evaluated) {
  const std::size_t n = alloc.items();
  const ChannelId k = alloc.channels();
  evaluated = 0;
  for (ItemId x = 0; x < n; ++x) {
    const ChannelId p = alloc.channel_of(x);
    for (ChannelId q = 0; q < k; ++q) {
      if (q == p) continue;
      const double gain = alloc.move_gain(x, q);
      ++evaluated;
      if (gain > min_gain) return CdsMove{x, p, q, gain};
    }
  }
  return CdsMove{};
}

/// Best-improvement loop driven by the candidate index. Each iteration is
/// one fused O(N) pass (fold the previous move's two touched channels into
/// every pair, then select the best move) plus O(K) brute repairs for pairs
/// whose certification lapsed. When the iteration budget is exhausted the
/// convergence probe is one more index pass, not a full N·(K−1) scan — at
/// N = 10^6, K = 512 the full scan alone would dwarf the budgeted run.
CdsStats run_cds_indexed(Allocation& alloc, const CdsOptions& options) {
  CdsStats stats;
  stats.initial_cost = alloc.cost();
  bool probe_converged = true;
  bool deadline_stop = false;
  if (alloc.channels() > 1) {
    CandidateIndex index(alloc);
    while (stats.iterations < options.max_iterations) {
      if (options.deadline.expired()) {
        // Cooperative cancellation: stop where we stand, and skip the
        // convergence probe — it costs a full index pass the budget no
        // longer covers.
        deadline_stop = true;
        break;
      }
      const CdsMove move = index.best_move();
      if (move.gain <= options.min_gain) break;  // local optimum (line 18 of CDS)
      index.apply(move);
      ++stats.iterations;
    }
    if (!deadline_stop && stats.iterations >= options.max_iterations) {
      probe_converged = index.best_move().gain <= options.min_gain;
    }
    stats.moves_evaluated = index.moves_evaluated();
    stats.index_repairs = index.repairs();
  }
  stats.converged = !deadline_stop && (stats.iterations < options.max_iterations ||
                                       probe_converged);
  stats.final_cost = alloc.cost();
  return stats;
}

CdsStats run_cds_scan(Allocation& alloc, const CdsOptions& options) {
  CdsStats stats;
  stats.initial_cost = alloc.cost();

  bool deadline_stop = false;
  while (stats.iterations < options.max_iterations) {
    if (options.deadline.expired()) {
      // Cooperative cancellation: stop where we stand; the convergence probe
      // below is skipped — it is a full scan the budget no longer covers.
      deadline_stop = true;
      break;
    }
    CdsMove move;
    if (options.policy == CdsPolicy::kBestImprovement) {
      move = best_move(alloc);
      stats.moves_evaluated += full_scan_evaluations(alloc);
    } else {
      std::size_t evaluated = 0;
      move = first_improving_move(alloc, options.min_gain, evaluated);
      stats.moves_evaluated += evaluated;
    }
    if (move.gain <= options.min_gain) break;  // local optimum (line 18 of CDS)
    alloc.move(move.item, move.to);
    ++stats.iterations;
  }

  const bool hit_cap =
      !deadline_stop && stats.iterations >= options.max_iterations;
  if (hit_cap) stats.moves_evaluated += full_scan_evaluations(alloc);
  stats.converged =
      !deadline_stop && (!hit_cap || best_move(alloc).gain <= options.min_gain);
  stats.final_cost = alloc.cost();
  return stats;
}

/// The engine actually used: DBS_CDS_ENGINE overrides the caller (so CI can
/// force-disable the index repo-wide), then kAuto resolves by problem size.
CdsEngine resolve_engine(const Allocation& alloc, CdsEngine requested) {
  CdsEngine engine = requested;
  if (const char* env = std::getenv("DBS_CDS_ENGINE"); env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "scan") {
      engine = CdsEngine::kScan;
    } else if (v == "indexed") {
      engine = CdsEngine::kIndexed;
    } else {
      DBS_CHECK_MSG(v == "auto",
                    "DBS_CDS_ENGINE must be scan, indexed or auto; got " << env);
      engine = CdsEngine::kAuto;
    }
  }
  if (engine == CdsEngine::kAuto) {
    engine = alloc.items() * static_cast<std::size_t>(alloc.channels()) >=
                     kAutoIndexedThreshold
                 ? CdsEngine::kIndexed
                 : CdsEngine::kScan;
  }
  return engine;
}

}  // namespace

CdsStats run_cds(Allocation& alloc, const CdsOptions& options) {
  DBS_OBS_SPAN("core.cds.run");
  const CdsEngine engine = resolve_engine(alloc, options.engine);
  const CdsStats stats = engine == CdsEngine::kIndexed &&
                                 options.policy == CdsPolicy::kBestImprovement
                             ? run_cds_indexed(alloc, options)
                             : run_cds_scan(alloc, options);
  DBS_OBS_COUNTER_INC("core.cds.runs");
  DBS_OBS_COUNTER_ADD("core.cds.iterations", stats.iterations);
  DBS_OBS_COUNTER_ADD("core.cds.moves_evaluated", stats.moves_evaluated);
  DBS_OBS_COUNTER_ADD("core.cds.index_repairs", stats.index_repairs);
  DBS_OBS_HISTOGRAM_OBSERVE("core.cds.iterations_per_run", stats.iterations);
  return stats;
}

}  // namespace dbs
