#include "core/cds.h"

#include "common/check.h"
#include "obs/obs.h"

namespace dbs {

CdsMove best_move(const Allocation& alloc) {
  CdsMove best;
  best.gain = 0.0;
  bool have = false;
  const std::size_t n = alloc.items();
  const ChannelId k = alloc.channels();
  for (ItemId x = 0; x < n; ++x) {
    const ChannelId p = alloc.channel_of(x);
    for (ChannelId q = 0; q < k; ++q) {
      if (q == p) continue;
      const double gain = alloc.move_gain(x, q);
      if (!have || gain > best.gain) {
        have = true;
        best = CdsMove{x, p, q, gain};
      }
    }
  }
  return best;
}

namespace {

/// Moves one full scan evaluates: every item against every other channel.
std::size_t full_scan_evaluations(const Allocation& alloc) {
  return alloc.channels() == 0
             ? 0
             : alloc.items() * static_cast<std::size_t>(alloc.channels() - 1);
}

/// First strictly-improving move in (item, channel) scan order, or a move
/// with gain 0 when none improves. `evaluated` reports how many candidate
/// gains were computed before returning.
CdsMove first_improving_move(const Allocation& alloc, double min_gain,
                             std::size_t& evaluated) {
  const std::size_t n = alloc.items();
  const ChannelId k = alloc.channels();
  evaluated = 0;
  for (ItemId x = 0; x < n; ++x) {
    const ChannelId p = alloc.channel_of(x);
    for (ChannelId q = 0; q < k; ++q) {
      if (q == p) continue;
      const double gain = alloc.move_gain(x, q);
      ++evaluated;
      if (gain > min_gain) return CdsMove{x, p, q, gain};
    }
  }
  return CdsMove{};
}

/// Best-improvement loop with a per-item best-move cache. After a move
/// p→q, only three kinds of cache entries can be stale: items living on p or
/// q (all their gains changed), items whose cached best target was p or q
/// (that target's aggregates changed), and every item's gain *toward* p and
/// q (folded in by a 3-way max against the untouched cached entry). The
/// tie-breaking (smallest target channel, then smallest item id) matches the
/// full scan exactly, so both engines produce identical move sequences.
class IndexedCds {
 public:
  explicit IndexedCds(Allocation& alloc) : alloc_(alloc), cache_(alloc.items()) {
    for (ItemId x = 0; x < alloc_.items(); ++x) recompute(x);
  }

  CdsMove best() const {
    CdsMove move;
    bool have = false;
    for (ItemId x = 0; x < alloc_.items(); ++x) {
      if (!have || cache_[x].gain > move.gain) {
        have = true;
        move = CdsMove{x, alloc_.channel_of(x), cache_[x].to, cache_[x].gain};
      }
    }
    return move;
  }

  void apply(const CdsMove& move) {
    alloc_.move(move.item, move.to);
    repair(move.from, move.to);
  }

  std::size_t moves_evaluated() const { return moves_evaluated_; }
  std::size_t repairs() const { return repairs_; }

 private:
  struct Entry {
    double gain = 0.0;
    ChannelId to = 0;
  };

  void recompute(ItemId x) {
    const ChannelId p = alloc_.channel_of(x);
    Entry entry;
    bool have = false;
    for (ChannelId q = 0; q < alloc_.channels(); ++q) {
      if (q == p) continue;
      const double gain = alloc_.move_gain(x, q);
      if (!have || gain > entry.gain) {
        have = true;
        entry = Entry{gain, q};
      }
    }
    moves_evaluated_ += alloc_.channels() - 1;
    cache_[x] = entry;
  }

  void repair(ChannelId p, ChannelId q) {
    for (ItemId y = 0; y < alloc_.items(); ++y) {
      const ChannelId home = alloc_.channel_of(y);
      if (home == p || home == q || cache_[y].to == p || cache_[y].to == q) {
        recompute(y);
        ++repairs_;
        continue;
      }
      // Cached target untouched; only gains toward p and q moved. Keep the
      // scan's tie-break: prefer the smaller channel id on equal gain.
      for (ChannelId c : {std::min(p, q), std::max(p, q)}) {
        const double gain = alloc_.move_gain(y, c);
        ++moves_evaluated_;
        if (gain > cache_[y].gain ||
            (gain == cache_[y].gain && c < cache_[y].to)) {
          cache_[y] = Entry{gain, c};
        }
      }
    }
  }

  Allocation& alloc_;
  std::vector<Entry> cache_;
  std::size_t moves_evaluated_ = 0;
  std::size_t repairs_ = 0;
};

CdsStats run_cds_indexed(Allocation& alloc, const CdsOptions& options) {
  CdsStats stats;
  stats.initial_cost = alloc.cost();
  if (alloc.channels() > 1) {
    IndexedCds engine(alloc);
    while (stats.iterations < options.max_iterations) {
      const CdsMove move = engine.best();
      if (move.gain <= options.min_gain) break;
      engine.apply(move);
      ++stats.iterations;
    }
    stats.moves_evaluated = engine.moves_evaluated();
    stats.index_repairs = engine.repairs();
  }
  const bool hit_cap = stats.iterations >= options.max_iterations;
  if (hit_cap) stats.moves_evaluated += full_scan_evaluations(alloc);
  stats.converged = !hit_cap || best_move(alloc).gain <= options.min_gain;
  stats.final_cost = alloc.cost();
  return stats;
}

CdsStats run_cds_scan(Allocation& alloc, const CdsOptions& options) {
  CdsStats stats;
  stats.initial_cost = alloc.cost();

  while (stats.iterations < options.max_iterations) {
    CdsMove move;
    if (options.policy == CdsPolicy::kBestImprovement) {
      move = best_move(alloc);
      stats.moves_evaluated += full_scan_evaluations(alloc);
    } else {
      std::size_t evaluated = 0;
      move = first_improving_move(alloc, options.min_gain, evaluated);
      stats.moves_evaluated += evaluated;
    }
    if (move.gain <= options.min_gain) break;  // local optimum (line 18 of CDS)
    alloc.move(move.item, move.to);
    ++stats.iterations;
  }

  const bool hit_cap = stats.iterations >= options.max_iterations;
  if (hit_cap) stats.moves_evaluated += full_scan_evaluations(alloc);
  stats.converged = !hit_cap || best_move(alloc).gain <= options.min_gain;
  stats.final_cost = alloc.cost();
  return stats;
}

}  // namespace

CdsStats run_cds(Allocation& alloc, const CdsOptions& options) {
  DBS_OBS_SPAN("core.cds.run");
  const CdsStats stats = options.engine == CdsEngine::kIndexed &&
                                 options.policy == CdsPolicy::kBestImprovement
                             ? run_cds_indexed(alloc, options)
                             : run_cds_scan(alloc, options);
  DBS_OBS_COUNTER_INC("core.cds.runs");
  DBS_OBS_COUNTER_ADD("core.cds.iterations", stats.iterations);
  DBS_OBS_COUNTER_ADD("core.cds.moves_evaluated", stats.moves_evaluated);
  DBS_OBS_COUNTER_ADD("core.cds.index_repairs", stats.index_repairs);
  DBS_OBS_HISTOGRAM_OBSERVE("core.cds.iterations_per_run", stats.iterations);
  return stats;
}

}  // namespace dbs
