// Mechanism CDS — Cost-Diminishing Selection (paper §3.2).
//
// Local-search refinement over an existing allocation. Each iteration
// evaluates every single-item move d_x : D_p → D_q with the closed-form
// reduction of Eq. (4),
//     Δc = f_x (Z_p − Z_q) + z_x (F_p − F_q) − 2 f_x z_x,
// applies the best strictly-improving move, and stops when no move improves —
// a local optimum of the cost function under the single-move neighbourhood.
#pragma once

#include <cstddef>
#include <limits>

#include "common/deadline.h"
#include "model/allocation.h"

namespace dbs {

/// Move-acceptance policy. The paper scans all K·N·(K−1) moves and applies
/// the single best one per iteration (best-improvement); first-improvement
/// applies the first strictly improving move found and is the subject of an
/// ablation bench.
enum class CdsPolicy {
  kBestImprovement,
  kFirstImprovement,
};

/// Move-search engine.
///
/// kScan re-evaluates all N·(K−1) moves every iteration (the paper's O(K²N)
/// loop, with our O(1) Δc making it O(NK)). kIndexed maintains a per-item
/// candidate index (core/candidate_index.h): Eq. 4 factors into a
/// home-potential minus a target-load term, so each item's best target is
/// the channel of minimal load; the index caches each item's two
/// smallest-load channels and repairs them incrementally, making an
/// iteration O(N + repairs·K) instead of O(N·K). kAuto (the default) picks
/// kScan below the `kAutoIndexedThreshold` problem size and kIndexed above
/// it, so small runs keep the scan's bit-exact legacy behavior while the
/// 10^6-item hot path gets the index.
///
/// Both engines evaluate candidate gains with the same Eq. 4 arithmetic and
/// tie-break order, so on the test workloads they produce identical move
/// sequences; the index's target selection can differ from the scan only on
/// floating-point near-ties of the load functional (ARCHITECTURE.md §5).
///
/// The environment variable DBS_CDS_ENGINE (values: scan | indexed | auto)
/// overrides whatever the caller requested — it exists so CI can smoke the
/// whole suite with the index disabled (the `index-off` job).
enum class CdsEngine {
  kScan,
  kIndexed,
  kAuto,
};

/// N·K at and above which kAuto selects the indexed engine.
inline constexpr std::size_t kAutoIndexedThreshold = std::size_t{1} << 22;

/// CDS tuning knobs; defaults reproduce the paper.
struct CdsOptions {
  CdsPolicy policy = CdsPolicy::kBestImprovement;
  CdsEngine engine = CdsEngine::kAuto;

  /// Safety bound on iterations (each iteration applies one move). The cost
  /// strictly decreases every iteration, so termination is guaranteed anyway;
  /// this guards against pathological floating-point drift.
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();

  /// A move must reduce cost by more than this to be applied. Zero matches
  /// the paper's Δc > 0; the tiny default avoids cycling on rounding noise.
  double min_gain = 1e-12;

  /// Cooperative cancellation (DESIGN.md §13): polled once per applied-move
  /// iteration. When it fires the run stops where it stands, like an
  /// exhausted max_iterations but without the final convergence probe
  /// (converged = false). The never() default costs one branch per
  /// iteration, not a clock read.
  Deadline deadline = Deadline::never();
};

/// Outcome of a CDS run.
struct CdsStats {
  std::size_t iterations = 0;  ///< number of applied moves
  double initial_cost = 0.0;
  double final_cost = 0.0;
  bool converged = true;  ///< false iff max_iterations or the deadline
                          ///< stopped the search before a local optimum

  /// Candidate moves whose Δc was computed. This is the real work metric for
  /// comparing engines: kScan pays N·(K−1) per iteration while kIndexed pays
  /// only for cache repairs, so equal `iterations` hide very different costs.
  std::size_t moves_evaluated = 0;

  /// Cache entries recomputed from scratch by the kIndexed engine's repair
  /// pass (always 0 for kScan, which keeps no cache).
  std::size_t index_repairs = 0;

  double total_reduction() const { return initial_cost - final_cost; }
};

/// A candidate move with its predicted gain.
struct CdsMove {
  ItemId item = 0;
  ChannelId from = 0;
  ChannelId to = 0;
  double gain = 0.0;
};

/// \brief Scans all moves and returns the best one (gain may be ≤ 0 if the
/// allocation is already locally optimal). Deterministic: ties resolve to the
/// smallest (item, to) pair. O(N·K) with incremental aggregates.
CdsMove best_move(const Allocation& alloc);

/// \brief Refines `alloc` in place until a local optimum (or the iteration
/// bound)
/// is reached. Returns per-run statistics.
CdsStats run_cds(Allocation& alloc, const CdsOptions& options = {});

}  // namespace dbs
