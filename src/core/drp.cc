#include "core/drp.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <queue>

#include "common/check.h"
#include "core/partition.h"
#include "obs/obs.h"

namespace dbs {
namespace {

std::vector<ItemId> ordered_ids(const Database& db, ItemOrdering ordering) {
  switch (ordering) {
    case ItemOrdering::kBenefitRatioDesc:
      return db.ids_by_benefit_ratio_desc();
    case ItemOrdering::kFreqDesc:
      return db.ids_by_freq_desc();
    case ItemOrdering::kSizeAsc: {
      std::vector<ItemId> ids(db.size());
      std::iota(ids.begin(), ids.end(), 0);
      std::stable_sort(ids.begin(), ids.end(), [&db](ItemId a, ItemId b) {
        if (db.item(a).size != db.item(b).size) return db.item(a).size < db.item(b).size;
        return a < b;
      });
      return ids;
    }
  }
  DBS_CHECK_MSG(false, "unknown ItemOrdering");
  return {};
}

/// Priority of a group under the configured selection rule.
double selection_key(const DrpGroup& g, SplitSelection selection,
                     const PrefixSums& sums) {
  switch (selection) {
    case SplitSelection::kMaxCost:
      return g.cost;
    case SplitSelection::kMaxSize:
      return sums.size_of(g.begin, g.end);
    case SplitSelection::kMaxCount:
      return static_cast<double>(g.end - g.begin);
  }
  DBS_CHECK_MSG(false, "unknown SplitSelection");
  return 0.0;
}

}  // namespace

DrpResult run_drp(const Database& db, ChannelId channels, const DrpOptions& options) {
  DBS_OBS_SPAN("core.drp.run");
  const std::size_t n = db.size();
  DBS_CHECK_MSG(channels >= 1, "need at least one channel");
  DBS_CHECK_MSG(channels <= n,
                "cannot fill " << channels << " channels with only " << n << " items");

  // The benefit-ratio ordering — DRP proper — reuses the sort and prefix
  // sums the Database cached at construction; only the ablation orderings
  // pay for a fresh sort and prefix build.
  std::vector<ItemId> order = ordered_ids(db, options.ordering);
  std::optional<PrefixSums> local_sums;
  if (options.ordering != ItemOrdering::kBenefitRatioDesc) {
    local_sums.emplace(db, order);
  }
  const PrefixSums& sums =
      local_sums.has_value() ? *local_sums : db.benefit_prefix();

  struct QueueEntry {
    double key;
    DrpGroup group;
    bool operator<(const QueueEntry& other) const {
      // Deterministic max-heap: larger key first, earlier slice on ties.
      if (key != other.key) return key < other.key;
      return group.begin > other.group.begin;
    }
  };

  // MaxPQ of splittable groups; singletons go straight to `done` since no
  // split can ever apply to them.
  std::priority_queue<QueueEntry> max_pq;
  std::vector<DrpGroup> done;

  auto push_group = [&](std::size_t begin, std::size_t end) {
    DrpGroup g{begin, end, sums.cost_of(begin, end)};
    if (end - begin < 2) {
      done.push_back(g);
    } else {
      max_pq.push(QueueEntry{selection_key(g, options.selection, sums), g});
    }
  };

  push_group(0, n);

  std::size_t group_count = 1;
  std::size_t splits = 0;
  while (group_count < channels) {
    // K ≤ N guarantees some multi-item group remains while group_count < K.
    DBS_CHECK(!max_pq.empty());
    const DrpGroup g = max_pq.top().group;
    max_pq.pop();
    const SplitResult split = best_split(sums, g.begin, g.end);
    push_group(g.begin, split.split);
    push_group(split.split, g.end);
    ++group_count;
    ++splits;
  }

  while (!max_pq.empty()) {
    done.push_back(max_pq.top().group);
    max_pq.pop();
  }
  std::sort(done.begin(), done.end(),
            [](const DrpGroup& a, const DrpGroup& b) { return a.begin < b.begin; });

  std::vector<ChannelId> assignment(n, 0);
  for (std::size_t gi = 0; gi < done.size(); ++gi) {
    for (std::size_t i = done[gi].begin; i < done[gi].end; ++i) {
      assignment[order[i]] = static_cast<ChannelId>(gi);
    }
  }

  DBS_OBS_COUNTER_INC("core.drp.runs");
  DBS_OBS_COUNTER_ADD("core.drp.splits", splits);
  for (const DrpGroup& g : done) {
    DBS_OBS_HISTOGRAM_OBSERVE("core.drp.group_items", g.end - g.begin);
  }

  return DrpResult{Allocation(db, channels, std::move(assignment)), std::move(order),
                   std::move(done), splits};
}

}  // namespace dbs
