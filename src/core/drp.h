// Algorithm DRP — Dimension Reduction Partitioning (paper §3.1).
//
// Top-down group splitting: items are ordered by benefit ratio f/z
// descending; a max priority queue holds the current groups keyed by group
// cost F·Z; each iteration pops the costliest splittable group and splits it
// at the optimal contiguous point (Procedure Partition) until K groups exist.
#pragma once

#include <cstddef>
#include <vector>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Which group DRP selects for the next split. The paper always splits the
/// max-cost group; the alternatives exist for the ablation study.
enum class SplitSelection {
  kMaxCost,   ///< paper's rule: split the group with the largest F·Z
  kMaxSize,   ///< split the group with the largest aggregate size Z
  kMaxCount,  ///< split the group with the most items
};

/// Item ordering used before partitioning. The paper's dimension reduction
/// uses the benefit ratio; the alternatives exist for the ablation study.
enum class ItemOrdering {
  kBenefitRatioDesc,  ///< paper's rule: f/z descending
  kFreqDesc,          ///< frequency-only (the conventional environment's view)
  kSizeAsc,           ///< size ascending (size-only view)
};

/// DRP tuning knobs; defaults reproduce the paper exactly.
struct DrpOptions {
  SplitSelection selection = SplitSelection::kMaxCost;
  ItemOrdering ordering = ItemOrdering::kBenefitRatioDesc;
};

/// One group produced by DRP, expressed as a slice of the sorted order.
struct DrpGroup {
  std::size_t begin = 0;  ///< first index into the order vector
  std::size_t end = 0;    ///< one past the last index
  double cost = 0.0;      ///< F·Z of the slice
};

/// Full DRP output: the channel allocation plus the group structure in split
/// order (useful for tests and for reproducing the paper's Table 3).
struct DrpResult {
  Allocation allocation;
  std::vector<ItemId> order;     ///< the sorted item order DRP used
  std::vector<DrpGroup> groups;  ///< final groups, sorted by begin index
  std::size_t splits = 0;        ///< number of split operations (= K − 1)
};

/// \brief Runs DRP, producing K groups. Requires 1 ≤ K ≤ N. Complexity
/// O(N log N) for the sort plus O(K·(log K + N)) for the splits (Lemma 1).
DrpResult run_drp(const Database& db, ChannelId channels,
                  const DrpOptions& options = {});

}  // namespace dbs
