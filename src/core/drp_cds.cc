#include "core/drp_cds.h"

namespace dbs {

DrpCdsResult run_drp_cds(const Database& db, ChannelId channels,
                         const DrpCdsOptions& options) {
  // dbs-lint: contract delegated to run_drp (validates channels and catalogue)
  DrpResult drp = run_drp(db, channels, options.drp);
  DrpCdsResult result{std::move(drp.allocation), 0.0, 0.0, {}};
  result.drp_cost = result.allocation.cost();
  if (options.run_cds) {
    result.cds = run_cds(result.allocation, options.cds);
  } else {
    result.cds.initial_cost = result.cds.final_cost = result.drp_cost;
  }
  result.final_cost = result.allocation.cost();
  return result;
}

RepairResult repair_assignment(const Database& db, ChannelId channels,
                               std::vector<ChannelId> assignment,
                               const CdsOptions& options) {
  // dbs-lint: contract delegated to Allocation (validates channels/assignment)
  RepairResult result{Allocation(db, channels, std::move(assignment)), 0.0, 0.0, {}};
  result.initial_cost = result.allocation.cost();
  result.cds = run_cds(result.allocation, options);
  result.final_cost = result.allocation.cost();
  return result;
}

}  // namespace dbs
