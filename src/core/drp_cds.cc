#include "core/drp_cds.h"

namespace dbs {

DrpCdsResult run_drp_cds(const Database& db, ChannelId channels,
                         const DrpCdsOptions& options) {
  // dbs-lint: contract delegated to run_drp (validates channels and catalogue)
  DrpResult drp = run_drp(db, channels, options.drp);
  DrpCdsResult result{std::move(drp.allocation), 0.0, 0.0, {}};
  result.drp_cost = result.allocation.cost();
  if (options.run_cds) {
    result.cds = run_cds(result.allocation, options.cds);
  } else {
    result.cds.initial_cost = result.cds.final_cost = result.drp_cost;
  }
  result.final_cost = result.allocation.cost();
  return result;
}

}  // namespace dbs
