// The paper's two-step allocation scheme: DRP provides the rough allocation,
// CDS refines it to a local optimum (paper §1, "two-step allocation scheme").
#pragma once

#include "core/cds.h"
#include "core/drp.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Options for the combined pipeline.
struct DrpCdsOptions {
  DrpOptions drp;
  CdsOptions cds;
  bool run_cds = true;  ///< disable to obtain plain DRP through the same API
};

/// Combined run record: costs after each stage plus CDS statistics.
struct DrpCdsResult {
  Allocation allocation;
  double drp_cost = 0.0;   ///< cost after the rough allocation
  double final_cost = 0.0; ///< cost after refinement
  CdsStats cds;            ///< zero-iteration stats when run_cds is false
};

/// \brief Runs DRP followed by CDS. Requires 1 ≤ K ≤ N.
DrpCdsResult run_drp_cds(const Database& db, ChannelId channels,
                         const DrpCdsOptions& options = {});

}  // namespace dbs
