// The paper's two-step allocation scheme: DRP provides the rough allocation,
// CDS refines it to a local optimum (paper §1, "two-step allocation scheme").
#pragma once

#include "core/cds.h"
#include "core/drp.h"
#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Options for the combined pipeline. Cooperative cancellation (DESIGN.md
/// §13) rides in `cds.deadline`: DRP itself is a single O(N·K) pass that
/// always runs to completion, and the refinement loop polls the deadline
/// once per applied move, so a budgeted DRP-CDS overshoots by at most one
/// CDS iteration.
struct DrpCdsOptions {
  DrpOptions drp;
  CdsOptions cds;
  bool run_cds = true;  ///< disable to obtain plain DRP through the same API
};

/// Combined run record: costs after each stage plus CDS statistics.
struct DrpCdsResult {
  Allocation allocation;
  double drp_cost = 0.0;   ///< cost after the rough allocation
  double final_cost = 0.0; ///< cost after refinement
  CdsStats cds;            ///< zero-iteration stats when run_cds is false
};

/// \brief Runs DRP followed by CDS. Requires 1 ≤ K ≤ N.
DrpCdsResult run_drp_cds(const Database& db, ChannelId channels,
                         const DrpCdsOptions& options = {});

/// Outcome of repairing a carried-over assignment against a database.
struct RepairResult {
  Allocation allocation;
  double initial_cost = 0.0;  ///< cost of the seed assignment on `db`
  double final_cost = 0.0;    ///< cost after the CDS repair
  CdsStats cds;
};

/// \brief The incremental-repair entry point (ROADMAP item 2): rebinds an
/// existing assignment to `db` — typically the previous epoch's program on a
/// freshly re-estimated database — and runs CDS moves from there instead of
/// a full DRP rebuild. Same local-search guarantees as run_cds; the work is
/// a handful of moves when the seed is already near a local optimum.
/// Requires assignment.size() == db.size() and every entry < channels.
RepairResult repair_assignment(const Database& db, ChannelId channels,
                               std::vector<ChannelId> assignment,
                               const CdsOptions& options = {});

}  // namespace dbs
