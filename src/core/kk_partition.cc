#include "core/kk_partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "common/check.h"
#include "obs/obs.h"

namespace dbs {
namespace {

constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

// One materialized LDM node: K partial group sums kept sorted descending,
// each slot carrying the intrusive singly-linked list of the elements
// committed to it (so merging two slots is an O(1) splice, never a vector
// concatenation — total memory stays O(live_nodes · K + N)).
struct LdmNode {
  std::vector<double> sums;
  std::vector<std::size_t> head;
  std::vector<std::size_t> tail;
};

// Heap entry. Unmerged elements stay implicit (node == kNoIndex): a
// singleton's K-tuple is (w, 0, …, 0), so there is nothing to store until
// its first merge — that halves the peak node count. `tie` is the smallest
// element id inside the node, which is unique per node (element sets are
// disjoint) and makes the merge order a deterministic total order.
struct HeapEntry {
  double spread = 0.0;
  std::size_t tie = 0;
  std::size_t node = kNoIndex;
  std::size_t element = kNoIndex;
};

}  // namespace

KkPartition kk_partition(std::span<const double> weights, ChannelId k) {
  DBS_OBS_SPAN("core.kk.partition");
  DBS_CHECK_MSG(k >= 1, "kk_partition needs at least one group");
  DBS_CHECK_MSG(!weights.empty(), "kk_partition needs at least one weight");
  for (const double w : weights) {
    DBS_CHECK_MSG(std::isfinite(w) && w >= 0.0,
                  "kk_partition weights must be finite and non-negative");
  }
  const std::size_t n = weights.size();
  const auto groups = static_cast<std::size_t>(k);

  KkPartition result;
  result.groups.assign(n, 0);
  result.sums.assign(groups, 0.0);
  if (groups == 1) {
    // Single group: everything lands together; sum in id order so the
    // reduction is deterministic.
    for (const double w : weights) result.sums[0] += w;
    return result;
  }

  // next_element[e] chains the elements committed to one slot.
  std::vector<std::size_t> next_element(n, kNoIndex);
  std::vector<LdmNode> nodes;
  std::vector<std::size_t> free_nodes;
  const auto acquire_node = [&]() {
    std::size_t index = kNoIndex;
    if (free_nodes.empty()) {
      index = nodes.size();
      nodes.emplace_back();
    } else {
      index = free_nodes.back();
      free_nodes.pop_back();
    }
    LdmNode& node = nodes[index];
    node.sums.assign(groups, 0.0);
    node.head.assign(groups, kNoIndex);
    node.tail.assign(groups, kNoIndex);
    return index;
  };
  const auto splice = [&](LdmNode& into, std::size_t slot, std::size_t head,
                          std::size_t tail) {
    if (head == kNoIndex) return;
    if (into.head[slot] == kNoIndex) {
      into.head[slot] = head;
    } else {
      next_element[into.tail[slot]] = head;
    }
    into.tail[slot] = tail;
  };

  // Max-heap on spread; equal spreads resolve to the node holding the
  // smallest element id, so the whole merge sequence is deterministic.
  const auto heap_less = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.spread != b.spread) return a.spread < b.spread;
    return a.tie > b.tie;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(heap_less)>
      heap(heap_less);
  for (std::size_t e = 0; e < n; ++e) {
    heap.push(HeapEntry{weights[e], e, kNoIndex, e});
  }

  // Scratch buffers for the per-merge descending re-sort, reused across
  // merges.
  std::vector<std::size_t> order(groups);
  std::vector<double> sorted_sums(groups);
  std::vector<std::size_t> sorted_head(groups);
  std::vector<std::size_t> sorted_tail(groups);

  while (heap.size() > 1) {
    HeapEntry a = heap.top();
    heap.pop();
    const HeapEntry b = heap.top();
    heap.pop();

    // Materialize `a` as the surviving node.
    if (a.node == kNoIndex) {
      a.node = acquire_node();
      LdmNode& fresh = nodes[a.node];
      fresh.sums[0] = weights[a.element];
      fresh.head[0] = fresh.tail[0] = a.element;
    }
    LdmNode& keep = nodes[a.node];

    // The LDM merge pairs sums largest-against-smallest: c_i = a_i +
    // b_{K-1-i}. For each slot pair c_i − c_j = (a_i − a_j) − (b_{K-1-j} −
    // b_{K-1-i}) is a difference of equal-signed gaps, so the merged spread
    // never exceeds max(spread(a), spread(b)) — the differencing bound.
    if (b.node == kNoIndex) {
      keep.sums[groups - 1] += weights[b.element];
      splice(keep, groups - 1, b.element, b.element);
    } else {
      LdmNode& other = nodes[b.node];
      for (std::size_t i = 0; i < groups; ++i) {
        const std::size_t j = groups - 1 - i;
        keep.sums[i] += other.sums[j];
        splice(keep, i, other.head[j], other.tail[j]);
      }
      other.sums.clear();
      other.head.clear();
      other.tail.clear();
      free_nodes.push_back(b.node);
    }

    // Restore the descending slot order (stable, so equal sums keep their
    // relative position and the labeling stays deterministic).
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return keep.sums[x] > keep.sums[y];
    });
    for (std::size_t i = 0; i < groups; ++i) {
      sorted_sums[i] = keep.sums[order[i]];
      sorted_head[i] = keep.head[order[i]];
      sorted_tail[i] = keep.tail[order[i]];
    }
    keep.sums = sorted_sums;
    keep.head = sorted_head;
    keep.tail = sorted_tail;

    heap.push(HeapEntry{keep.sums.front() - keep.sums.back(),
                        std::min(a.tie, b.tie), a.node, kNoIndex});
  }

  const HeapEntry final_entry = heap.top();
  if (final_entry.node == kNoIndex) {
    // N = 1: the lone element never merged.
    result.sums[0] = weights[final_entry.element];
    return result;
  }
  const LdmNode& final_node = nodes[final_entry.node];
  for (std::size_t slot = 0; slot < groups; ++slot) {
    result.sums[slot] = final_node.sums[slot];
    for (std::size_t e = final_node.head[slot]; e != kNoIndex;
         e = next_element[e]) {
      result.groups[e] = static_cast<ChannelId>(slot);
    }
  }
  DBS_OBS_COUNTER_INC("core.kk.runs");
  return result;
}

Allocation kk_seed_allocation(const Database& db, ChannelId channels) {
  DBS_CHECK_MSG(channels >= 1, "kk_seed_allocation needs at least one channel");
  DBS_CHECK_MSG(channels <= db.size(), "cannot fill more channels than items");
  const std::span<const double> freqs = db.freqs();
  const std::span<const double> sizes = db.sizes();
  std::vector<double> weights(db.size());
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = std::sqrt(freqs[j] * sizes[j]);
  }
  KkPartition partition = kk_partition(weights, channels);
  return Allocation(db, channels, std::move(partition.groups));
}

double broadcast_cost_lower_bound(const Database& db, ChannelId channels) {
  DBS_CHECK_MSG(channels >= 1, "broadcast_cost_lower_bound needs K >= 1");
  const std::span<const double> freqs = db.freqs();
  const std::span<const double> sizes = db.sizes();
  double root_mass = 0.0;
  for (std::size_t j = 0; j < db.size(); ++j) {
    root_mass += std::sqrt(freqs[j] * sizes[j]);
  }
  return std::max(db.weighted_size(),
                  root_mass * root_mass / static_cast<double>(channels));
}

}  // namespace dbs
