// Karmarkar–Karp largest-differencing seeding for the optimizer portfolio
// (DESIGN.md §13).
//
// The Eq. 3 cost Σ_i F_i·Z_i is bounded below, per channel, by the
// Cauchy–Schwarz inequality: F_i·Z_i ≥ (Σ_{j∈D_i} √(f_j z_j))² = G_i², so a
// partition that balances the per-channel √(f·z) mass G_i drives the cost
// toward its K-channel floor (Σ_j √(f_j z_j))² / K. Balancing K subset sums
// is exactly multi-way number partitioning, and the largest differencing
// method (LDM, Karmarkar–Karp 1982) is its classic near-optimal heuristic:
// it commits only to *differences* between the largest partial solutions,
// deferring the actual side-picking until everything else is placed. The
// resulting seed lands near a CDS basin that the paper's own DRP ordering
// misses on low-diversity workloads — which is why the portfolio races it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Outcome of the K-way largest-differencing partition.
struct KkPartition {
  /// Group label (0..k-1) per input element, indexed like `weights`.
  std::vector<ChannelId> groups;
  /// Final per-group weight sums, one per group, in group-label order.
  std::vector<double> sums;
};

/// \brief Partitions `weights` into `k` groups with the Karmarkar–Karp
/// largest differencing method.
///
/// LDM state is a set of K-tuples of partial group sums (kept sorted
/// descending); each step merges the two tuples of largest spread by pairing
/// their sums largest-against-smallest, which cancels the bulk of the
/// difference while deferring the final group identities. Because a merge
/// never increases the spread of either operand, the returned partition
/// satisfies max(sums) − min(sums) ≤ max(weights) — the differencing bound
/// the property tests pin. Deterministic: ties in the merge order resolve to
/// the tuple containing the smallest element id. Requires k ≥ 1, at least
/// one weight, and every weight finite and non-negative. O(N·(log N + K)).
KkPartition kk_partition(std::span<const double> weights, ChannelId k);

/// \brief KK-differencing seed allocation: partitions the catalogue into
/// `channels` groups balancing the per-channel √(f·z) mass (the
/// Cauchy–Schwarz-exact weight column — see the header comment), and binds
/// the result to `db`. Requires 1 ≤ channels ≤ N. The portfolio refines
/// this seed with CDS; on its own it ignores the f×z cross terms.
Allocation kk_seed_allocation(const Database& db, ChannelId channels);

/// \brief KSY-flavoured lower bound on the Eq. 3 cost of *any* K-channel
/// allocation: max(Σ_j f_j z_j, (Σ_j √(f_j z_j))² / K).
///
/// The first term keeps every item's own f_j·z_j product (all cross terms
/// in F_i·Z_i are non-negative); the second is Cauchy–Schwarz per channel
/// followed by the quadratic–arithmetic mean inequality across channels,
/// the same √(f·z)-mass argument Kenyon–Schabanel–Young build their
/// broadcast PTAS around. Used by the tests as the quality anchor no
/// algorithm may beat. Requires channels ≥ 1.
double broadcast_cost_lower_bound(const Database& db, ChannelId channels);

}  // namespace dbs
