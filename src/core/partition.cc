#include "core/partition.h"

#include "common/check.h"
#include "obs/obs.h"

namespace dbs {

SplitResult best_split(const PrefixSums& sums, std::size_t begin, std::size_t end) {
  DBS_CHECK_MSG(end <= sums.freq.size() - 1, "slice end out of range");
  DBS_CHECK_MSG(end - begin >= 2, "cannot split a group of fewer than two items");
  DBS_OBS_COUNTER_INC("core.partition.split_searches");
  DBS_OBS_COUNTER_ADD("core.partition.split_candidates", end - begin - 1);

  // Hoist the slice endpoints so the scan touches only the two contiguous
  // prefix columns. The arithmetic is term-for-term identical to
  // cost_of(begin, p) + cost_of(p, end), so results stay bit-identical to
  // the pre-columnar scan (tie-break: first strict improvement wins, i.e.
  // smallest p).
  const double* pf = sums.freq.data();
  const double* pz = sums.size.data();
  const double f0 = pf[begin], z0 = pz[begin];
  const double f1 = pf[end], z1 = pz[end];

  SplitResult best;
  double best_total = 0.0;
  bool first = true;
  for (std::size_t p = begin + 1; p < end; ++p) {
    const double left = (pf[p] - f0) * (pz[p] - z0);
    const double right = (f1 - pf[p]) * (z1 - pz[p]);
    const double total = left + right;
    if (first || total < best_total) {
      first = false;
      best_total = total;
      best.split = p;
      best.left_cost = left;
      best.right_cost = right;
    }
  }
  return best;
}

}  // namespace dbs
