#include "core/partition.h"

#include "common/check.h"
#include "obs/obs.h"

namespace dbs {

PrefixSums::PrefixSums(const Database& db, std::span<const ItemId> order) {
  DBS_CHECK_MSG(order.size() <= db.size(),
                "order names more items than the database holds");
  freq.resize(order.size() + 1, 0.0);
  size.resize(order.size() + 1, 0.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Item& it = db.item(order[i]);
    freq[i + 1] = freq[i] + it.freq;
    size[i + 1] = size[i] + it.size;
  }
}

SplitResult best_split(const PrefixSums& sums, std::size_t begin, std::size_t end) {
  DBS_CHECK_MSG(end <= sums.freq.size() - 1, "slice end out of range");
  DBS_CHECK_MSG(end - begin >= 2, "cannot split a group of fewer than two items");
  DBS_OBS_COUNTER_INC("core.partition.split_searches");
  DBS_OBS_COUNTER_ADD("core.partition.split_candidates", end - begin - 1);

  SplitResult best;
  double best_total = 0.0;
  bool first = true;
  for (std::size_t p = begin + 1; p < end; ++p) {
    const double left = sums.cost_of(begin, p);
    const double right = sums.cost_of(p, end);
    const double total = left + right;
    if (first || total < best_total) {
      first = false;
      best_total = total;
      best.split = p;
      best.left_cost = left;
      best.right_cost = right;
    }
  }
  return best;
}

}  // namespace dbs
