// Procedure Partition (paper §3.1): given a group of items ordered by
// benefit ratio, find the contiguous split point p that minimizes
// cost(left) + cost(right). With prefix sums the scan is O(n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/database.h"

namespace dbs {

/// Prefix aggregates over an ordered item sequence. prefix_freq[i] and
/// prefix_size[i] are the sums over the first i items, so the aggregates of
/// the slice [a, b) are prefix[b] − prefix[a]. Shared by DRP's groups so each
/// split scan needs no per-group recomputation.
struct PrefixSums {
  std::vector<double> freq;  // size n+1, freq[0] = 0
  std::vector<double> size;  // size n+1, size[0] = 0

  /// Builds prefix sums over `order`, a permutation (or subset) of item ids.
  PrefixSums(const Database& db, std::span<const ItemId> order);

  /// Aggregate frequency of slice [a, b).
  double freq_of(std::size_t a, std::size_t b) const { return freq[b] - freq[a]; }
  /// Aggregate size of slice [a, b).
  double size_of(std::size_t a, std::size_t b) const { return size[b] - size[a]; }
  /// Group cost F·Z of slice [a, b) (Definition 1).
  double cost_of(std::size_t a, std::size_t b) const {
    return freq_of(a, b) * size_of(a, b);
  }
};

/// Result of splitting the slice [begin, end): the left part is
/// [begin, split), the right part is [split, end).
struct SplitResult {
  std::size_t split = 0;
  double left_cost = 0.0;
  double right_cost = 0.0;

  double total() const { return left_cost + right_cost; }
};

/// Finds the split index p ∈ (begin, end) minimizing
/// cost([begin,p)) + cost([p,end)). Requires end − begin ≥ 2.
/// Ties resolve to the smallest p, making the procedure deterministic.
SplitResult best_split(const PrefixSums& sums, std::size_t begin, std::size_t end);

}  // namespace dbs
