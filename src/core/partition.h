// Procedure Partition (paper §3.1): given a group of items ordered by
// benefit ratio, find the contiguous split point p that minimizes
// cost(left) + cost(right). With prefix sums the scan is O(n).
//
// PrefixSums itself now lives in model/prefix_sums.h (promoted in PR 7 so
// the Database can cache one over its benefit order); this header re-exports
// it for the split machinery and for existing includers.
#pragma once

#include <cstddef>

#include "model/database.h"
#include "model/prefix_sums.h"

namespace dbs {

/// \brief Result of splitting the slice [begin, end): the left part is
/// [begin, split), the right part is [split, end).
struct SplitResult {
  std::size_t split = 0;
  double left_cost = 0.0;
  double right_cost = 0.0;

  /// \brief Combined cost of the two parts.
  double total() const { return left_cost + right_cost; }
};

/// \brief Finds the split index p ∈ (begin, end) minimizing
/// cost([begin,p)) + cost([p,end)). Requires end − begin ≥ 2.
/// Ties resolve to the smallest p, making the procedure deterministic.
SplitResult best_split(const PrefixSums& sums, std::size_t begin, std::size_t end);

}  // namespace dbs
