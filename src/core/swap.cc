#include "core/swap.h"

namespace dbs {

double swap_gain(const Allocation& alloc, ItemId a, ItemId b) {
  const ChannelId p = alloc.channel_of(a);
  const ChannelId q = alloc.channel_of(b);
  if (p == q) return 0.0;
  const Item& ia = alloc.database().item(a);
  const Item& ib = alloc.database().item(b);
  const double fp = alloc.freq_of(p);
  const double zp = alloc.size_of(p);
  const double fq = alloc.freq_of(q);
  const double zq = alloc.size_of(q);
  const double new_p = (fp - ia.freq + ib.freq) * (zp - ia.size + ib.size);
  const double new_q = (fq - ib.freq + ia.freq) * (zq - ib.size + ia.size);
  return (fp * zp + fq * zq) - (new_p + new_q);
}

SwapMove best_swap(const Allocation& alloc) {
  SwapMove best;
  bool have = false;
  const std::size_t n = alloc.items();
  for (ItemId a = 0; a < n; ++a) {
    for (ItemId b = a + 1; b < n; ++b) {
      if (alloc.channel_of(a) == alloc.channel_of(b)) continue;
      const double gain = swap_gain(alloc, a, b);
      if (!have || gain > best.gain) {
        have = true;
        best = SwapMove{a, b, alloc.channel_of(a), alloc.channel_of(b), gain};
      }
    }
  }
  return best;
}

DeepSearchStats run_cds_with_swaps(Allocation& alloc, const CdsOptions& options) {
  DeepSearchStats stats;
  stats.initial_cost = alloc.cost();

  while (true) {
    const CdsStats phase = run_cds(alloc, options);
    stats.cds.iterations += phase.iterations;

    const SwapMove swap = best_swap(alloc);
    if (swap.gain <= options.min_gain) break;
    // Apply the exchange as two moves (aggregates stay exact throughout).
    alloc.move(swap.a, swap.from_b);
    alloc.move(swap.b, swap.from_a);
    ++stats.swap_steps;
  }

  stats.cds.initial_cost = stats.initial_cost;
  stats.cds.final_cost = alloc.cost();
  stats.final_cost = alloc.cost();
  return stats;
}

}  // namespace dbs
