// Swap neighborhood: exchanging a pair of items between two channels in one
// step. CDS's single-move neighborhood can strand the search at local optima
// where any lone move raises the cost but a *pairwise exchange* lowers it —
// e.g. two similar-profile items parked on the wrong sides. This extension
// evaluates the closed-form cost change of a swap in O(1) and interleaves
// swap steps with CDS until neither neighborhood improves, yielding a
// strictly deeper local optimum than CDS alone (never worse, sometimes
// better — quantified by bench/ablation_swap).
#pragma once

#include <cstddef>

#include "core/cds.h"
#include "model/allocation.h"

namespace dbs {

/// A candidate pairwise exchange: item `a` (on channel `from_a`) trades
/// places with item `b` (on channel `from_b`).
struct SwapMove {
  ItemId a = 0;
  ItemId b = 0;
  ChannelId from_a = 0;
  ChannelId from_b = 0;
  double gain = 0.0;  ///< positive = the swap reduces total cost
};

/// \brief Cost reduction of swapping items `a` and `b` between their
/// channels.
/// Zero when they share a channel. O(1) via the channel aggregates.
double swap_gain(const Allocation& alloc, ItemId a, ItemId b);

/// \brief Scans all item pairs on distinct channels and returns the best
/// swap
/// (gain ≤ 0 when none improves). O(N²).
SwapMove best_swap(const Allocation& alloc);

/// Combined deep local search: run CDS to its optimum, then apply the best
/// improving swap and repeat, until neither a move nor a swap improves.
/// Returns combined statistics; `swap_steps` counts applied swaps.
struct DeepSearchStats {
  CdsStats cds;             ///< accumulated over all CDS phases
  std::size_t swap_steps = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
};
/// \brief Runs the interleaved CDS + swap loop described above until
/// neither neighborhood improves, mutating `alloc` in place.
DeepSearchStats run_cds_with_swaps(Allocation& alloc, const CdsOptions& options = {});

}  // namespace dbs
