#include "depend/queries.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/distributions.h"

namespace dbs {

std::vector<double> QueryWorkload::induced_item_frequencies(std::size_t items) const {
  std::vector<double> freq(items, 0.0);
  for (const Query& q : queries) {
    for (ItemId id : q.items) {
      DBS_CHECK(id < items);
      freq[id] += q.freq;
    }
  }
  return freq;
}

QueryWorkload generate_query_workload(const Database& db,
                                      const QueryWorkloadConfig& config) {
  DBS_CHECK(config.queries > 0);
  DBS_CHECK(config.max_items >= 1);
  DBS_CHECK_MSG(config.max_items <= db.size(),
                "queries cannot need more items than the database holds");
  Rng rng(config.seed);

  const std::vector<double> query_freqs =
      zipf_probabilities(config.queries, config.skewness);
  const std::vector<double> item_weights =
      zipf_probabilities(db.size(), config.item_skewness);
  const AliasSampler item_sampler(item_weights);

  QueryWorkload workload;
  workload.queries.reserve(config.queries);
  for (std::size_t qi = 0; qi < config.queries; ++qi) {
    const std::size_t want =
        1 + static_cast<std::size_t>(rng.below(config.max_items));
    std::vector<ItemId> items;
    while (items.size() < want) {
      const auto candidate = static_cast<ItemId>(item_sampler.sample(rng));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    std::sort(items.begin(), items.end());
    workload.queries.push_back(Query{std::move(items), query_freqs[qi]});
  }
  return workload;
}

double query_latency_parallel(const BroadcastProgram& program, const Query& query,
                              double t) {
  DBS_CHECK(!query.items.empty());
  double done = 0.0;
  for (ItemId id : query.items) {
    done = std::max(done, program.delivery_time(id, t));
  }
  return done - t;
}

double query_latency_sequential(const BroadcastProgram& program, const Query& query,
                                double t) {
  DBS_CHECK(!query.items.empty());
  std::vector<ItemId> missing = query.items;
  double now = t;
  while (!missing.empty()) {
    std::size_t best = 0;
    double best_done = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < missing.size(); ++i) {
      const double done = program.delivery_time(missing[i], now);
      if (done < best_done) {
        best_done = done;
        best = i;
      }
    }
    now = best_done;
    missing.erase(missing.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return now - t;
}

QueryLatencyReport evaluate_query_workload(const BroadcastProgram& program,
                                           const QueryWorkload& workload,
                                           std::size_t samples) {
  DBS_CHECK(samples > 0);
  // Sample start times uniformly over the hyper-span of all cycles (use the
  // longest cycle as the sampling window — per-channel phases are periodic).
  double window = 0.0;
  for (ChannelId c = 0; c < program.channels(); ++c) {
    window = std::max(window, program.schedule(c).cycle_time);
  }
  if (window <= 0.0) window = 1.0;

  QueryLatencyReport report;
  double freq_total = 0.0;
  for (const Query& q : workload.queries) {
    double par = 0.0;
    double seq = 0.0;
    for (std::size_t s = 0; s < samples; ++s) {
      const double t = window * (static_cast<double>(s) + 0.5) /
                       static_cast<double>(samples);
      par += query_latency_parallel(program, q, t);
      seq += query_latency_sequential(program, q, t);
    }
    report.parallel += q.freq * par / static_cast<double>(samples);
    report.sequential += q.freq * seq / static_cast<double>(samples);
    freq_total += q.freq;
  }
  DBS_CHECK(freq_total > 0.0);
  report.parallel /= freq_total;
  report.sequential /= freq_total;
  return report;
}

}  // namespace dbs
