// Dependent-data broadcasting: clients issue *queries* that need several
// items, not single items (the environment of the paper's references [9] and
// [10], Huang & Chen). The program generator still allocates items, but the
// latency that matters is per-query: the time until the client holds every
// item it asked for.
//
// Two retrieval models are evaluated:
//  * parallel  — the device can listen to all channels at once; the query
//    completes when the slowest item arrives (max of delivery times);
//  * sequential — a single tuner: the client repeatedly picks, among the
//    missing items, the one whose next transmission completes earliest,
//    downloads it, and continues from that instant (greedy plan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "model/database.h"
#include "sim/program.h"

namespace dbs {

/// One query pattern: an item set with an occurrence probability.
struct Query {
  std::vector<ItemId> items;  ///< distinct, non-empty
  double freq = 0.0;          ///< normalized across the workload
};

/// A query workload over a database.
struct QueryWorkload {
  std::vector<Query> queries;

  /// Per-item access frequency induced by the queries:
  /// f_item ∝ Σ_{queries q ∋ item} freq(q). This is what a single-item
  /// scheduler (e.g. DRP-CDS) would be fed.
  std::vector<double> induced_item_frequencies(std::size_t items) const;
};

/// Generator parameters for synthetic query workloads.
struct QueryWorkloadConfig {
  std::size_t queries = 60;       ///< number of distinct query patterns
  std::size_t max_items = 4;      ///< items per query drawn from [1, max]
  double skewness = 0.8;          ///< Zipf over query rank
  double item_skewness = 0.8;     ///< Zipf for picking member items
  std::uint64_t seed = 1;
};

/// Draws a synthetic query workload over `db`. Query popularity is Zipf over
/// query rank; member items are drawn (without replacement within a query)
/// from a Zipf over item ids.
QueryWorkload generate_query_workload(const Database& db,
                                      const QueryWorkloadConfig& config);

/// Latency of one query instance starting at time t under the parallel
/// (all-channels) retrieval model.
double query_latency_parallel(const BroadcastProgram& program, const Query& query,
                              double t);

/// Latency under the sequential single-tuner greedy retrieval model.
double query_latency_sequential(const BroadcastProgram& program, const Query& query,
                                double t);

/// Expected query latency of the workload: freq-weighted mean over queries of
/// the mean latency over `samples` uniformly-spread start times per query.
struct QueryLatencyReport {
  double parallel = 0.0;
  double sequential = 0.0;
};
QueryLatencyReport evaluate_query_workload(const BroadcastProgram& program,
                                           const QueryWorkload& workload,
                                           std::size_t samples = 64);

}  // namespace dbs
