#include "hetero/hetero.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "core/drp.h"

namespace dbs {
namespace {

void check_bandwidths(const Allocation& alloc, const std::vector<double>& bandwidths) {
  DBS_CHECK_MSG(bandwidths.size() == alloc.channels(),
                "need one bandwidth per channel");
  for (double b : bandwidths) DBS_CHECK_MSG(b > 0.0, "bandwidths must be positive");
}

/// Incremental state for the heterogeneous local search: per-channel
/// aggregate frequency F, size Z and download sum P = Σ f·z.
class HeteroSearch {
 public:
  HeteroSearch(Allocation& alloc, const std::vector<double>& bandwidths)
      : alloc_(alloc), bandwidths_(bandwidths), freq_(alloc.channels(), 0.0),
        size_(alloc.channels(), 0.0), download_(alloc.channels(), 0.0) {
    const Database& db = alloc.database();
    for (ItemId id = 0; id < db.size(); ++id) {
      const Item& it = db.item(id);
      const ChannelId c = alloc.channel_of(id);
      freq_[c] += it.freq;
      size_[c] += it.size;
      download_[c] += it.freq * it.size;
    }
  }

  double wait() const {
    double w = 0.0;
    for (ChannelId c = 0; c < alloc_.channels(); ++c) {
      w += (freq_[c] * size_[c] / 2.0 + download_[c]) / bandwidths_[c];
    }
    return w;
  }

  /// Generalized Eq. (4) gain of moving `id` to channel `to` (O(1)).
  double gain(ItemId id, ChannelId to) const {
    const ChannelId from = alloc_.channel_of(id);
    if (from == to) return 0.0;
    const Item& it = alloc_.database().item(id);
    const double fz = it.freq * it.size;
    const double lost = ((it.freq * size_[from] + it.size * freq_[from] - fz) / 2.0 +
                         fz) / bandwidths_[from];
    const double gained = ((it.freq * size_[to] + it.size * freq_[to] + fz) / 2.0 +
                           fz) / bandwidths_[to];
    return lost - gained;
  }

  void apply(ItemId id, ChannelId to) {
    const ChannelId from = alloc_.channel_of(id);
    const Item& it = alloc_.database().item(id);
    freq_[from] -= it.freq;
    size_[from] -= it.size;
    download_[from] -= it.freq * it.size;
    freq_[to] += it.freq;
    size_[to] += it.size;
    download_[to] += it.freq * it.size;
    alloc_.move(id, to);
  }

  /// Best-improvement sweep; returns moves applied.
  std::size_t run(double min_gain = 1e-12) {
    std::size_t moves = 0;
    while (true) {
      ItemId best_item = 0;
      ChannelId best_to = 0;
      double best_gain = 0.0;
      bool have = false;
      for (ItemId id = 0; id < alloc_.items(); ++id) {
        for (ChannelId c = 0; c < alloc_.channels(); ++c) {
          if (c == alloc_.channel_of(id)) continue;
          const double g = gain(id, c);
          if (!have || g > best_gain) {
            have = true;
            best_gain = g;
            best_item = id;
            best_to = c;
          }
        }
      }
      if (!have || best_gain <= min_gain) return moves;
      apply(best_item, best_to);
      ++moves;
    }
  }

 private:
  Allocation& alloc_;
  const std::vector<double>& bandwidths_;
  std::vector<double> freq_, size_, download_;
};

}  // namespace

double hetero_wait(const Allocation& alloc, const std::vector<double>& bandwidths) {
  check_bandwidths(alloc, bandwidths);
  const Database& db = alloc.database();
  std::vector<double> download(alloc.channels(), 0.0);
  for (ItemId id = 0; id < db.size(); ++id) {
    const Item& it = db.item(id);
    download[alloc.channel_of(id)] += it.freq * it.size;
  }
  double w = 0.0;
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    w += (alloc.freq_of(c) * alloc.size_of(c) / 2.0 + download[c]) / bandwidths[c];
  }
  return w;
}

double hetero_move_gain(const Allocation& alloc,
                        const std::vector<double>& bandwidths, ItemId item,
                        ChannelId to) {
  check_bandwidths(alloc, bandwidths);
  DBS_CHECK(item < alloc.items());
  DBS_CHECK(to < alloc.channels());
  const ChannelId from = alloc.channel_of(item);
  if (from == to) return 0.0;
  const Item& it = alloc.database().item(item);
  const double fz = it.freq * it.size;
  const double lost =
      ((it.freq * alloc.size_of(from) + it.size * alloc.freq_of(from) - fz) / 2.0 +
       fz) / bandwidths[from];
  const double gained =
      ((it.freq * alloc.size_of(to) + it.size * alloc.freq_of(to) + fz) / 2.0 + fz) /
      bandwidths[to];
  return lost - gained;
}

HeteroResult schedule_hetero(const Database& db,
                             const std::vector<double>& bandwidths) {
  const auto k = static_cast<ChannelId>(bandwidths.size());
  DBS_CHECK_MSG(k >= 1, "need at least one channel");
  for (double b : bandwidths) DBS_CHECK_MSG(b > 0.0, "bandwidths must be positive");

  // Step 1: DRP grouping, then heaviest group -> fastest channel.
  DrpResult drp = run_drp(db, k);
  std::vector<double> group_load(k, 0.0);  // F·Z/2 + P per DRP channel
  for (ItemId id = 0; id < db.size(); ++id) {
    const Item& it = db.item(id);
    group_load[drp.allocation.channel_of(id)] += it.freq * it.size;
  }
  for (ChannelId c = 0; c < k; ++c) {
    group_load[c] += drp.allocation.freq_of(c) * drp.allocation.size_of(c) / 2.0;
  }

  std::vector<ChannelId> groups_by_load(k), channels_by_bw(k);
  std::iota(groups_by_load.begin(), groups_by_load.end(), 0);
  std::iota(channels_by_bw.begin(), channels_by_bw.end(), 0);
  std::stable_sort(groups_by_load.begin(), groups_by_load.end(),
                   [&](ChannelId a, ChannelId b) { return group_load[a] > group_load[b]; });
  std::stable_sort(channels_by_bw.begin(), channels_by_bw.end(),
                   [&](ChannelId a, ChannelId b) { return bandwidths[a] > bandwidths[b]; });
  std::vector<ChannelId> relabel(k);
  for (ChannelId r = 0; r < k; ++r) relabel[groups_by_load[r]] = channels_by_bw[r];

  std::vector<ChannelId> assignment(db.size());
  for (ItemId id = 0; id < db.size(); ++id) {
    assignment[id] = relabel[drp.allocation.channel_of(id)];
  }
  Allocation alloc(db, k, std::move(assignment));

  // Step 2: generalized-Δ local search to a local optimum.
  HeteroSearch search(alloc, bandwidths);
  const std::size_t moves = search.run();
  const double wait = search.wait();
  return HeteroResult{std::move(alloc), wait, moves};
}

}  // namespace dbs
