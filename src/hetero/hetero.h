// Heterogeneous channel bandwidths — a natural extension of the paper's
// model, where channel c transmits at its own rate b_c (e.g. a mix of
// licensed and shared spectrum). Waiting time generalizes Eq. (2) to
//
//   W = Σ_c [ F_c·Z_c / (2 b_c)  +  (Σ_{x∈c} f_x z_x) / b_c ]
//
// and, unlike the homogeneous case, the download term now depends on the
// schedule too, so the whole expression must be optimized jointly. The move
// reduction generalizing Eq. (4) for d_x(f,z) : p → q is
//
//   Δ = [ (f·Z_p + z·F_p − f·z)/2 + f·z ] / b_p
//     − [ (f·Z_q + z·F_q + f·z)/2 + f·z ] / b_q.
#pragma once

#include <cstddef>
#include <vector>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// Exact heterogeneous waiting time of an allocation under per-channel
/// bandwidths. Requires bandwidths.size() == alloc.channels(), all positive.
/// With all bandwidths equal to b this equals program_waiting_time(alloc, b).
double hetero_wait(const Allocation& alloc, const std::vector<double>& bandwidths);

/// Result of the heterogeneous scheduler.
struct HeteroResult {
  Allocation allocation;
  double wait = 0.0;        ///< heterogeneous W of the final allocation
  std::size_t moves = 0;    ///< local-search iterations applied
};

/// Two-step heterogeneous scheduler in the spirit of DRP-CDS:
///  1. rough allocation — DRP groups matched to channels by load/bandwidth
///     rank (heaviest group → fastest channel);
///  2. fine allocation — best-improvement local search on the generalized Δ
///     above, run to a local optimum.
HeteroResult schedule_hetero(const Database& db,
                             const std::vector<double>& bandwidths);

/// The generalized move reduction (positive = the move lowers W). Exposed
/// for tests; O(N) because it recomputes the per-channel download sums.
double hetero_move_gain(const Allocation& alloc,
                        const std::vector<double>& bandwidths, ItemId item,
                        ChannelId to);

}  // namespace dbs
