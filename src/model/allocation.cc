#include "model/allocation.h"

#include <cmath>
#include <span>
#include <sstream>

#include "common/check.h"

namespace dbs {

Allocation::Allocation(const Database& db, ChannelId channels)
    // dbs-lint: contract delegated to the explicit-assignment constructor
    : Allocation(db, channels, std::vector<ChannelId>(db.size(), 0)) {}

Allocation::Allocation(const Database& db, ChannelId channels,
                       std::vector<ChannelId> assignment)
    : db_(&db), channels_(channels), assignment_(std::move(assignment)) {
  DBS_CHECK_MSG(channels_ > 0, "need at least one channel");
  DBS_CHECK_MSG(assignment_.size() == db.size(),
                "assignment covers " << assignment_.size() << " items, database has "
                                     << db.size());
  freq_.assign(channels_, 0.0);
  size_.assign(channels_, 0.0);
  count_.assign(channels_, 0);
  const std::span<const double> f = db.freqs();
  const std::span<const double> z = db.sizes();
  for (ItemId id = 0; id < assignment_.size(); ++id) {
    const ChannelId c = assignment_[id];
    DBS_CHECK_MSG(c < channels_, "item " << id << " assigned to channel " << c
                                         << " but only " << channels_ << " exist");
    freq_[c] += f[id];
    size_[c] += z[id];
    ++count_[c];
  }
}

ChannelId Allocation::channel_of(ItemId id) const {
  DBS_CHECK(id < assignment_.size());
  return assignment_[id];
}

double Allocation::freq_of(ChannelId c) const {
  DBS_CHECK(c < channels_);
  return freq_[c];
}

double Allocation::size_of(ChannelId c) const {
  DBS_CHECK(c < channels_);
  return size_[c];
}

std::size_t Allocation::count_of(ChannelId c) const {
  DBS_CHECK(c < channels_);
  return count_[c];
}

void Allocation::move(ItemId id, ChannelId to) {
  DBS_CHECK(id < assignment_.size());
  DBS_CHECK(to < channels_);
  const ChannelId from = assignment_[id];
  if (from == to) return;
  const double f = db_->freqs()[id];
  const double z = db_->sizes()[id];
  freq_[from] -= f;
  size_[from] -= z;
  --count_[from];
  freq_[to] += f;
  size_[to] += z;
  ++count_[to];
  assignment_[id] = to;
}

double Allocation::channel_cost(ChannelId c) const {
  DBS_CHECK(c < channels_);
  return freq_[c] * size_[c];
}

double Allocation::cost() const {
  double total = 0.0;
  for (ChannelId c = 0; c < channels_; ++c) total += freq_[c] * size_[c];
  return total;
}

double Allocation::cost_recomputed() const {
  std::vector<double> f(channels_, 0.0);
  std::vector<double> z(channels_, 0.0);
  const std::span<const double> item_freq = db_->freqs();
  const std::span<const double> item_size = db_->sizes();
  for (ItemId id = 0; id < assignment_.size(); ++id) {
    f[assignment_[id]] += item_freq[id];
    z[assignment_[id]] += item_size[id];
  }
  double total = 0.0;
  for (ChannelId c = 0; c < channels_; ++c) total += f[c] * z[c];
  return total;
}

double Allocation::move_gain(ItemId id, ChannelId to) const {
  DBS_CHECK(id < assignment_.size());
  DBS_CHECK(to < channels_);
  const ChannelId from = assignment_[id];
  if (from == to) return 0.0;
  const double f = db_->freqs()[id];
  const double z = db_->sizes()[id];
  // Eq. (4): Δc = f_x(Z_p − Z_q) + z_x(F_p − F_q) − 2 f_x z_x,
  // with p = from, q = to, measured *before* the move.
  return f * (size_[from] - size_[to]) + z * (freq_[from] - freq_[to]) -
         2.0 * f * z;
}

std::vector<ItemId> Allocation::items_in(ChannelId c) const {
  DBS_CHECK(c < channels_);
  std::vector<ItemId> ids;
  ids.reserve(count_[c]);
  for (ItemId id = 0; id < assignment_.size(); ++id) {
    if (assignment_[id] == c) ids.push_back(id);
  }
  return ids;
}

bool Allocation::validate(std::string* error) const {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (assignment_.size() != db_->size()) return fail("assignment size mismatch");
  std::vector<double> f(channels_, 0.0);
  std::vector<double> z(channels_, 0.0);
  std::vector<std::size_t> n(channels_, 0);
  for (ItemId id = 0; id < assignment_.size(); ++id) {
    const ChannelId c = assignment_[id];
    if (c >= channels_) {
      std::ostringstream os;
      os << "item " << id << " assigned to out-of-range channel " << c;
      return fail(os.str());
    }
    f[c] += db_->freqs()[id];
    z[c] += db_->sizes()[id];
    ++n[c];
  }
  constexpr double kTol = 1e-9;
  for (ChannelId c = 0; c < channels_; ++c) {
    if (n[c] != count_[c] || std::abs(f[c] - freq_[c]) > kTol ||
        std::abs(z[c] - size_[c]) > kTol * (1.0 + z[c])) {
      std::ostringstream os;
      os << "cached aggregates for channel " << c << " diverge from recomputation";
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace dbs
