// A channel allocation: the partition of the database into K channel groups.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "model/database.h"
#include "model/item.h"

namespace dbs {

/// Mutable partition of a Database's items into K disjoint channel groups.
///
/// Maintains per-channel aggregates incrementally:
///   F_i = Σ_{j ∈ D_i} f_j   (aggregate frequency, Definition 3)
///   Z_i = Σ_{j ∈ D_i} z_j   (aggregate size,      Definition 4)
/// so the paper's cost Σ F_i·Z_i and the Δc of a move (Eq. 4) are O(1).
///
/// Like the Database, the aggregates are stored columnar: channel_freqs()
/// and channel_sizes() expose F and Z as contiguous spans so CDS's move
/// search streams over them (docs/ARCHITECTURE.md §3).
///
/// The referenced Database must outlive the Allocation.
class Allocation {
 public:
  /// \brief Creates an allocation with every item assigned to channel 0.
  Allocation(const Database& db, ChannelId channels);

  /// \brief Creates an allocation from an explicit assignment vector
  /// (assignment[id] = channel). Checks bounds.
  Allocation(const Database& db, ChannelId channels,
             std::vector<ChannelId> assignment);

  /// \brief The catalogue this allocation partitions.
  const Database& database() const { return *db_; }
  /// \brief Number of channels K.
  ChannelId channels() const { return channels_; }
  /// \brief Number of items N.
  std::size_t items() const { return assignment_.size(); }

  /// \brief Channel currently holding item `id` (bounds-checked).
  ChannelId channel_of(ItemId id) const;
  /// \brief The assignment column, indexed by ItemId.
  const std::vector<ChannelId>& assignment() const { return assignment_; }

  /// \brief Aggregate frequency F_i of channel i.
  double freq_of(ChannelId c) const;
  /// \brief Aggregate size Z_i of channel i.
  double size_of(ChannelId c) const;
  /// \brief Number of items allocated to channel i (the paper's N_i).
  std::size_t count_of(ChannelId c) const;

  /// \brief The aggregate-frequency column F, indexed by ChannelId.
  std::span<const double> channel_freqs() const { return freq_; }
  /// \brief The aggregate-size column Z, indexed by ChannelId.
  std::span<const double> channel_sizes() const { return size_; }
  /// \brief The item-count column N_i, indexed by ChannelId.
  std::span<const std::size_t> channel_counts() const { return count_; }

  /// \brief Moves item `id` to channel `to`, updating aggregates in O(1).
  /// Moving an item to its current channel is a no-op.
  void move(ItemId id, ChannelId to);

  /// \brief Per-channel cost F_i · Z_i (Definition 1 applied to the group).
  double channel_cost(ChannelId c) const;

  /// \brief Total cost Σ_i F_i·Z_i (Eq. 3) — the quantity every algorithm
  /// minimizes.
  double cost() const;

  /// \brief Recomputes cost from scratch, ignoring the incremental
  /// aggregates. Used by tests to confirm the incremental bookkeeping is
  /// exact.
  double cost_recomputed() const;

  /// \brief The Δc of moving item `id` to channel `to` (Eq. 4), without
  /// performing the move. Positive Δc means the move reduces total cost.
  double move_gain(ItemId id, ChannelId to) const;

  /// \brief Item ids currently assigned to channel c, in ascending id
  /// order. O(N).
  std::vector<ItemId> items_in(ChannelId c) const;

  /// \brief True iff every item is assigned to exactly one in-range channel
  /// and the cached aggregates match a from-scratch recomputation.
  bool validate(std::string* error = nullptr) const;

 private:
  // Test-only backdoor: lets validate()'s failure paths be exercised by
  // corrupting internal state in ways the public API forbids.
  friend struct AllocationTestPeer;

  const Database* db_;
  ChannelId channels_;
  std::vector<ChannelId> assignment_;
  std::vector<double> freq_;          // F_i per channel
  std::vector<double> size_;          // Z_i per channel
  std::vector<std::size_t> count_;    // N_i per channel
};

}  // namespace dbs
