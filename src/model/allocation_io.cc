#include "model/allocation_io.h"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"

namespace dbs {
namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& why) {
  std::ostringstream os;
  os << "allocation line " << line_number << ": " << why;
  throw std::runtime_error(os.str());
}

}  // namespace

void store_allocation(std::ostream& out, const Allocation& alloc, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  out << "# dbs-allocation v1\n";
  out << "channels " << alloc.channels() << '\n';
  out << "bandwidth " << bandwidth << '\n';
  for (ItemId id = 0; id < alloc.items(); ++id) {
    out << "item " << id << ' ' << alloc.channel_of(id) << '\n';
  }
}

StoredAllocation load_allocation(std::istream& in, const Database& db) {
  // dbs-lint: contract delegated to per-line fail() parse validation below,
  // plus the Allocation constructor's bounds re-check on construction.
  std::optional<ChannelId> channels;
  double bandwidth = 0.0;
  std::vector<ChannelId> assignment(db.size(), 0);
  std::vector<bool> seen(db.size(), false);

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword.front() == '#') continue;

    if (keyword == "channels") {
      unsigned long value = 0;
      if (!(fields >> value) || value == 0) fail(line_number, "bad channel count");
      channels = static_cast<ChannelId>(value);
    } else if (keyword == "bandwidth") {
      if (!(fields >> bandwidth) || bandwidth <= 0.0) {
        fail(line_number, "bad bandwidth");
      }
    } else if (keyword == "item") {
      if (!channels.has_value()) fail(line_number, "'item' before 'channels'");
      unsigned long id = 0;
      unsigned long channel = 0;
      if (!(fields >> id >> channel)) fail(line_number, "expected 'item ID CHANNEL'");
      if (id >= db.size()) fail(line_number, "unknown item id " + std::to_string(id));
      if (channel >= *channels) {
        fail(line_number, "channel " + std::to_string(channel) + " out of range");
      }
      if (seen[id]) fail(line_number, "item " + std::to_string(id) + " assigned twice");
      seen[id] = true;
      assignment[id] = static_cast<ChannelId>(channel);
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (!channels.has_value()) throw std::runtime_error("allocation: missing 'channels'");
  if (bandwidth <= 0.0) throw std::runtime_error("allocation: missing 'bandwidth'");
  for (ItemId id = 0; id < db.size(); ++id) {
    if (!seen[id]) {
      throw std::runtime_error("allocation: item " + std::to_string(id) +
                               " never assigned");
    }
  }
  return StoredAllocation{Allocation(db, *channels, std::move(assignment)), bandwidth};
}

}  // namespace dbs
