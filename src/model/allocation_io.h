// Persistence for channel allocations: a small line-oriented text format so
// an operator can compute a program offline, store it, and load it into the
// broadcast server later (or diff two programs in code review).
//
//   # dbs-allocation v1
//   channels 4
//   bandwidth 10
//   item 0 2        <- item 0 broadcasts on channel 2
//   ...
//
// Lines starting with '#' and blank lines are ignored. Every item of the
// database must be assigned exactly once.
#pragma once

#include <istream>
#include <ostream>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// An allocation plus the bandwidth it was planned for.
struct StoredAllocation {
  Allocation allocation;
  double bandwidth = 0.0;
};

/// \brief Writes the allocation (and its planning bandwidth) to `out`.
void store_allocation(std::ostream& out, const Allocation& alloc, double bandwidth);

/// \brief Parses an allocation against `db`. Throws std::runtime_error with a line
/// number on malformed input, unknown items, out-of-range channels, missing
/// or duplicate assignments, or an item-count mismatch with `db`.
StoredAllocation load_allocation(std::istream& in, const Database& db);

}  // namespace dbs
