#include "model/cost.h"

#include "common/check.h"

namespace dbs {

double item_waiting_time(const Allocation& alloc, ItemId id, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  const ChannelId c = alloc.channel_of(id);
  const Item& it = alloc.database().item(id);
  return alloc.size_of(c) / (2.0 * bandwidth) + it.size / bandwidth;
}

double channel_waiting_time(const Allocation& alloc, ChannelId c, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  const double f = alloc.freq_of(c);
  if (f <= 0.0) return 0.0;
  // W^(i) = Z_i/(2b) + (Σ f_j z_j over the channel) / (b F_i)
  double weighted = 0.0;
  for (ItemId id : alloc.items_in(c)) {
    const Item& it = alloc.database().item(id);
    weighted += it.freq * it.size;
  }
  return alloc.size_of(c) / (2.0 * bandwidth) + weighted / (bandwidth * f);
}

double program_waiting_time(const Allocation& alloc, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  return probe_component(alloc, bandwidth) +
         download_component(alloc.database(), bandwidth);
}

double download_component(const Database& db, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  return db.weighted_size() / bandwidth;
}

double probe_component(const Allocation& alloc, double bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  return alloc.cost() / (2.0 * bandwidth);
}

}  // namespace dbs
