// The analytical waiting-time model of diverse data broadcasting
// (paper §2.1, Eqs. 1 and 2) and the derived optimization cost (Eq. 3).
#pragma once

#include "model/allocation.h"
#include "model/item.h"

namespace dbs {

/// \brief Cost of a group with aggregate frequency F and aggregate size Z:
/// cost = F · Z (Definition 1, expressed on aggregates).
inline double group_cost(double aggregate_freq, double aggregate_size) {
  return aggregate_freq * aggregate_size;
}

/// \brief Waiting time of item `id` on its assigned channel (Eq. 1):
///   W_j = Z_i / (2b) + z_j / b
/// i.e. expected probe time (half the broadcast cycle) plus download time.
double item_waiting_time(const Allocation& alloc, ItemId id, double bandwidth);

/// \brief Frequency-weighted average waiting time of channel c (the paper's
/// W^(i)).
/// Returns 0 for an empty channel (no requests ever target it).
double channel_waiting_time(const Allocation& alloc, ChannelId c, double bandwidth);

/// \brief Average waiting time of the whole broadcast program (Eq. 2):
///   W_b = (1/2b) Σ_i F_i·Z_i + (1/b) Σ_j f_j·z_j
double program_waiting_time(const Allocation& alloc, double bandwidth);

/// \brief The schedule-independent part of W_b: (1/b) Σ_j f_j z_j.
double download_component(const Database& db, double bandwidth);

/// \brief The schedule-dependent part of W_b: (1/2b) Σ_i F_i Z_i = cost/(2b).
double probe_component(const Allocation& alloc, double bandwidth);

}  // namespace dbs
