#include "model/database.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace dbs {

Database::Database(std::vector<Item> items) {
  freq_.reserve(items.size());
  size_.reserve(items.size());
  for (const Item& it : items) {
    size_.push_back(it.size);
    freq_.push_back(it.freq);
  }
  validate_and_normalize();
}

Database::Database(const std::vector<double>& sizes, const std::vector<double>& freqs)
    : freq_(freqs), size_(sizes) {
  DBS_CHECK_MSG(sizes.size() == freqs.size(),
                "sizes (" << sizes.size() << ") and freqs (" << freqs.size()
                          << ") must be parallel");
  validate_and_normalize();
}

void Database::validate_and_normalize() {
  DBS_CHECK_MSG(!freq_.empty(), "a broadcast database needs at least one item");
  double freq_sum = 0.0;
  for (std::size_t i = 0; i < freq_.size(); ++i) {
    DBS_CHECK_MSG(std::isfinite(size_[i]) && size_[i] > 0.0,
                  "item " << i << " has non-positive size " << size_[i]);
    DBS_CHECK_MSG(std::isfinite(freq_[i]) && freq_[i] >= 0.0,
                  "item " << i << " has negative frequency " << freq_[i]);
    freq_sum += freq_[i];
  }
  DBS_CHECK_MSG(freq_sum > 0.0, "total access frequency must be positive");

  total_size_ = 0.0;
  weighted_size_ = 0.0;
  br_.resize(freq_.size());
  for (std::size_t i = 0; i < freq_.size(); ++i) {
    freq_[i] /= freq_sum;
    total_size_ += size_[i];
    weighted_size_ += freq_[i] * size_[i];
    br_[i] = freq_[i] / size_[i];
  }

  // The benefit order and its prefix sums are part of the catalogue: every
  // scheduler run shares this one sort instead of re-deriving it (the sort
  // used to dominate DRP's measured wall time at N = 10^6).
  benefit_order_.resize(freq_.size());
  std::iota(benefit_order_.begin(), benefit_order_.end(), 0);
  std::stable_sort(benefit_order_.begin(), benefit_order_.end(),
                   [this](ItemId a, ItemId b) {
                     if (br_[a] != br_[b]) return br_[a] > br_[b];
                     return a < b;
                   });
  benefit_prefix_.update_suffix(*this, benefit_order_, 0);
}

Item Database::item(ItemId id) const {
  DBS_CHECK_MSG(id < freq_.size(), "item id " << id << " out of range");
  return Item{id, size_[id], freq_[id]};
}

std::vector<Item> Database::items() const {
  std::vector<Item> rows;
  rows.reserve(freq_.size());
  for (std::size_t i = 0; i < freq_.size(); ++i) {
    rows.push_back(Item{static_cast<ItemId>(i), size_[i], freq_[i]});
  }
  return rows;
}

std::vector<ItemId> Database::ids_by_freq_desc() const {
  std::vector<ItemId> ids(freq_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](ItemId a, ItemId b) {
    if (freq_[a] != freq_[b]) return freq_[a] > freq_[b];
    return a < b;
  });
  return ids;
}

}  // namespace dbs
