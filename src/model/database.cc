#include "model/database.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace dbs {

Database::Database(std::vector<Item> items) : items_(std::move(items)) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    items_[i].id = static_cast<ItemId>(i);
  }
  validate_and_normalize();
}

Database::Database(const std::vector<double>& sizes, const std::vector<double>& freqs) {
  DBS_CHECK_MSG(sizes.size() == freqs.size(),
                "sizes (" << sizes.size() << ") and freqs (" << freqs.size()
                          << ") must be parallel");
  items_.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    items_.push_back(Item{static_cast<ItemId>(i), sizes[i], freqs[i]});
  }
  validate_and_normalize();
}

void Database::validate_and_normalize() {
  DBS_CHECK_MSG(!items_.empty(), "a broadcast database needs at least one item");
  double freq_sum = 0.0;
  for (const Item& it : items_) {
    DBS_CHECK_MSG(std::isfinite(it.size) && it.size > 0.0,
                  "item " << it.id << " has non-positive size " << it.size);
    DBS_CHECK_MSG(std::isfinite(it.freq) && it.freq >= 0.0,
                  "item " << it.id << " has negative frequency " << it.freq);
    freq_sum += it.freq;
  }
  DBS_CHECK_MSG(freq_sum > 0.0, "total access frequency must be positive");

  total_size_ = 0.0;
  weighted_size_ = 0.0;
  for (Item& it : items_) {
    it.freq /= freq_sum;
    total_size_ += it.size;
    weighted_size_ += it.freq * it.size;
  }
}

const Item& Database::item(ItemId id) const {
  DBS_CHECK_MSG(id < items_.size(), "item id " << id << " out of range");
  return items_[id];
}

std::vector<ItemId> Database::ids_by_benefit_ratio_desc() const {
  std::vector<ItemId> ids(items_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](ItemId a, ItemId b) {
    const double ra = items_[a].benefit_ratio();
    const double rb = items_[b].benefit_ratio();
    if (ra != rb) return ra > rb;
    return a < b;
  });
  return ids;
}

std::vector<ItemId> Database::ids_by_freq_desc() const {
  std::vector<ItemId> ids(items_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](ItemId a, ItemId b) {
    if (items_[a].freq != items_[b].freq) return items_[a].freq > items_[b].freq;
    return a < b;
  });
  return ids;
}

}  // namespace dbs
