// The broadcast database D: the full catalogue of items to disseminate.
#pragma once

#include <cstddef>
#include <vector>

#include "model/item.h"

namespace dbs {

/// Immutable-after-construction catalogue of broadcast items.
///
/// Invariants (checked on construction):
///  * at least one item;
///  * every size is strictly positive and finite;
///  * every frequency is non-negative and finite, with positive total.
///
/// Frequencies are normalized so that Σ f_j = 1, matching the paper's model.
/// Item ids are the positions in the original input order, so an Allocation's
/// assignment vector can be indexed by ItemId.
class Database {
 public:
  /// Builds a database from (size, freq) pairs; ids are assigned 0..N-1 in
  /// input order and frequencies are normalized.
  explicit Database(std::vector<Item> items);

  /// Convenience constructor from parallel arrays.
  Database(const std::vector<double>& sizes, const std::vector<double>& freqs);

  std::size_t size() const { return items_.size(); }
  const Item& item(ItemId id) const;
  const std::vector<Item>& items() const { return items_; }

  /// Σ z_j over the whole database.
  double total_size() const { return total_size_; }

  /// Σ f_j · z_j — the schedule-independent download term of Eq. (2).
  double weighted_size() const { return weighted_size_; }

  /// Item ids sorted by benefit ratio f/z, descending. Ties are broken by
  /// id so the order is deterministic. This is DRP's input order.
  std::vector<ItemId> ids_by_benefit_ratio_desc() const;

  /// Item ids sorted by access frequency, descending (the conventional
  /// environment's order, used by VF^K). Deterministic tie-break by id.
  std::vector<ItemId> ids_by_freq_desc() const;

 private:
  void validate_and_normalize();

  std::vector<Item> items_;
  double total_size_ = 0.0;
  double weighted_size_ = 0.0;
};

}  // namespace dbs
