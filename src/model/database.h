// The broadcast database D: the full catalogue of items to disseminate.
//
// Columnar core (PR 7): the catalogue is stored as structure-of-arrays —
// contiguous `f`, `z` and benefit-ratio columns — so the schedulers' inner
// loops stream over cache-line-dense memory instead of gathering fields out
// of an array of structs. The row view (`Item`) is materialized on demand
// for IO and tests; see docs/ARCHITECTURE.md §3 for the layout contract.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/item.h"
#include "model/prefix_sums.h"

namespace dbs {

/// Immutable-after-construction catalogue of broadcast items.
///
/// Invariants (checked on construction):
///  * at least one item;
///  * every size is strictly positive and finite;
///  * every frequency is non-negative and finite, with positive total.
///
/// Frequencies are normalized so that Σ f_j = 1, matching the paper's model.
/// Item ids are the positions in the original input order, so an Allocation's
/// assignment vector can be indexed by ItemId.
///
/// Storage is columnar: freqs(), sizes() and benefit_ratios() expose the
/// three item columns as contiguous spans, and the benefit-ratio descending
/// order (DRP's input order) is computed once at construction together with
/// its PrefixSums — every scheduler run shares those instead of re-sorting.
class Database {
 public:
  /// \brief Builds a database from (size, freq) pairs; ids are assigned
  /// 0..N-1 in input order and frequencies are normalized.
  explicit Database(std::vector<Item> items);

  /// \brief Convenience constructor from parallel arrays.
  Database(const std::vector<double>& sizes, const std::vector<double>& freqs);

  /// \brief Number of items N.
  std::size_t size() const { return freq_.size(); }

  /// \brief Materializes the row view of item `id` (bounds-checked).
  Item item(ItemId id) const;

  /// \brief Materializes the full row view, in id order. Intended for IO
  /// and tests; hot paths should stream the columns instead.
  std::vector<Item> items() const;

  /// \brief The access-frequency column f, indexed by ItemId (normalized).
  std::span<const double> freqs() const { return freq_; }

  /// \brief The item-size column z, indexed by ItemId.
  std::span<const double> sizes() const { return size_; }

  /// \brief The benefit-ratio column f/z, indexed by ItemId (paper §3.1).
  std::span<const double> benefit_ratios() const { return br_; }

  /// \brief Σ z_j over the whole database.
  double total_size() const { return total_size_; }

  /// \brief Σ f_j · z_j — the schedule-independent download term of Eq. (2).
  double weighted_size() const { return weighted_size_; }

  /// \brief Item ids sorted by benefit ratio f/z descending, ties broken by
  /// id — DRP's input order. Computed once at construction; every call
  /// returns the same cached vector.
  const std::vector<ItemId>& benefit_order() const { return benefit_order_; }

  /// \brief PrefixSums over benefit_order(), shared by DRP, OrderedDp and
  /// the CDS candidate index (built once at construction).
  const PrefixSums& benefit_prefix() const { return benefit_prefix_; }

  /// \brief Copy of benefit_order() (the pre-columnar spelling; prefer
  /// benefit_order() to avoid the copy).
  std::vector<ItemId> ids_by_benefit_ratio_desc() const { return benefit_order_; }

  /// \brief Item ids sorted by access frequency, descending (the
  /// conventional environment's order, used by VF^K). Deterministic
  /// tie-break by id.
  std::vector<ItemId> ids_by_freq_desc() const;

 private:
  void validate_and_normalize();

  std::vector<double> freq_;  // f_j, normalized to Σ f = 1
  std::vector<double> size_;  // z_j
  std::vector<double> br_;    // f_j / z_j, derived after normalization
  double total_size_ = 0.0;
  double weighted_size_ = 0.0;
  std::vector<ItemId> benefit_order_;
  PrefixSums benefit_prefix_;
};

}  // namespace dbs
