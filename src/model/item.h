// The broadcast data item: the unit the scheduler allocates to channels.
#pragma once

#include <cstdint>

namespace dbs {

/// Stable identifier of a data item within a Database (its original index).
using ItemId = std::uint32_t;

/// Index of a broadcast channel, 0-based (the paper's c_{i+1}).
using ChannelId = std::uint32_t;

/// A broadcast data item. In the diverse broadcasting environment each item
/// carries two features: its size z (in abstract size units) and its access
/// frequency f (probability mass; the database normalizes Σf = 1).
struct Item {
  ItemId id = 0;
  double size = 1.0;  ///< z_j, strictly positive
  double freq = 0.0;  ///< f_j, non-negative

  /// Benefit ratio br = f / z (paper §3.1): access probability is profit,
  /// item size is cost. DRP orders items by this ratio.
  double benefit_ratio() const { return freq / size; }
};

/// \brief Items compare equal iff all fields match exactly (useful in
/// tests).
inline bool operator==(const Item& a, const Item& b) {
  return a.id == b.id && a.size == b.size && a.freq == b.freq;
}

}  // namespace dbs
