#include "model/prefix_sums.h"

#include "common/check.h"
#include "model/database.h"

namespace dbs {

PrefixSums::PrefixSums(const Database& db, std::span<const ItemId> order) {
  // dbs-lint: contract delegated to update_suffix (validates order length)
  update_suffix(db, order, 0);
}

void PrefixSums::update_suffix(const Database& db, std::span<const ItemId> order,
                               std::size_t first_changed) {
  DBS_CHECK_MSG(order.size() <= db.size(),
                "order names more items than the database holds");
  DBS_CHECK_MSG(first_changed <= order.size(),
                "suffix start " << first_changed << " beyond order length "
                                << order.size());
  // A shrunken or grown order invalidates everything from the shorter of the
  // two lengths; the caller's first_changed already accounts for edits.
  freq.resize(order.size() + 1);
  size.resize(order.size() + 1);
  freq[0] = 0.0;
  size[0] = 0.0;
  const std::span<const double> item_freq = db.freqs();
  const std::span<const double> item_size = db.sizes();
  for (std::size_t i = first_changed; i < order.size(); ++i) {
    const ItemId id = order[i];
    DBS_CHECK_MSG(id < db.size(), "order names unknown item " << id);
    freq[i + 1] = freq[i] + item_freq[id];
    size[i + 1] = size[i] + item_size[id];
  }
}

}  // namespace dbs
