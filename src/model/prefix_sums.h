// Prefix aggregates over an ordered item sequence — the shared state that
// lets every contiguous-slice cost query run in O(1) over columnar data.
//
// Promoted out of core/partition.h (PR 7): a PrefixSums is now first-class
// model state. The Database caches one instance over its benefit-ratio
// order, so DRP, OrderedDp and the CDS candidate index all share a single
// build instead of re-deriving per-run (see docs/ARCHITECTURE.md §4).
//
// Invariants (checked by tests/partition_test.cc and the incremental-update
// unit test):
//   * freq.size() == size.size() == n + 1 for an order of n items;
//   * freq[0] == size[0] == 0;
//   * freq[i+1] == freq[i] + f(order[i]) evaluated left to right, so the
//     stored values are bit-reproducible for a fixed order — every slice
//     aggregate F = freq[b] − freq[a] is therefore deterministic too;
//   * identically for size.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/item.h"

namespace dbs {

class Database;

/// \brief Prefix aggregates over an ordered item sequence.
///
/// prefix_freq[i] and prefix_size[i] are the sums over the first i items, so
/// the aggregates of the slice [a, b) are prefix[b] − prefix[a]. Shared by
/// DRP's groups (each split scan needs no per-group recomputation) and by
/// the Database's cached benefit order.
struct PrefixSums {
  std::vector<double> freq;  ///< size n+1, freq[0] = 0
  std::vector<double> size;  ///< size n+1, size[0] = 0

  /// \brief Empty sums covering no items (freq == size == {0}).
  PrefixSums() : freq(1, 0.0), size(1, 0.0) {}

  /// \brief Builds prefix sums over `order`, a permutation (or subset) of
  /// item ids of `db`.
  PrefixSums(const Database& db, std::span<const ItemId> order);

  /// \brief Aggregate frequency of slice [a, b).
  double freq_of(std::size_t a, std::size_t b) const { return freq[b] - freq[a]; }
  /// \brief Aggregate size of slice [a, b).
  double size_of(std::size_t a, std::size_t b) const { return size[b] - size[a]; }
  /// \brief Group cost F·Z of slice [a, b) (Definition 1).
  double cost_of(std::size_t a, std::size_t b) const {
    return freq_of(a, b) * size_of(a, b);
  }

  /// \brief Number of items covered (one less than the prefix length).
  std::size_t items() const { return freq.empty() ? 0 : freq.size() - 1; }

  /// \brief Incrementally re-derives the suffix starting at order position
  /// `first_changed` after `order[first_changed..)` was edited in place.
  ///
  /// Positions before `first_changed` are untouched, so the repaired sums
  /// are bit-identical to a full rebuild over the new order — the planner
  /// and the online-repair loop (ROADMAP items 2–3) reorder only a tail
  /// segment and pay O(n − first_changed) instead of O(n). `order` must be
  /// the *current* (post-edit) order and may also be longer or shorter than
  /// the previously covered sequence; storage grows or shrinks to match.
  void update_suffix(const Database& db, std::span<const ItemId> order,
                     std::size_t first_changed);
};

}  // namespace dbs
