#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace dbs::obs {

namespace {

/// Shortest round-trippable rendering of a double for the JSON exporter.
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  DBS_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  DBS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                "histogram bounds must be strictly increasing");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  bounds.reserve(31);
  for (int exp = -10; exp <= 20; ++exp) {
    bounds.push_back(std::ldexp(1.0, exp));
  }
  return bounds;
}

bool valid_metric_name(std::string_view name) {
  std::size_t components = 0;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t dot = std::min(name.find('.', start), name.size());
    const std::string_view part = name.substr(start, dot - start);
    if (part.empty() || part.front() < 'a' || part.front() > 'z') return false;
    for (char c : part) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
      if (!ok) return false;
    }
    ++components;
    start = dot + 1;
    if (dot == name.size()) break;
  }
  return components >= 2;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

/// Registration guard shared by the three instrument kinds: `name` must be
/// well-formed and must not already name an instrument of another kind.
void check_name(std::string_view name, bool taken_elsewhere) {
  DBS_CHECK_MSG(valid_metric_name(name),
                "metric name '" << std::string(name)
                                << "' is not snake_case.dotted.namespace");
  DBS_CHECK_MSG(!taken_elsewhere, "metric name '" << std::string(name)
                                                  << "' already registered as a "
                                                     "different instrument kind");
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_name(name, gauges_.count(name) != 0 || histograms_.count(name) != 0);
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_name(name, counters_.count(name) != 0 || histograms_.count(name) != 0);
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  check_name(name, counters_.count(name) != 0 || gauges_.count(name) != 0);
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSample{name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(HistogramSample{name, histogram->bounds(),
                                              histogram->counts(), histogram->count(),
                                              histogram->sum()});
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  const MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"dbs-metrics-v1\",\n  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(c.name) +
           "\", \"value\": " + std::to_string(c.value) + "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(g.name) +
           "\", \"value\": " + json_number(g.value) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(h.name) +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) + ", \"buckets\": [";
    // Only occupied buckets are emitted: the default layout has 31 bounds,
    // nearly all empty for any one instrument.
    bool first = true;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      const std::string le =
          b < h.bounds.size() ? json_number(h.bounds[b]) : "\"inf\"";
      out += "{\"le\": " + le + ", \"count\": " + std::to_string(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[160];
  for (const CounterSample& c : snapshot.counters) {
    std::snprintf(buf, sizeof buf, "counter    %-40s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const GaugeSample& g : snapshot.gauges) {
    std::snprintf(buf, sizeof buf, "gauge      %-40s %.6g\n", g.name.c_str(), g.value);
    out += buf;
  }
  for (const HistogramSample& h : snapshot.histograms) {
    std::snprintf(buf, sizeof buf, "histogram  %-40s count=%llu sum=%.6g mean=%.6g\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
                  h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    out += buf;
  }
  if (out.empty()) out = "(no instruments registered)\n";
  return out;
}

bool write_json_file(const MetricsSnapshot& snapshot, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json(snapshot);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dbs::obs
