// Observability: thread-safe metrics registry (DESIGN.md §10).
//
// Three instrument kinds — monotonic counters, last-value gauges and
// fixed-bucket histograms — registered by dotted snake_case name
// ("core.cds.moves_evaluated") in a process-global registry. Instruments are
// created lazily on first use, live for the life of the process (references
// handed out stay valid forever) and are updated lock-free; only
// registration and snapshotting take the registry mutex. Hot paths never
// call the registry directly: they go through the DBS_OBS_* macros in
// obs/obs.h, which cache the instrument reference in a function-local static
// and compile to nothing when the DBS_OBS kill switch is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace dbs::obs {

/// Monotonic event counter. inc()/add() are lock-free and thread-safe.
class Counter {
 public:
  void inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  /// Adds `delta` occurrences (use one add per run, not one per inner-loop
  /// trip, to keep hot-path overhead at a single atomic op).
  void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (queue depth, chosen K, ...). set() is lock-free.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus-style cumulative-friendly layout:
/// bucket i counts observations ≤ bounds[i]; one extra overflow bucket counts
/// the rest. Bounds are fixed at registration; observe() is lock-free.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the last entry is the overflow bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// Default bounds: powers of two from 2^-10 to 2^20 — wide enough for both
  /// millisecond timings and integer sizes without per-site tuning.
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one counter.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time copy of one gauge.
struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// Point-in-time copy of one histogram.
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< per bucket; last entry = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Consistent-enough snapshot of every registered instrument, sorted by
/// name. Cheap when nothing is registered (the DBS_OBS=OFF case).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  std::size_t size() const { return counters.size() + gauges.size() + histograms.size(); }
};

/// True iff `name` is a valid metric name: two or more dot-separated
/// snake_case components, each starting with a lowercase letter
/// ("serve.epoch.repair_ms"). Enforced at registration and by dbs_lint's
/// obs-metric-names rule.
bool valid_metric_name(std::string_view name);

/// Name → instrument registry. Lookup/registration is mutex-guarded (the
/// compiler-checked capability contract below); the returned references are
/// stable for the life of the process, and the instruments themselves update
/// lock-free, so only registration and snapshotting ever contend.
class MetricsRegistry {
 public:
  /// The process-global registry the DBS_OBS_* macros record into.
  static MetricsRegistry& global();

  /// Returns the counter `name`, creating it on first use. Requires a valid
  /// metric name not already registered as a different kind.
  Counter& counter(std::string_view name);

  /// Returns the gauge `name`, creating it on first use.
  Gauge& gauge(std::string_view name);

  /// Returns the histogram `name` with Histogram::default_bounds().
  Histogram& histogram(std::string_view name);

  /// Returns the histogram `name`; `bounds` applies only on first creation
  /// (later calls must not pass conflicting bounds).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Copies every instrument's current value, sorted by name.
  MetricsSnapshot snapshot() const;

  /// Number of registered instruments (0 whenever DBS_OBS=OFF, since the
  /// macros are the only registration path in library code).
  std::size_t size() const;

  /// Zeroes every instrument's value but keeps registrations (per-run deltas
  /// in benches and tests).
  void reset();

 private:
  // Concurrency contract: the three name→instrument maps are guarded by
  // mutex_; the instruments the unique_ptrs point at are internally
  // lock-free (relaxed atomics) and are deliberately *not* lock-guarded —
  // handed-out references outlive any registry critical section.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DBS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DBS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DBS_GUARDED_BY(mutex_);
};

/// Renders a snapshot as pretty-printed JSON (schema "dbs-metrics-v1"), the
/// format perfsuite --metrics-out writes and tools/obs_dump reads.
std::string to_json(const MetricsSnapshot& snapshot);

/// Renders a snapshot as aligned human-readable text (one instrument/line).
std::string to_text(const MetricsSnapshot& snapshot);

/// Writes to_json() to `path`; returns false when the file cannot be opened.
bool write_json_file(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace dbs::obs
