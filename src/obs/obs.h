// Observability macro layer — the only way hot paths touch the metrics
// registry and tracer (DESIGN.md §10).
//
// Compile-time kill switch: building with -DDBS_OBS=OFF defines
// DBS_OBS_ENABLED=0 and every macro below expands to a no-op that leaves its
// arguments unevaluated (odr-used via sizeof, so kill-switched builds still
// type-check the call sites). With the switch on (the default), each macro
// resolves its instrument once per call site through a function-local static
// reference, so the steady-state cost is a single relaxed atomic op —
// verified against the 15% clock-normalized perf gate by `perfsuite`.
//
// Metric names must be snake_case.dotted.namespace ("core.cds.iterations");
// the registry DBS_CHECKs this at registration and tools/dbs_lint.py's
// obs-metric-names rule enforces it statically.
#pragma once

#ifndef DBS_OBS_ENABLED
#define DBS_OBS_ENABLED 1
#endif

#if DBS_OBS_ENABLED

#include "obs/metrics.h"
#include "obs/trace.h"

#define DBS_OBS_CONCAT_IMPL(a, b) a##b
#define DBS_OBS_CONCAT(a, b) DBS_OBS_CONCAT_IMPL(a, b)

/// Adds `delta` to the counter `name`. Prefer one add per run over one per
/// inner-loop trip: accumulate locally, then publish.
#define DBS_OBS_COUNTER_ADD(name, delta)                                     \
  do {                                                                       \
    static ::dbs::obs::Counter& dbs_obs_instrument =                         \
        ::dbs::obs::MetricsRegistry::global().counter(name);                 \
    dbs_obs_instrument.add(static_cast<std::uint64_t>(delta));               \
  } while (0)

/// Increments the counter `name` by one.
#define DBS_OBS_COUNTER_INC(name) DBS_OBS_COUNTER_ADD(name, 1)

/// Sets the gauge `name` to `value`.
#define DBS_OBS_GAUGE_SET(name, value)                                       \
  do {                                                                       \
    static ::dbs::obs::Gauge& dbs_obs_instrument =                           \
        ::dbs::obs::MetricsRegistry::global().gauge(name);                   \
    dbs_obs_instrument.set(static_cast<double>(value));                      \
  } while (0)

/// Records `value` into the fixed-bucket histogram `name`
/// (Histogram::default_bounds() layout).
#define DBS_OBS_HISTOGRAM_OBSERVE(name, value)                               \
  do {                                                                       \
    static ::dbs::obs::Histogram& dbs_obs_instrument =                       \
        ::dbs::obs::MetricsRegistry::global().histogram(name);               \
    dbs_obs_instrument.observe(static_cast<double>(value));                  \
  } while (0)

/// Opens a scoped span covering the rest of the enclosing block; records a
/// Chrome "X" event when Tracer::global() is enabled, else costs one atomic
/// load. `name` must be a string literal (stored by pointer until close).
#define DBS_OBS_SPAN(name) \
  ::dbs::obs::ScopedSpan DBS_OBS_CONCAT(dbs_obs_span_, __LINE__)(name)

#else  // DBS_OBS_ENABLED == 0: every macro is a no-op with unevaluated args.

#define DBS_OBS_COUNTER_ADD(name, delta) \
  do {                                   \
    (void)sizeof(name);                  \
    (void)sizeof(delta);                 \
  } while (0)
#define DBS_OBS_COUNTER_INC(name) \
  do {                            \
    (void)sizeof(name);           \
  } while (0)
#define DBS_OBS_GAUGE_SET(name, value) \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(value);               \
  } while (0)
#define DBS_OBS_HISTOGRAM_OBSERVE(name, value) \
  do {                                         \
    (void)sizeof(name);                        \
    (void)sizeof(value);                       \
  } while (0)
#define DBS_OBS_SPAN(name) static_cast<void>(sizeof(name))

#endif  // DBS_OBS_ENABLED
