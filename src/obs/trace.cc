#include "obs/trace.h"

#include <cstdio>
#include <functional>
#include <thread>

namespace dbs::obs {

namespace {

/// Stable small id for the calling thread; Chrome only needs distinctness.
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record_complete(std::string_view name, double ts_us, double dur_us) {
  if (!enabled()) return;
  const std::uint32_t tid = this_thread_tid();
  const MutexLock lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{std::string(name), ts_us, dur_us, tid, 'X'});
}

void Tracer::instant(std::string_view name) {
  if (!enabled()) return;
  const double ts = now_us();
  const std::uint32_t tid = this_thread_tid();
  const MutexLock lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{std::string(name), ts, 0.0, tid, 'i'});
}

std::vector<TraceEvent> Tracer::events() const {
  const MutexLock lock(mutex_);
  return events_;
}

void Tracer::clear() {
  const MutexLock lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_json() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out = "{\"traceEvents\": [";
  char buf[128];
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"" + json_escape(e.name) + "\", ";
    if (e.ph == 'X') {
      std::snprintf(buf, sizeof buf,
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %u}",
                    e.ts_us, e.dur_us, e.tid);
    } else {
      std::snprintf(buf, sizeof buf,
                    "\"ph\": \"%c\", \"ts\": %.3f, \"s\": \"t\", "
                    "\"pid\": 1, \"tid\": %u}",
                    e.ph, e.ts_us, e.tid);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dbs::obs
