// Observability: scoped-span tracer emitting Chrome trace-event JSON
// (DESIGN.md §10). The output loads directly in chrome://tracing or
// Perfetto: {"traceEvents": [{"name", "ph", "ts", "dur", "pid", "tid"}, ...]}
// with "X" (complete) events for spans and "i" (instant) events for marks.
//
// Tracing is off by default: a disabled ScopedSpan costs one relaxed atomic
// load and never touches the clock, so spans can sit on hot paths
// permanently. Enable with Tracer::global().enable() (perfsuite does this
// when --trace-out is given), run the workload, then write_json_file().
// Timestamps come from the same steady clock as common/stopwatch.h,
// expressed in microseconds since the tracer's construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"

namespace dbs::obs {

/// One recorded trace event (Chrome trace-event fields).
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start timestamp, µs since tracer construction
  double dur_us = 0.0;  ///< duration (complete events only)
  std::uint32_t tid = 0;
  char ph = 'X';  ///< 'X' complete span, 'i' instant mark
};

/// Append-only, mutex-guarded event sink with a hard cap (events past the
/// cap are counted in dropped() instead of growing the buffer unboundedly).
class Tracer {
 public:
  /// The process-global tracer DBS_OBS_SPAN records into.
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer was constructed (steady clock).
  double now_us() const { return watch_.seconds() * 1e6; }

  /// Records a completed span ('X'). No-op while disabled.
  void record_complete(std::string_view name, double ts_us, double dur_us);

  /// Records an instant event ('i') at the current time. No-op while disabled.
  void instant(std::string_view name);

  /// Copy of everything recorded so far.
  std::vector<TraceEvent> events() const;

  /// Events rejected because the buffer cap was reached.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Discards all recorded events and the dropped count.
  void clear();

  /// Renders the Chrome trace-event JSON document.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false when the file cannot be opened.
  bool write_json_file(const std::string& path) const;

 private:
  static constexpr std::size_t kMaxEvents = 1u << 20;

  // Concurrency contract: enabled_/dropped_ are lock-free relaxed atomics
  // (read on every span open, written rarely); watch_ is immutable after
  // construction; only the event buffer itself is mutex-guarded.
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  Stopwatch watch_;
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ DBS_GUARDED_BY(mutex_);
};

/// RAII span: stamps the start time on construction and records a complete
/// event into Tracer::global() on destruction. When tracing is disabled at
/// construction the destructor does nothing, so the steady-state cost of an
/// untraced span is one atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), active_(Tracer::global().enabled()) {
    if (active_) start_us_ = Tracer::global().now_us();
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer& tracer = Tracer::global();
      tracer.record_complete(name_, start_us_, tracer.now_us() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  double start_us_ = 0.0;
};

}  // namespace dbs::obs
