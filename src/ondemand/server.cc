#include "ondemand/server.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "sim/event_queue.h"

namespace dbs {

std::string_view ondemand_policy_name(OnDemandPolicy policy) {
  switch (policy) {
    case OnDemandPolicy::kFcfs: return "fcfs";
    case OnDemandPolicy::kMrf: return "mrf";
    case OnDemandPolicy::kLwf: return "lwf";
    case OnDemandPolicy::kRxW: return "rxw";
    case OnDemandPolicy::kLtsf: return "ltsf";
  }
  return "unknown";
}

const std::vector<OnDemandPolicy>& all_ondemand_policies() {
  static const std::vector<OnDemandPolicy> kAll = {
      OnDemandPolicy::kFcfs, OnDemandPolicy::kMrf, OnDemandPolicy::kLwf,
      OnDemandPolicy::kRxW, OnDemandPolicy::kLtsf};
  return kAll;
}

namespace {

/// Pending-request bookkeeping for one item.
struct PendingItem {
  std::vector<double> arrivals;  // of requests not yet boarded
  double oldest() const { return arrivals.front(); }
  bool empty() const { return arrivals.empty(); }
};

/// Policy score: the server broadcasts the pending item with the *largest*
/// score; ties break toward the smaller item id for determinism.
double score(OnDemandPolicy policy, const PendingItem& pending, double now,
             double service_time) {
  const auto count = static_cast<double>(pending.arrivals.size());
  switch (policy) {
    case OnDemandPolicy::kFcfs:
      return now - pending.oldest();  // oldest request first
    case OnDemandPolicy::kMrf:
      return count;
    case OnDemandPolicy::kLwf: {
      double total = 0.0;
      for (double a : pending.arrivals) total += now - a;
      return total;
    }
    case OnDemandPolicy::kRxW:
      return count * (now - pending.oldest());
    case OnDemandPolicy::kLtsf: {
      double total = 0.0;
      for (double a : pending.arrivals) {
        total += ((now - a) + service_time) / service_time;
      }
      return total;
    }
  }
  DBS_CHECK_MSG(false, "unknown policy");
  return 0.0;
}

}  // namespace

OnDemandReport run_ondemand(const Database& db, const std::vector<Request>& trace,
                            const OnDemandConfig& config) {
  DBS_CHECK(config.channels >= 1);
  DBS_CHECK(config.bandwidth > 0.0);

  OnDemandReport report;
  if (trace.empty()) return report;

  EventQueue queue;
  std::vector<PendingItem> pending(db.size());
  std::size_t pending_total = 0;
  std::vector<double> waits;
  std::vector<double> stretches;
  waits.reserve(trace.size());
  stretches.reserve(trace.size());
  std::size_t idle_channels = config.channels;
  // Items currently on air (so two channels never broadcast the same item).
  std::vector<bool> on_air(db.size(), false);

  auto service_time = [&](ItemId id) { return db.item(id).size / config.bandwidth; };

  std::optional<ItemId> pick_next = std::nullopt;

  auto choose = [&]() -> std::optional<ItemId> {
    std::optional<ItemId> best;
    double best_score = 0.0;
    for (ItemId id = 0; id < db.size(); ++id) {
      if (pending[id].empty() || on_air[id]) continue;
      const double s = score(config.policy, pending[id], queue.now(), service_time(id));
      if (!best.has_value() || s > best_score) {
        best = id;
        best_score = s;
      }
    }
    return best;
  };

  // Forward declaration so completion handlers can start new broadcasts.
  std::function<void(ItemId)> start_broadcast = [&](ItemId id) {
    DBS_CHECK(idle_channels > 0);
    --idle_channels;
    on_air[id] = true;
    ++report.broadcasts;
    // Board everyone pending now; later arrivals wait for a future broadcast.
    std::vector<double> boarded;
    boarded.swap(pending[id].arrivals);
    pending_total -= boarded.size();
    const double done = queue.now() + service_time(id);
    queue.schedule(done, [&, id, boarded = std::move(boarded), done] {
      const double service = service_time(id);
      for (double arrival : boarded) {
        const double wait = done - arrival;
        waits.push_back(wait);
        stretches.push_back(wait / service);
        report.makespan = std::max(report.makespan, done);
      }
      on_air[id] = false;
      ++idle_channels;
      while (idle_channels > 0 && (pick_next = choose()).has_value()) {
        start_broadcast(*pick_next);
      }
    });
  };

  for (const Request& r : trace) {
    DBS_CHECK(r.item < db.size());
    queue.schedule(r.time, [&, r] {
      pending[r.item].arrivals.push_back(r.time);
      ++pending_total;
      if (idle_channels > 0 && !on_air[r.item]) {
        // A channel is free: the policy decides (it may pick another item,
        // but with a free channel the newly pending item is always eligible).
        const auto next = choose();
        if (next.has_value()) start_broadcast(*next);
      }
    });
  }

  queue.run_all();
  DBS_CHECK_MSG(pending_total == 0, pending_total << " requests never served");

  report.requests_served = waits.size();
  report.waiting = summarize(waits);
  report.stretch = summarize(stretches);
  return report;
}

}  // namespace dbs
