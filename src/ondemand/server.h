// On-demand (pull-based) broadcast scheduling — the environment of the
// paper's reference [2] (Acharya & Muthukrishnan, MOBICOM'98), which the
// paper's footnote 1 contrasts with its push-based setting.
//
// Clients send explicit requests; whenever a channel falls idle the server
// picks which pending item to broadcast next according to a scheduling
// policy. All requests pending at transmission *start* are satisfied at
// transmission end; requests arriving mid-transmission wait for a later
// broadcast of the item.
//
// Policies (the classic line-up):
//   FCFS — item whose oldest pending request is oldest;
//   MRF  — most pending requests;
//   LWF  — largest total accumulated waiting time;
//   RxW  — (pending requests) × (oldest wait), the classic balanced rule;
//   LTSF — largest total current stretch; stretch = (wait + service)/service,
//          the size-aware metric reference [2] argues for in heterogeneous
//          (diverse-size) workloads.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "model/database.h"
#include "workload/trace.h"

namespace dbs {

/// On-demand scheduling policy.
enum class OnDemandPolicy {
  kFcfs,
  kMrf,
  kLwf,
  kRxW,
  kLtsf,
};

/// Stable display name ("fcfs", "mrf", ...).
std::string_view ondemand_policy_name(OnDemandPolicy policy);

/// All policies, in presentation order.
const std::vector<OnDemandPolicy>& all_ondemand_policies();

/// Server configuration.
struct OnDemandConfig {
  OnDemandPolicy policy = OnDemandPolicy::kRxW;
  ChannelId channels = 1;     ///< parallel broadcast channels
  double bandwidth = 10.0;    ///< size units per second per channel
};

/// Aggregate results of one on-demand run.
struct OnDemandReport {
  std::size_t requests_served = 0;
  std::size_t broadcasts = 0;      ///< item transmissions performed
  Summary waiting;                 ///< response time distribution
  Summary stretch;                 ///< (wait)/(service time) distribution,
                                   ///< where wait already includes download
  double makespan = 0.0;           ///< completion time of the last request

  double mean_wait() const { return waiting.mean; }
  double mean_stretch() const { return stretch.mean; }
};

/// Runs the on-demand server over the request trace (event-driven).
/// The trace must be time-sorted (generate_trace guarantees this).
OnDemandReport run_ondemand(const Database& db, const std::vector<Request>& trace,
                            const OnDemandConfig& config);

}  // namespace dbs
