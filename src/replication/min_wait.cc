#include "replication/min_wait.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace dbs {
namespace {

// 16-node Gauss–Legendre rule on [-1, 1]: exact for polynomials of degree
// ≤ 31, far above any realistic replication degree.
constexpr std::array<double, 16> kNodes = {
    -0.9894009349916499, -0.9445750230732326, -0.8656312023878318,
    -0.7554044083550030, -0.6178762444026438, -0.4580167776572274,
    -0.2816035507792589, -0.0950125098376374, 0.0950125098376374,
    0.2816035507792589,  0.4580167776572274,  0.6178762444026438,
    0.7554044083550030,  0.8656312023878318,  0.9445750230732326,
    0.9894009349916499};
constexpr std::array<double, 16> kWeights = {
    0.0271524594117541, 0.0622535239386479, 0.0951585116824928,
    0.1246289712555339, 0.1495959888165767, 0.1691565193950025,
    0.1826034150449236, 0.1894506104550685, 0.1894506104550685,
    0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
    0.1246289712555339, 0.0951585116824928, 0.0622535239386479,
    0.0271524594117541};

}  // namespace

double expected_min_uniform(std::vector<double> cycles) {
  DBS_CHECK_MSG(!cycles.empty(), "need at least one channel");
  for (double c : cycles) DBS_CHECK_MSG(c > 0.0, "cycle times must be positive");
  std::sort(cycles.begin(), cycles.end());

  // Survival function S(t) = Π_c (1 − t/C_c) for t < C_min, truncating factors
  // as they hit zero; integrate piecewise over [0, C_0], [C_0, C_1], ... —
  // but S(t) = 0 for t ≥ C_0 (the smallest cycle forces the product to 0), so
  // only [0, C_0] contributes.
  const double upper = cycles.front();
  auto survival = [&](double t) {
    double s = 1.0;
    for (double c : cycles) s *= (1.0 - t / c);
    return s;
  };

  const double half = upper / 2.0;
  double integral = 0.0;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    integral += kWeights[i] * survival(half + half * kNodes[i]);
  }
  return integral * half;
}

}  // namespace dbs
