// Expected minimum waiting time across replicated broadcast channels.
//
// A client wanting an item replicated on channels S tunes to whichever copy
// completes first. On channel c (cycle time C_c) the time until the item's
// next transmission *start* is uniform on [0, C_c) for a uniformly random
// tune-in, and copies on different channels have independent phases. The
// item's minimum probe time is therefore min_c V_c with V_c ~ U[0, C_c)
// independent, whose expectation is
//     E[min V] = ∫₀^∞ Π_c max(0, 1 − t/C_c) dt.
// The integrand vanishes beyond the smallest cycle time and is a single
// polynomial of degree |S| on [0, C_min], so a 16-node Gauss–Legendre rule
// (exact to degree 31) evaluates the integral exactly up to rounding — no
// sampling error.
#pragma once

#include <vector>

namespace dbs {

/// E[min_c V_c] for independent V_c ~ U[0, cycles[c]). Every cycle must be
/// positive. With one channel this is cycles[0]/2 — the paper's probe time.
double expected_min_uniform(std::vector<double> cycles);

}  // namespace dbs
