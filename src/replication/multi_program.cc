#include "replication/multi_program.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "replication/min_wait.h"

namespace dbs {

MultiProgram::MultiProgram(const Database& db, const Placement& placement,
                           double bandwidth)
    : db_(&db), bandwidth_(bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  DBS_CHECK_MSG(!placement.empty(), "need at least one channel");

  const ChannelId k = static_cast<ChannelId>(placement.size());
  cycle_.assign(k, 0.0);
  item_copies_.assign(db.size(), {});
  item_offsets_.assign(db.size(), {});

  for (ChannelId c = 0; c < k; ++c) {
    std::vector<ItemId> ids = placement[c];
    std::sort(ids.begin(), ids.end());
    DBS_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                  "channel " << c << " lists an item twice");
    double offset = 0.0;
    for (ItemId id : ids) {
      DBS_CHECK_MSG(id < db.size(), "unknown item " << id);
      item_copies_[id].push_back(c);
      item_offsets_[id].push_back(offset);
      offset += db.item(id).size / bandwidth_;
    }
    cycle_[c] = offset;
  }
  for (ItemId id = 0; id < db.size(); ++id) {
    DBS_CHECK_MSG(!item_copies_[id].empty(),
                  "item " << id << " is not placed on any channel");
  }
}

double MultiProgram::cycle_time(ChannelId c) const {
  DBS_CHECK(c < cycle_.size());
  return cycle_[c];
}

const std::vector<ChannelId>& MultiProgram::copies(ItemId item) const {
  DBS_CHECK(item < item_copies_.size());
  return item_copies_[item];
}

double MultiProgram::delivery_time(ItemId item, double t) const {
  DBS_CHECK(item < item_copies_.size());
  DBS_CHECK(t >= 0.0);
  const double duration = db_->item(item).size / bandwidth_;
  double best = 0.0;
  bool have = false;
  for (std::size_t i = 0; i < item_copies_[item].size(); ++i) {
    const double cycle = cycle_[item_copies_[item][i]];
    const double offset = item_offsets_[item][i];
    const double m = std::ceil((t - offset) / cycle);
    const double start = offset + std::max(0.0, m) * cycle;
    const double done = start + duration;
    if (!have || done < best) {
      have = true;
      best = done;
    }
  }
  return best;
}

double MultiProgram::expected_item_wait(ItemId item) const {
  DBS_CHECK(item < item_copies_.size());
  std::vector<double> cycles;
  cycles.reserve(item_copies_[item].size());
  for (ChannelId c : item_copies_[item]) cycles.push_back(cycle_[c]);
  return db_->item(item).size / bandwidth_ + expected_min_uniform(std::move(cycles));
}

double MultiProgram::expected_wait() const {
  double total = 0.0;
  for (ItemId id = 0; id < db_->size(); ++id) {
    total += db_->item(id).freq * expected_item_wait(id);
  }
  return total;
}

Summary MultiProgram::replay(const std::vector<Request>& trace) const {
  std::vector<double> waits;
  waits.reserve(trace.size());
  for (const Request& r : trace) {
    waits.push_back(delivery_time(r.item, r.time) - r.time);
  }
  return summarize(waits);
}

Placement placement_from_assignment(const std::vector<ChannelId>& assignment,
                                    ChannelId channels) {
  DBS_CHECK(channels >= 1);
  Placement placement(channels);
  for (ItemId id = 0; id < assignment.size(); ++id) {
    DBS_CHECK(assignment[id] < channels);
    placement[assignment[id]].push_back(id);
  }
  return placement;
}

}  // namespace dbs
