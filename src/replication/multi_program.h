// Broadcast programs with data replication: an item may be carried by
// several channels simultaneously (the replication environment of the
// paper's reference [8], Huang & Chen SAC'03). Clients tune to whichever
// copy completes first.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "model/database.h"
#include "workload/trace.h"

namespace dbs {

/// Channel membership with replication: placement[c] lists the items carried
/// by channel c. Every item must appear on at least one channel; items may
/// appear on several, and each extra copy lengthens that channel's cycle.
using Placement = std::vector<std::vector<ItemId>>;

/// A physical multi-channel program with possibly replicated items.
class MultiProgram {
 public:
  /// Builds per-channel cyclic schedules (ascending item id within a
  /// channel). Requires bandwidth > 0, every channel list free of
  /// duplicates, and every item placed at least once.
  MultiProgram(const Database& db, const Placement& placement, double bandwidth);

  ChannelId channels() const { return static_cast<ChannelId>(cycle_.size()); }
  double bandwidth() const { return bandwidth_; }

  /// Broadcast cycle time of channel c (= aggregate size incl. copies / b).
  double cycle_time(ChannelId c) const;

  /// Channels carrying `item`.
  const std::vector<ChannelId>& copies(ItemId item) const;

  /// Completion time of the earliest copy a client tuning in at `t` can
  /// receive (same mid-transmission rule as BroadcastProgram, per channel).
  double delivery_time(ItemId item, double t) const;

  /// Analytic expected waiting time of `item` over a uniformly random
  /// tune-in: z/b + E[min over copies of time-to-next-start].
  double expected_item_wait(ItemId item) const;

  /// Analytic program waiting time: Σ_x f_x · expected_item_wait(x). With no
  /// replication this reduces exactly to Eq. (2).
  double expected_wait() const;

  /// Closed-form trace replay (the broadcast side is deterministic, so this
  /// equals a discrete-event run). Returns the distribution of waits.
  Summary replay(const std::vector<Request>& trace) const;

 private:
  const Database* db_;
  double bandwidth_;
  std::vector<double> cycle_;                      // per channel
  std::vector<std::vector<ChannelId>> item_copies_; // per item
  // Per (item, copy): the transmission start offset within the channel cycle.
  std::vector<std::vector<double>> item_offsets_;
};

/// Converts a plain partition (assignment vector) into a Placement.
Placement placement_from_assignment(const std::vector<ChannelId>& assignment,
                                    ChannelId channels);

}  // namespace dbs
