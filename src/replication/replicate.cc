#include "replication/replicate.h"

#include <algorithm>

#include "common/check.h"
#include "replication/min_wait.h"

namespace dbs {
namespace {

/// Incremental analytic evaluator over a mutable placement. Keeps per-channel
/// cycle times and per-item copy sets; recomputes only what a candidate copy
/// touches.
class Evaluator {
 public:
  Evaluator(const Database& db, const Allocation& alloc, double bandwidth)
      : db_(db), bandwidth_(bandwidth), cycle_(alloc.channels(), 0.0),
        copies_(db.size()), members_(alloc.channels()) {
    for (ItemId id = 0; id < db.size(); ++id) {
      const ChannelId c = alloc.channel_of(id);
      copies_[id].push_back(c);
      members_[c].push_back(id);
      cycle_[c] += db.item(id).size / bandwidth_;
    }
  }

  double item_wait(ItemId id) const {
    std::vector<double> cycles;
    cycles.reserve(copies_[id].size());
    for (ChannelId c : copies_[id]) cycles.push_back(cycle_[c]);
    return db_.item(id).size / bandwidth_ + expected_min_uniform(std::move(cycles));
  }

  double total_wait() const {
    double w = 0.0;
    for (ItemId id = 0; id < db_.size(); ++id) w += db_.item(id).freq * item_wait(id);
    return w;
  }

  bool has_copy(ItemId id, ChannelId c) const {
    return std::find(copies_[id].begin(), copies_[id].end(), c) != copies_[id].end();
  }

  std::size_t copy_count(ItemId id) const { return copies_[id].size(); }

  /// Exact change in total wait if `id` gains a copy on channel `c`
  /// (negative = improvement). Only items on `c` plus `id` are affected.
  double delta_if_copied(ItemId id, ChannelId c) const {
    const double grown = cycle_[c] + db_.item(id).size / bandwidth_;
    double delta = 0.0;
    // Items already on channel c: their copy on c slows down.
    for (ItemId member : members_[c]) {
      if (member == id) continue;
      delta += db_.item(member).freq *
               (wait_with_cycle(member, c, grown) - item_wait(member));
    }
    // The replicated item itself: gains the new (grown) channel as an option.
    std::vector<double> cycles;
    cycles.reserve(copies_[id].size() + 1);
    for (ChannelId own : copies_[id]) cycles.push_back(cycle_[own]);
    cycles.push_back(grown);
    const double new_wait =
        db_.item(id).size / bandwidth_ + expected_min_uniform(std::move(cycles));
    delta += db_.item(id).freq * (new_wait - item_wait(id));
    return delta;
  }

  void apply_copy(ItemId id, ChannelId c) {
    copies_[id].push_back(c);
    members_[c].push_back(id);
    cycle_[c] += db_.item(id).size / bandwidth_;
  }

  Placement placement() const {
    Placement p(members_.size());
    for (ChannelId c = 0; c < members_.size(); ++c) {
      p[c] = members_[c];
      std::sort(p[c].begin(), p[c].end());
    }
    return p;
  }

 private:
  /// item_wait(member) with channel `c`'s cycle replaced by `cycle_override`.
  double wait_with_cycle(ItemId member, ChannelId c, double cycle_override) const {
    std::vector<double> cycles;
    cycles.reserve(copies_[member].size());
    for (ChannelId own : copies_[member]) {
      cycles.push_back(own == c ? cycle_override : cycle_[own]);
    }
    return db_.item(member).size / bandwidth_ +
           expected_min_uniform(std::move(cycles));
  }

  const Database& db_;
  double bandwidth_;
  std::vector<double> cycle_;
  std::vector<std::vector<ChannelId>> copies_;
  std::vector<std::vector<ItemId>> members_;
};

}  // namespace

ReplicationResult replicate_greedy(const Allocation& alloc, double bandwidth,
                                   const ReplicationOptions& options) {
  DBS_CHECK(bandwidth > 0.0);
  DBS_CHECK(options.max_copies_per_item >= 1);
  const Database& db = alloc.database();
  Evaluator eval(db, alloc, bandwidth);

  ReplicationResult result;
  result.base_wait = eval.total_wait();

  while (result.copies_added < options.max_total_copies) {
    ItemId best_item = 0;
    ChannelId best_channel = 0;
    double best_delta = 0.0;
    bool have = false;
    for (ItemId id = 0; id < db.size(); ++id) {
      if (eval.copy_count(id) >= options.max_copies_per_item) continue;
      for (ChannelId c = 0; c < alloc.channels(); ++c) {
        if (eval.has_copy(id, c)) continue;
        const double delta = eval.delta_if_copied(id, c);
        if (!have || delta < best_delta) {
          have = true;
          best_delta = delta;
          best_item = id;
          best_channel = c;
        }
      }
    }
    if (!have || best_delta > -options.min_gain) break;
    eval.apply_copy(best_item, best_channel);
    ++result.copies_added;
  }

  result.placement = eval.placement();
  result.replicated_wait = eval.total_wait();
  return result;
}

}  // namespace dbs
