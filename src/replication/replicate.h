// Greedy replication on top of a partition-based allocation: repeatedly add
// the single (item, channel) copy that most reduces the analytic expected
// waiting time, until no copy helps or the copy budget is exhausted.
//
// Adding a copy has two opposing effects the evaluator accounts for exactly:
// the replicated item's probe time drops (minimum over more channels), while
// every item sharing the target channel waits longer (its cycle grows).
#pragma once

#include <cstddef>

#include "model/allocation.h"
#include "replication/multi_program.h"

namespace dbs {

/// Replication knobs.
struct ReplicationOptions {
  std::size_t max_copies_per_item = 2;  ///< including the original placement
  std::size_t max_total_copies = 64;    ///< extra copies added overall
  double min_gain = 1e-9;               ///< required wait reduction per copy
};

/// Result of the greedy replication pass.
struct ReplicationResult {
  Placement placement;
  double base_wait = 0.0;       ///< analytic wait of the unreplicated program
  double replicated_wait = 0.0; ///< analytic wait after replication
  std::size_t copies_added = 0;
};

/// Runs greedy replication starting from the partition `alloc`. The analytic
/// model treats copy phases as independent uniform offsets — exact for
/// incommensurate cycle lengths and an approximation when two channels have
/// (nearly) identical cycles.
ReplicationResult replicate_greedy(const Allocation& alloc, double bandwidth,
                                   const ReplicationOptions& options = {});

}  // namespace dbs
