#include "serve/server_loop.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/portfolio.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "model/cost.h"
#include "obs/obs.h"

namespace dbs {

ProgramSnapshot::ProgramSnapshot(Database database, ChannelId channels,
                                 std::vector<ChannelId> assignment,
                                 std::size_t version, double bandwidth)
    : db(std::move(database)),
      alloc(db, channels, std::move(assignment)),
      version(version),
      epoch(version),
      cost(alloc.cost()),
      waiting_time(program_waiting_time(alloc, bandwidth)) {}

BroadcastServerLoop::BroadcastServerLoop(std::vector<double> item_sizes,
                                         const ServerLoopConfig& config)
    : config_(config), sizes_(std::move(item_sizes)),
      tracker_(sizes_.size(), config.tracker_decay, config.tracker_alpha) {
  DBS_CHECK(config.bandwidth > 0.0);
  DBS_CHECK(config.rebuild_threshold >= 0.0);
  DBS_CHECK(config.escalate_threshold >= 0.0);
  DBS_CHECK(config.escalation_deadline_ms >= 0.0);
  DBS_CHECK_MSG(config.reference_decay >= 0.0 && config.reference_decay <= 1.0,
                "reference_decay must lie in [0, 1]");
  DBS_CHECK_MSG(config.channels <= sizes_.size(),
                "cannot fill more channels than items");
  const MutexLock lock(mutex_);
  Database initial = rebuild_database();
  DrpCdsResult planned = run_drp_cds(initial, config_.channels);
  reference_cost_ = planned.final_cost;
  publish(std::make_shared<const ProgramSnapshot>(
      std::move(initial), config_.channels, planned.allocation.assignment(),
      epoch_, config_.bandwidth));
}

void BroadcastServerLoop::publish(std::shared_ptr<const ProgramSnapshot> next) {
  const MutexLock lock(publish_mutex_);
  published_ = std::move(next);
}

Database BroadcastServerLoop::rebuild_database() const {
  return Database(sizes_, tracker_.frequencies());
}

EpochReport BroadcastServerLoop::observe_window(const std::vector<Request>& window) {
  DBS_OBS_SPAN("serve.epoch");
  const MutexLock lock(mutex_);
  Database fresh = [&] {
    DBS_OBS_SPAN("serve.epoch.estimate");
    tracker_.observe(window);
    return rebuild_database();
  }();
  const std::shared_ptr<const ProgramSnapshot> current = snapshot();

  // Repair: carry the on-air assignment into the new popularity estimate and
  // let CDS fix it up from where it stands — the steady-state cheap path.
  Stopwatch repair_watch;
  RepairResult repaired = [&] {
    DBS_OBS_SPAN("serve.epoch.repair");
    return repair_assignment(fresh, config_.channels,
                             current->alloc.assignment());
  }();
  const double repair_ms = repair_watch.millis();

  EpochReport report;
  report.epoch = ++epoch_;
  report.requests = window.size();
  report.repaired_cost = repaired.final_cost;
  report.repair_moves = repaired.cds.iterations;
  report.repair_ms = repair_ms;
  report.estimator_staleness = tracker_.effective_windows();
  report.reference_cost = reference_cost_;
  report.cost_excess = repaired.final_cost / reference_cost_ - 1.0;

  // Trigger evaluation (DESIGN.md §12). The stall band opens at half the
  // regression margin: a zero-move repair with the cost parked there is
  // wedged in a local optimum it cannot leave, while near-reference
  // zero-move epochs are plain steady state and must never escalate.
  const bool elevated = report.cost_excess >= config_.escalate_threshold;
  const bool in_stall_band =
      report.cost_excess >= 0.5 * config_.escalate_threshold;
  if (in_stall_band && repaired.cds.iterations == 0) {
    ++stall_streak_;
  } else {
    stall_streak_ = 0;
  }
  report.stall_streak = stall_streak_;

  if (!config_.never_escalate) {
    if (elevated) {
      report.escalation_reason = EscalationReason::kCostRegression;
    } else if (config_.stall_epochs > 0 && stall_streak_ >= config_.stall_epochs) {
      report.escalation_reason = EscalationReason::kRepairStalled;
    }
  }
  report.escalated = report.escalation_reason != EscalationReason::kNone;

  double chosen_cost = repaired.final_cost;
  if (report.escalated) {
    Stopwatch rebuild_watch;
    // The escalation path (DESIGN.md §13): with a configured budget the
    // rebuild is the portfolio race — never worse than DRP-CDS alone and
    // bounded in wall time — otherwise the classic unbudgeted DRP-CDS.
    auto [rebuilt_allocation, rebuilt_cost] = [&]() -> std::pair<Allocation, double> {
      DBS_OBS_SPAN("serve.epoch.rebuild");
      if (config_.escalation_deadline_ms > 0.0) {
        PortfolioResult raced =
            plan(fresh, config_.channels, config_.escalation_deadline_ms);
        return {std::move(raced.allocation), raced.cost};
      }
      DrpCdsResult rebuilt = run_drp_cds(fresh, config_.channels);
      return {std::move(rebuilt.allocation), rebuilt.final_cost};
    }();
    report.rebuild_ms = rebuild_watch.millis();
    report.rebuilt_cost = rebuilt_cost;
    report.adopted_rebuild =
        rebuilt_cost < repaired.final_cost * (1.0 - config_.rebuild_threshold);
    if (report.adopted_rebuild) {
      repaired.allocation = std::move(rebuilt_allocation);
      chosen_cost = rebuilt_cost;
    }
    // Whether adopted or not, the escalation measured the truly achievable
    // cost on this estimate: resetting the reference to it stops the trigger
    // from re-firing every epoch after drift genuinely raised the optimum.
    reference_cost_ = std::min(repaired.final_cost, rebuilt_cost);
    stall_streak_ = 0;
  } else if (chosen_cost < reference_cost_) {
    reference_cost_ = chosen_cost;  // new best-known
  } else {
    // Decayed best-known reference: relax toward the observed cost so slow
    // genuine drift stops registering as regression eventually.
    reference_cost_ = (1.0 - config_.reference_decay) * reference_cost_ +
                      config_.reference_decay * chosen_cost;
  }

  DBS_OBS_COUNTER_INC("serve.epochs");
  DBS_OBS_COUNTER_ADD("serve.requests_observed", window.size());
  DBS_OBS_COUNTER_ADD("serve.repair_moves", report.repair_moves);
  if (report.escalated) {
    DBS_OBS_COUNTER_INC("serve.escalations");
    if (report.escalation_reason == EscalationReason::kCostRegression) {
      DBS_OBS_COUNTER_INC("serve.escalation.cost_regression");
    } else {
      DBS_OBS_COUNTER_INC("serve.escalation.repair_stalled");
    }
    DBS_OBS_HISTOGRAM_OBSERVE("serve.rebuild_ms", report.rebuild_ms);
  }
  if (report.adopted_rebuild) DBS_OBS_COUNTER_INC("serve.rebuild_adoptions");
  DBS_OBS_HISTOGRAM_OBSERVE("serve.repair_ms", repair_ms);
  DBS_OBS_GAUGE_SET("serve.reference_cost", reference_cost_);
  DBS_OBS_GAUGE_SET("serve.cost_excess", report.cost_excess);
  DBS_OBS_GAUGE_SET("serve.estimator.effective_windows",
                    report.estimator_staleness);

  // Publish the chosen program as a fresh immutable snapshot (RCU hand-off):
  // the snapshot owns its own Database copy, so readers holding the old
  // version keep a consistent db+alloc pair while new readers see this one.
  auto next = std::make_shared<const ProgramSnapshot>(
      std::move(fresh), config_.channels, repaired.allocation.assignment(),
      epoch_, config_.bandwidth);
  report.version = next->version;
  report.waiting_time = next->waiting_time;
  publish(std::move(next));
  report.metrics = obs::MetricsRegistry::global().snapshot();
  return report;
}

}  // namespace dbs
