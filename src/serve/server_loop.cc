#include "serve/server_loop.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "model/cost.h"
#include "obs/obs.h"

namespace dbs {

ProgramSnapshot::ProgramSnapshot(Database database, ChannelId channels,
                                 std::vector<ChannelId> assignment,
                                 std::size_t epoch, double bandwidth)
    : db(std::move(database)),
      alloc(db, channels, std::move(assignment)),
      epoch(epoch),
      waiting_time(program_waiting_time(alloc, bandwidth)) {}

BroadcastServerLoop::BroadcastServerLoop(std::vector<double> item_sizes,
                                         const ServerLoopConfig& config)
    : config_(config), sizes_(std::move(item_sizes)),
      tracker_(sizes_.size(), config.tracker_gain, config.tracker_alpha) {
  DBS_CHECK(config.bandwidth > 0.0);
  DBS_CHECK(config.rebuild_threshold >= 0.0);
  DBS_CHECK_MSG(config.channels <= sizes_.size(),
                "cannot fill more channels than items");
  const MutexLock lock(mutex_);
  Database initial = rebuild_database();
  DrpCdsResult planned = run_drp_cds(initial, config_.channels);
  published_.store(std::make_shared<const ProgramSnapshot>(
                       std::move(initial), config_.channels,
                       planned.allocation.assignment(), epoch_,
                       config_.bandwidth),
                   std::memory_order_release);
}

Database BroadcastServerLoop::rebuild_database() const {
  return Database(sizes_, tracker_.frequencies());
}

EpochReport BroadcastServerLoop::observe_window(const std::vector<Request>& window) {
  DBS_OBS_SPAN("serve.epoch");
  const MutexLock lock(mutex_);
  tracker_.observe(window);
  Database fresh = rebuild_database();
  const std::shared_ptr<const ProgramSnapshot> current = snapshot();

  // Repair: carry the on-air assignment into the new popularity estimate and
  // let CDS fix it up.
  Allocation repaired(fresh, config_.channels, current->alloc.assignment());
  Stopwatch repair_watch;
  CdsStats repair_stats;
  {
    DBS_OBS_SPAN("serve.epoch.repair");
    repair_stats = run_cds(repaired);
  }
  const double repair_ms = repair_watch.millis();

  // Reference rebuild from scratch.
  Stopwatch rebuild_watch;
  DrpCdsResult rebuilt = [&] {
    DBS_OBS_SPAN("serve.epoch.rebuild");
    return run_drp_cds(fresh, config_.channels);
  }();
  const double rebuild_ms = rebuild_watch.millis();

  EpochReport report;
  report.epoch = ++epoch_;
  report.requests = window.size();
  report.repaired_cost = repaired.cost();
  report.rebuilt_cost = rebuilt.final_cost;
  report.repair_moves = repair_stats.iterations;
  report.repair_ms = repair_ms;
  report.rebuild_ms = rebuild_ms;
  report.adopted_rebuild =
      rebuilt.final_cost <
      repaired.cost() * (1.0 - config_.rebuild_threshold);

  DBS_OBS_COUNTER_INC("serve.epochs");
  DBS_OBS_COUNTER_ADD("serve.requests_observed", window.size());
  DBS_OBS_COUNTER_ADD("serve.repair_moves", repair_stats.iterations);
  if (report.adopted_rebuild) DBS_OBS_COUNTER_INC("serve.rebuild_adoptions");
  DBS_OBS_HISTOGRAM_OBSERVE("serve.repair_ms", repair_ms);
  DBS_OBS_HISTOGRAM_OBSERVE("serve.rebuild_ms", rebuild_ms);

  // Publish the chosen program as a fresh immutable snapshot (RCU swap):
  // the snapshot owns its own Database copy, so readers holding the old
  // version keep a consistent db+alloc pair while new readers see this one.
  std::vector<ChannelId> chosen = report.adopted_rebuild
                                      ? rebuilt.allocation.assignment()
                                      : repaired.assignment();
  auto next = std::make_shared<const ProgramSnapshot>(
      std::move(fresh), config_.channels, std::move(chosen), epoch_,
      config_.bandwidth);
  report.waiting_time = next->waiting_time;
  published_.store(std::move(next), std::memory_order_release);
  report.metrics = obs::MetricsRegistry::global().snapshot();
  return report;
}

}  // namespace dbs
