#include "serve/server_loop.h"

#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "model/cost.h"
#include "obs/obs.h"

namespace dbs {

BroadcastServerLoop::BroadcastServerLoop(std::vector<double> item_sizes,
                                         const ServerLoopConfig& config)
    : config_(config), sizes_(std::move(item_sizes)),
      tracker_(sizes_.size(), config.tracker_gain, config.tracker_alpha),
      db_(sizes_, tracker_.frequencies()),
      alloc_(run_drp_cds(db_, config.channels).allocation) {
  DBS_CHECK(config.bandwidth > 0.0);
  DBS_CHECK(config.rebuild_threshold >= 0.0);
  DBS_CHECK_MSG(config.channels <= sizes_.size(),
                "cannot fill more channels than items");
}

Database BroadcastServerLoop::rebuild_database() const {
  return Database(sizes_, tracker_.frequencies());
}

EpochReport BroadcastServerLoop::observe_window(const std::vector<Request>& window) {
  DBS_OBS_SPAN("serve.epoch");
  tracker_.observe(window);
  Database fresh = rebuild_database();

  // Repair: carry the on-air assignment into the new popularity estimate and
  // let CDS fix it up.
  Allocation repaired(fresh, config_.channels, alloc_.assignment());
  Stopwatch repair_watch;
  CdsStats repair_stats;
  {
    DBS_OBS_SPAN("serve.epoch.repair");
    repair_stats = run_cds(repaired);
  }
  const double repair_ms = repair_watch.millis();

  // Reference rebuild from scratch.
  Stopwatch rebuild_watch;
  DrpCdsResult rebuilt = [&] {
    DBS_OBS_SPAN("serve.epoch.rebuild");
    return run_drp_cds(fresh, config_.channels);
  }();
  const double rebuild_ms = rebuild_watch.millis();

  EpochReport report;
  report.epoch = ++epoch_;
  report.requests = window.size();
  report.repaired_cost = repaired.cost();
  report.rebuilt_cost = rebuilt.final_cost;
  report.repair_moves = repair_stats.iterations;
  report.repair_ms = repair_ms;
  report.rebuild_ms = rebuild_ms;
  report.adopted_rebuild =
      rebuilt.final_cost <
      repaired.cost() * (1.0 - config_.rebuild_threshold);

  DBS_OBS_COUNTER_INC("serve.epochs");
  DBS_OBS_COUNTER_ADD("serve.requests_observed", window.size());
  DBS_OBS_COUNTER_ADD("serve.repair_moves", repair_stats.iterations);
  if (report.adopted_rebuild) DBS_OBS_COUNTER_INC("serve.rebuild_adoptions");
  DBS_OBS_HISTOGRAM_OBSERVE("serve.repair_ms", repair_ms);
  DBS_OBS_HISTOGRAM_OBSERVE("serve.rebuild_ms", rebuild_ms);

  // Swap in the chosen allocation; db_ must outlive alloc_, so move the
  // database first and rebind the allocation against the stored instance.
  const std::vector<ChannelId> chosen = report.adopted_rebuild
                                            ? rebuilt.allocation.assignment()
                                            : repaired.assignment();
  db_ = std::move(fresh);
  alloc_ = Allocation(db_, config_.channels, chosen);
  report.waiting_time = program_waiting_time(alloc_, config_.bandwidth);
  report.metrics = obs::MetricsRegistry::global().snapshot();
  return report;
}

}  // namespace dbs
