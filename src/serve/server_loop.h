// The operational broadcast-server loop of the paper's Figure 1: the server
// collects the access patterns of mobile users, re-estimates item
// popularity, and regenerates the broadcast program when it pays off.
//
// Each epoch:
//   1. observe a window of client requests (FrequencyTracker, exponential
//      forgetting, Laplace smoothing);
//   2. rebuild the database with the fresh estimate;
//   3. repair the current allocation with CDS from the carried-over
//      assignment (cheap), and compute a full DRP-CDS rebuild (reference);
//   4. adopt the rebuild only when it beats the repaired allocation by more
//      than `rebuild_threshold` (relative) — otherwise keep the repair, so
//      most epochs cost a handful of CDS moves instead of a full rebuild.
#pragma once

#include <cstddef>
#include <vector>

#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"
#include "obs/metrics.h"
#include "workload/estimate.h"
#include "workload/trace.h"

namespace dbs {

/// Server-loop configuration.
struct ServerLoopConfig {
  ChannelId channels = 6;
  double bandwidth = 10.0;
  double tracker_gain = 0.4;       ///< exponential-forgetting weight
  double tracker_alpha = 1.0;      ///< Laplace smoothing mass per item
  double rebuild_threshold = 0.01; ///< adopt rebuild if ≥1% better than repair
};

/// Per-epoch record.
struct EpochReport {
  std::size_t epoch = 0;
  std::size_t requests = 0;
  double repaired_cost = 0.0;   ///< after CDS repair of the carried program
  double rebuilt_cost = 0.0;    ///< full DRP-CDS from scratch
  bool adopted_rebuild = false;
  std::size_t repair_moves = 0;
  double waiting_time = 0.0;    ///< W_b of the program now on air

  /// Wall time of the CDS repair step (Stopwatch, milliseconds).
  double repair_ms = 0.0;
  /// Wall time of the reference DRP-CDS rebuild (Stopwatch, milliseconds).
  double rebuild_ms = 0.0;

  /// Snapshot of the process-global metrics registry taken at the end of the
  /// epoch, so operators see cumulative per-decision telemetry (CDS moves,
  /// DRP splits, ...) next to the epoch's costs. Empty when DBS_OBS=OFF.
  obs::MetricsSnapshot metrics;
};

/// Long-running server: owns the catalogue sizes, the popularity estimate
/// and the live allocation.
class BroadcastServerLoop {
 public:
  /// Starts from a uniform popularity estimate over the given item sizes and
  /// an initial DRP-CDS program.
  BroadcastServerLoop(std::vector<double> item_sizes, const ServerLoopConfig& config);

  /// Feeds one observed request window; returns what the server did.
  EpochReport observe_window(const std::vector<Request>& window);

  /// The database under the current popularity estimate.
  const Database& database() const { return db_; }

  /// The allocation currently on air (valid for database()).
  const Allocation& allocation() const { return alloc_; }

  const ServerLoopConfig& config() const { return config_; }
  std::size_t epochs() const { return epoch_; }

 private:
  Database rebuild_database() const;

  ServerLoopConfig config_;
  std::vector<double> sizes_;
  FrequencyTracker tracker_;
  Database db_;
  Allocation alloc_;
  std::size_t epoch_ = 0;
};

}  // namespace dbs
