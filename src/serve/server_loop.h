// The operational broadcast-server loop of the paper's Figure 1: the server
// collects the access patterns of mobile users, re-estimates item
// popularity, and regenerates the broadcast program when it pays off.
//
// Each epoch:
//   1. observe a window of client requests (FrequencyTracker, exponential
//      forgetting, Laplace smoothing);
//   2. rebuild the database with the fresh estimate;
//   3. repair the current allocation with CDS from the carried-over
//      assignment (cheap), and compute a full DRP-CDS rebuild (reference);
//   4. adopt the rebuild only when it beats the repaired allocation by more
//      than `rebuild_threshold` (relative) — otherwise keep the repair, so
//      most epochs cost a handful of CDS moves instead of a full rebuild.
//
// Concurrency model (DESIGN.md §11): the estimator state is guarded by a
// single writer mutex (compiler-checked via the DBS_GUARDED_BY contracts
// below), while the program on air is published as an immutable, versioned
// ProgramSnapshot behind an atomic shared_ptr — the RCU-style swap of
// ROADMAP item 2. Readers load the snapshot lock-free and keep it alive for
// as long as they hold the shared_ptr; a concurrent observe_window() swap
// never blocks them and never mutates a snapshot they can see.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"
#include "obs/metrics.h"
#include "workload/estimate.h"
#include "workload/trace.h"

namespace dbs {

/// Server-loop configuration.
struct ServerLoopConfig {
  ChannelId channels = 6;
  double bandwidth = 10.0;
  double tracker_gain = 0.4;       ///< exponential-forgetting weight
  double tracker_alpha = 1.0;      ///< Laplace smoothing mass per item
  double rebuild_threshold = 0.01; ///< adopt rebuild if ≥1% better than repair
};

/// Per-epoch record.
struct EpochReport {
  std::size_t epoch = 0;
  std::size_t requests = 0;
  double repaired_cost = 0.0;   ///< after CDS repair of the carried program
  double rebuilt_cost = 0.0;    ///< full DRP-CDS from scratch
  bool adopted_rebuild = false;
  std::size_t repair_moves = 0;
  double waiting_time = 0.0;    ///< W_b of the program now on air

  /// Wall time of the CDS repair step (Stopwatch, milliseconds).
  double repair_ms = 0.0;
  /// Wall time of the reference DRP-CDS rebuild (Stopwatch, milliseconds).
  double rebuild_ms = 0.0;

  /// Snapshot of the process-global metrics registry taken at the end of the
  /// epoch, so operators see cumulative per-decision telemetry (CDS moves,
  /// DRP splits, ...) next to the epoch's costs. Empty when DBS_OBS=OFF.
  obs::MetricsSnapshot metrics;
};

/// Immutable program version: the database the program was planned against,
/// the allocation on air (bound to that database), the epoch that produced
/// it and its waiting time. Snapshots are built once, published via an
/// atomic shared_ptr swap, and never mutated afterwards — any number of
/// concurrent readers can hold one while the server moves on.
struct ProgramSnapshot {
  /// Builds the snapshot and binds `alloc` to the stored `db` copy.
  ProgramSnapshot(Database database, ChannelId channels,
                  std::vector<ChannelId> assignment, std::size_t epoch,
                  double bandwidth);

  // alloc references db by address, so a snapshot must never be copied or
  // moved — it lives and dies inside its shared_ptr.
  ProgramSnapshot(const ProgramSnapshot&) = delete;
  ProgramSnapshot& operator=(const ProgramSnapshot&) = delete;

  const Database db;
  const Allocation alloc;        ///< bound to this->db
  const std::size_t epoch;
  const double waiting_time;     ///< W_b of alloc at the config bandwidth
};

/// Long-running server: owns the catalogue sizes, the popularity estimate
/// and the published program versions. observe_window() is the single
/// writer (safe to call from any one thread at a time; the mutex makes
/// concurrent callers serialize rather than race); snapshot() is a wait-free
/// reader safe from any thread.
class BroadcastServerLoop {
 public:
  /// Starts from a uniform popularity estimate over the given item sizes and
  /// an initial DRP-CDS program (published as snapshot version 0).
  BroadcastServerLoop(std::vector<double> item_sizes, const ServerLoopConfig& config);

  /// Feeds one observed request window; returns what the server did. Takes
  /// the writer mutex for the whole epoch and publishes the chosen program
  /// as a fresh immutable snapshot before returning.
  EpochReport observe_window(const std::vector<Request>& window)
      DBS_EXCLUDES(mutex_);

  /// The program currently on air, as an immutable shared snapshot. Safe to
  /// call from any thread, never blocks the writer; the returned snapshot
  /// stays valid (and unchanged) for as long as the caller holds it.
  std::shared_ptr<const ProgramSnapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// The database under the current popularity estimate. Single-threaded
  /// convenience accessor: the reference is only stable until the next
  /// observe_window() — concurrent readers must use snapshot() instead.
  const Database& database() const { return snapshot()->db; }

  /// The allocation currently on air (valid for database()). Same lifetime
  /// caveat as database(): concurrent readers use snapshot().
  const Allocation& allocation() const { return snapshot()->alloc; }

  const ServerLoopConfig& config() const { return config_; }
  std::size_t epochs() const { return snapshot()->epoch; }

 private:
  Database rebuild_database() const DBS_REQUIRES(mutex_);

  // Concurrency contract: config_ and sizes_ are immutable after
  // construction; the estimator and epoch counter belong to the writer and
  // are guarded by mutex_; published_ is the lock-free RCU pointer readers
  // go through (release store on publish, acquire load on read).
  const ServerLoopConfig config_;
  const std::vector<double> sizes_;
  mutable Mutex mutex_;
  FrequencyTracker tracker_ DBS_GUARDED_BY(mutex_);
  std::size_t epoch_ DBS_GUARDED_BY(mutex_) = 0;
  std::atomic<std::shared_ptr<const ProgramSnapshot>> published_;
};

}  // namespace dbs
