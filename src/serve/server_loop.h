// The operational broadcast-server loop of the paper's Figure 1, grown into
// an online re-allocation service (ROADMAP item 2, DESIGN.md §12): the
// server streams the access patterns of mobile users into a decayed-count
// estimate and keeps the program on air near-optimal with *incremental*
// repair, escalating to a full rebuild only when repair demonstrably stops
// being good enough.
//
// Each epoch:
//   1. fold the observed request window into the DecayedFrequencyTracker
//      (decayed raw counts, Laplace smoothing) and re-derive the database;
//   2. repair the carried-over assignment with CDS moves from where it is
//      (core/drp_cds.h repair_assignment) — the cheap steady-state path;
//   3. compare the repaired cost against a decayed best-known reference
//      cost; only when the excess crosses the regression trigger, or repair
//      stalls while elevated for `stall_epochs` in a row, run the full
//      DRP-CDS rebuild and adopt it if it beats the repair by
//      `rebuild_threshold` — so steady-state epochs never pay for a rebuild;
//   4. publish the chosen program as a fresh immutable versioned snapshot.
//
// Concurrency model (DESIGN.md §11): the estimator and control-loop state
// are guarded by a single writer mutex (compiler-checked via the
// DBS_GUARDED_BY contracts below), while the program on air is published as
// an immutable, versioned ProgramSnapshot in a slot guarded by a dedicated
// publish mutex that is only ever held for the O(1) shared_ptr copy/swap —
// the RCU-style hand-off of ROADMAP item 2. Readers copy the snapshot
// pointer in that micro critical section and keep the snapshot alive for as
// long as they hold the shared_ptr; the epoch's actual work (estimation,
// repair, rebuild) runs entirely outside the publish mutex, so a concurrent
// observe_window() never blocks readers on computation and never mutates a
// snapshot they can see. Snapshot versions are strictly monotone across
// publishes. (A std::atomic<std::shared_ptr> would make the read truly
// lock-free, but libstdc++'s _Sp_atomic spinlock predates its TSan
// annotations on the oldest toolchain this repo supports, so the annotated
// Mutex slot is the contract the sanitizers and -Wthread-safety can check.)
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "core/drp_cds.h"
#include "model/allocation.h"
#include "model/database.h"
#include "obs/metrics.h"
#include "workload/estimate.h"
#include "workload/trace.h"

namespace dbs {

/// Server-loop configuration.
struct ServerLoopConfig {
  ChannelId channels = 6;
  double bandwidth = 10.0;
  double tracker_decay = 0.5;      ///< per-window count decay ρ, in (0, 1]
  double tracker_alpha = 1.0;      ///< Laplace smoothing mass per item
  double rebuild_threshold = 0.01; ///< adopt a rebuild if ≥1% better than repair

  /// Cost-regression trigger: escalate to a full rebuild when the repaired
  /// cost exceeds the decayed best-known reference by this relative margin.
  /// 0 is the hair-trigger edge: any epoch whose repair fails to improve on
  /// the reference escalates, approximating the legacy compute-both loop.
  double escalate_threshold = 0.05;
  /// Stall trigger: escalate when repair applies zero moves while the cost
  /// sits in the elevated band (≥ half the regression margin above the
  /// reference) for this many consecutive epochs. 0 disables the trigger.
  std::size_t stall_epochs = 4;
  /// How fast the best-known reference forgets: when the chosen cost lands
  /// above the reference without escalating, the reference relaxes toward it
  /// with this weight, so genuine slow drift stops reading as regression.
  double reference_decay = 0.05;
  /// Pins the service to repair-only operation: no epoch ever runs the full
  /// DRP-CDS rebuild, whatever the triggers say.
  bool never_escalate = false;

  /// Budget for an escalated re-plan, in milliseconds. 0 (the default)
  /// keeps the classic unbudgeted DRP-CDS rebuild; > 0 races the optimizer
  /// portfolio (api/portfolio.h: DRP-CDS, KK-CDS, deadline-capped GOPT)
  /// under this deadline and adopts its winner instead — so even a forced
  /// rebuild epoch has a bounded worst-case wall time, and the rebuild
  /// quality is never worse than DRP-CDS alone would have delivered.
  double escalation_deadline_ms = 0.0;
};

/// Why an epoch escalated to a full DRP-CDS rebuild.
enum class EscalationReason {
  kNone,            ///< steady state: repair was good enough
  kCostRegression,  ///< repaired cost ≥ reference · (1 + escalate_threshold)
  kRepairStalled,   ///< zero-move repairs while elevated for stall_epochs
};

/// Per-epoch record.
struct EpochReport {
  std::size_t epoch = 0;
  std::size_t requests = 0;
  double repaired_cost = 0.0;   ///< after CDS repair of the carried program
  std::size_t repair_moves = 0;
  double waiting_time = 0.0;    ///< W_b of the program now on air

  /// Control-loop state (DESIGN.md §12): the decayed best-known reference
  /// cost the trigger compared against, and the repaired cost's relative
  /// excess over it (repaired/reference − 1) *before* this epoch's outcome
  /// was folded back into the reference.
  double reference_cost = 0.0;
  double cost_excess = 0.0;
  /// Consecutive elevated zero-move epochs, including this one (resets on
  /// any repair progress, on leaving the elevated band, and on escalation).
  std::size_t stall_streak = 0;

  /// Escalation outcome. rebuilt_cost and rebuild_ms are meaningful only
  /// when `escalated` — steady-state epochs never run the rebuild and
  /// report both as 0.
  bool escalated = false;
  EscalationReason escalation_reason = EscalationReason::kNone;
  double rebuilt_cost = 0.0;    ///< full DRP-CDS from scratch (escalated only)
  bool adopted_rebuild = false;

  /// Estimator staleness: how many windows the decayed counts effectively
  /// remember (DecayedFrequencyTracker::effective_windows).
  double estimator_staleness = 0.0;

  /// Version of the snapshot this epoch published (strictly monotone).
  std::size_t version = 0;

  /// Wall time of the CDS repair step (Stopwatch, milliseconds).
  double repair_ms = 0.0;
  /// Wall time of the DRP-CDS rebuild (0 when the epoch did not escalate).
  double rebuild_ms = 0.0;

  /// Snapshot of the process-global metrics registry taken at the end of the
  /// epoch, so operators see cumulative per-decision telemetry (CDS moves,
  /// DRP splits, ...) next to the epoch's costs. Empty when DBS_OBS=OFF.
  obs::MetricsSnapshot metrics;
};

/// Immutable program version: the database the program was planned against,
/// the allocation on air (bound to that database), the version/epoch that
/// produced it, its cost and waiting time. Snapshots are built once,
/// published by swapping the guarded shared_ptr slot, and never mutated
/// afterwards — any number of concurrent readers can hold one while the
/// server moves on.
struct ProgramSnapshot {
  /// Builds the snapshot and binds `alloc` to the stored `db` copy.
  ProgramSnapshot(Database database, ChannelId channels,
                  std::vector<ChannelId> assignment, std::size_t version,
                  double bandwidth);

  // alloc references db by address, so a snapshot must never be copied or
  // moved — it lives and dies inside its shared_ptr.
  ProgramSnapshot(const ProgramSnapshot&) = delete;
  ProgramSnapshot& operator=(const ProgramSnapshot&) = delete;

  const Database db;
  const Allocation alloc;        ///< bound to this->db
  /// Publication version, strictly monotone across publishes; equals the
  /// epoch that produced the snapshot (version 0 is the initial program).
  const std::size_t version;
  const std::size_t epoch;       ///< alias of version, kept for reports
  const double cost;             ///< alloc.cost() recorded at build time
  const double waiting_time;     ///< W_b of alloc at the config bandwidth
};

/// Long-running server: owns the catalogue sizes, the popularity estimate,
/// the repair/rebuild control loop and the published program versions.
/// observe_window() is the single writer (safe to call from any one thread
/// at a time; the mutex makes concurrent callers serialize rather than
/// race); snapshot() is a wait-free reader safe from any thread.
class BroadcastServerLoop {
 public:
  /// Starts from a uniform popularity estimate over the given item sizes and
  /// an initial DRP-CDS program (published as snapshot version 0).
  BroadcastServerLoop(std::vector<double> item_sizes, const ServerLoopConfig& config);

  /// Feeds one observed request window; returns what the server did. Takes
  /// the writer mutex for the whole epoch and publishes the chosen program
  /// as a fresh immutable snapshot before returning.
  EpochReport observe_window(const std::vector<Request>& window)
      DBS_EXCLUDES(mutex_);

  /// The program currently on air, as an immutable shared snapshot. Safe to
  /// call from any thread; the critical section is one shared_ptr copy, so
  /// readers never wait on an epoch's computation. The returned snapshot
  /// stays valid (and unchanged) for as long as the caller holds it.
  std::shared_ptr<const ProgramSnapshot> snapshot() const
      DBS_EXCLUDES(publish_mutex_) {
    const MutexLock lock(publish_mutex_);
    return published_;
  }

  /// The database under the current popularity estimate. Single-threaded
  /// convenience accessor: the reference is only stable until the next
  /// observe_window() — concurrent readers must use snapshot() instead.
  const Database& database() const { return snapshot()->db; }

  /// The allocation currently on air (valid for database()). Same lifetime
  /// caveat as database(): concurrent readers use snapshot().
  const Allocation& allocation() const { return snapshot()->alloc; }

  const ServerLoopConfig& config() const { return config_; }
  std::size_t epochs() const { return snapshot()->epoch; }

 private:
  Database rebuild_database() const DBS_REQUIRES(mutex_);

  /// Swaps the published snapshot slot (the only place publish_mutex_ is
  /// taken on the writer side — an O(1) pointer move).
  void publish(std::shared_ptr<const ProgramSnapshot> next)
      DBS_EXCLUDES(publish_mutex_);

  // Concurrency contract: config_ and sizes_ are immutable after
  // construction; the estimator, epoch counter and control-loop state
  // (reference cost, stall streak) belong to the writer and are guarded by
  // mutex_; published_ is the RCU hand-off slot readers copy from under
  // publish_mutex_, which is never held across any computation. Lock order:
  // mutex_ before publish_mutex_; readers take publish_mutex_ alone.
  const ServerLoopConfig config_;
  const std::vector<double> sizes_;
  mutable Mutex mutex_;
  DecayedFrequencyTracker tracker_ DBS_GUARDED_BY(mutex_);
  std::size_t epoch_ DBS_GUARDED_BY(mutex_) = 0;
  double reference_cost_ DBS_GUARDED_BY(mutex_) = 0.0;
  std::size_t stall_streak_ DBS_GUARDED_BY(mutex_) = 0;
  mutable Mutex publish_mutex_;
  std::shared_ptr<const ProgramSnapshot> published_ DBS_GUARDED_BY(publish_mutex_);
};

}  // namespace dbs
