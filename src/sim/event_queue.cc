#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace dbs {

void EventQueue::schedule(double when, Handler handler) {
  DBS_CHECK_MSG(when >= now_, "cannot schedule into the past: " << when << " < " << now_);
  heap_.push(Entry{when, next_seq_++, std::move(handler)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // std::priority_queue::top() is const; move out via const_cast is UB-free
  // here because we pop immediately and never observe the moved-from state.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.when;
  entry.handler();
  return true;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    step();
    ++fired;
  }
  return fired;
}

std::size_t EventQueue::run_all() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

}  // namespace dbs
