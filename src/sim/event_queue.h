// A minimal discrete-event engine: a time-ordered queue of callbacks with
// stable FIFO ordering among simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dbs {

/// Priority queue of (time, handler) pairs. Events scheduled for the same
/// instant fire in scheduling order, which keeps simulations deterministic.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `when`. `when` must not precede the
  /// current simulation time (no scheduling into the past).
  void schedule(double when, Handler handler);

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `until` is passed (events strictly after
  /// `until` remain queued). Returns the number of events fired.
  std::size_t run_until(double until);

  /// Runs until the queue drains.
  std::size_t run_all();

  /// Current simulation time: the timestamp of the last fired event.
  double now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace dbs
