#include "sim/program.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dbs {

BroadcastProgram::BroadcastProgram(const Allocation& alloc, double bandwidth,
                                   SlotOrdering ordering)
    : bandwidth_(bandwidth) {
  DBS_CHECK(bandwidth > 0.0);
  const Database& db = alloc.database();
  schedules_.resize(alloc.channels());
  item_channel_.assign(db.size(), 0);
  item_slot_index_.assign(db.size(), 0);

  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    std::vector<ItemId> ids = alloc.items_in(c);
    switch (ordering) {
      case SlotOrdering::kById:
        break;  // items_in returns ascending id order already
      case SlotOrdering::kByFreqDesc:
        std::stable_sort(ids.begin(), ids.end(), [&db](ItemId a, ItemId b) {
          return db.item(a).freq > db.item(b).freq;
        });
        break;
      case SlotOrdering::kByBenefitRatioDesc:
        std::stable_sort(ids.begin(), ids.end(), [&db](ItemId a, ItemId b) {
          return db.item(a).benefit_ratio() > db.item(b).benefit_ratio();
        });
        break;
    }
    ChannelSchedule& sched = schedules_[c];
    double offset = 0.0;
    for (ItemId id : ids) {
      const double duration = db.item(id).size / bandwidth_;
      item_channel_[id] = c;
      item_slot_index_[id] = sched.slots.size();
      sched.slots.push_back(Slot{id, offset, duration});
      offset += duration;
    }
    sched.cycle_time = offset;
  }
}

const ChannelSchedule& BroadcastProgram::schedule(ChannelId c) const {
  DBS_CHECK(c < schedules_.size());
  return schedules_[c];
}

ChannelId BroadcastProgram::channel_of(ItemId item) const {
  DBS_CHECK(item < item_channel_.size());
  return item_channel_[item];
}

double BroadcastProgram::delivery_time(ItemId item, double t) const {
  DBS_CHECK(item < item_channel_.size());
  DBS_CHECK(t >= 0.0);
  const ChannelSchedule& sched = schedules_[item_channel_[item]];
  const Slot& slot = sched.slots[item_slot_index_[item]];
  const double cycle = sched.cycle_time;
  DBS_CHECK(cycle > 0.0);
  // Occurrence starts are slot.start + m * cycle, m = 0, 1, 2, ...
  // The next start at or after t:
  const double m = std::ceil((t - slot.start) / cycle);
  const double start = slot.start + std::max(0.0, m) * cycle;
  return start + slot.duration;
}

}  // namespace dbs
