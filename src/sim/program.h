// The physical broadcast program: per-channel cyclic transmission schedules
// derived from a channel allocation. This is what the server actually sends
// on air; the simulator replays it against client request traces.
#pragma once

#include <cstddef>
#include <vector>

#include "model/allocation.h"
#include "model/database.h"

namespace dbs {

/// How items are ordered inside a channel's cycle. The analytic waiting-time
/// model (Eq. 1/2) is order-independent — only the cycle length matters — but
/// a concrete program must pick one; tests exercise several to confirm the
/// order-independence empirically.
enum class SlotOrdering {
  kById,               ///< ascending item id (deterministic default)
  kByFreqDesc,         ///< most popular first
  kByBenefitRatioDesc, ///< paper's dimension-reduction order
};

/// One transmission slot within a channel cycle.
struct Slot {
  ItemId item = 0;
  double start = 0.0;     ///< offset of transmission start within the cycle
  double duration = 0.0;  ///< z / b
};

/// Per-channel cyclic schedule.
struct ChannelSchedule {
  std::vector<Slot> slots;   ///< in transmission order
  double cycle_time = 0.0;   ///< Σ durations = Z_i / b
};

/// A complete broadcast program over K channels of equal bandwidth b.
class BroadcastProgram {
 public:
  /// Builds the program from an allocation. Requires bandwidth > 0.
  BroadcastProgram(const Allocation& alloc, double bandwidth,
                   SlotOrdering ordering = SlotOrdering::kById);

  ChannelId channels() const { return static_cast<ChannelId>(schedules_.size()); }
  double bandwidth() const { return bandwidth_; }
  const ChannelSchedule& schedule(ChannelId c) const;

  /// Channel carrying `item`.
  ChannelId channel_of(ItemId item) const;

  /// The time at which a client tuning in at `t` finishes downloading `item`:
  /// the end of the next occurrence whose *start* is ≥ t (a client that tunes
  /// in mid-transmission must wait a full extra cycle). O(log slots).
  double delivery_time(ItemId item, double t) const;

  /// Waiting time (delivery − tune-in) for a request at time t.
  double waiting_time(ItemId item, double t) const { return delivery_time(item, t) - t; }

 private:
  double bandwidth_;
  std::vector<ChannelSchedule> schedules_;
  std::vector<ChannelId> item_channel_;       // by item id
  std::vector<std::size_t> item_slot_index_;  // slot position within its channel
};

}  // namespace dbs
