#include "sim/simulator.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "obs/obs.h"
#include "sim/event_queue.h"

namespace dbs {
namespace {

/// Shared accumulation of per-request results into a SimReport.
class ReportBuilder {
 public:
  explicit ReportBuilder(ChannelId channels)
      : channel_stats_(channels), channel_requests_(channels, 0) {}

  void record(ChannelId channel, double wait, double completion) {
    waits_.push_back(wait);
    channel_stats_[channel].add(wait);
    ++channel_requests_[channel];
    end_time_ = std::max(end_time_, completion);
  }

  SimReport build() const {
    SimReport report;
    report.requests_served = waits_.size();
    report.waiting = summarize(waits_);
    report.channel_mean_wait.reserve(channel_stats_.size());
    for (const RunningStats& s : channel_stats_) {
      report.channel_mean_wait.push_back(s.mean());
    }
    report.channel_requests = channel_requests_;
    report.sim_end_time = end_time_;
    return report;
  }

 private:
  std::vector<double> waits_;
  std::vector<RunningStats> channel_stats_;
  std::vector<std::size_t> channel_requests_;
  double end_time_ = 0.0;
};

}  // namespace

SimReport simulate(const BroadcastProgram& program, const std::vector<Request>& trace) {
  DBS_OBS_SPAN("sim.simulate");
  const ChannelId channels = program.channels();
  ReportBuilder builder(channels);
  if (trace.empty()) return builder.build();

  EventQueue queue;

  // Waiting clients per item: arrival times of clients not yet boarded.
  struct WaitingClient {
    double arrival;
  };
  std::unordered_map<ItemId, std::vector<WaitingClient>> waiting;
  // Clients that boarded the in-flight transmission of an item.
  std::unordered_map<ItemId, std::vector<WaitingClient>> boarded;

  std::size_t outstanding = trace.size();

  // Server process: one self-rescheduling slot loop per channel.
  struct ChannelCursor {
    std::size_t next_slot = 0;
  };
  std::vector<ChannelCursor> cursors(channels);

  // Forward declaration trick: store the slot handler in a std::function so
  // it can reschedule itself each cycle.
  std::function<void(ChannelId)> start_slot = [&](ChannelId c) {
    const ChannelSchedule& sched = program.schedule(c);
    if (sched.slots.empty()) return;  // idle channel: nothing ever broadcast
    const Slot& slot = sched.slots[cursors[c].next_slot];
    const double start_time = queue.now();
    const double end_time = start_time + slot.duration;

    // Board exactly the clients already waiting at transmission start.
    auto it = waiting.find(slot.item);
    if (it != waiting.end() && !it->second.empty()) {
      auto& dst = boarded[slot.item];
      dst.insert(dst.end(), it->second.begin(), it->second.end());
      it->second.clear();
    }

    queue.schedule(end_time, [&, c, item = slot.item, end_time] {
      auto boarded_it = boarded.find(item);
      if (boarded_it != boarded.end()) {
        for (const WaitingClient& client : boarded_it->second) {
          builder.record(c, end_time - client.arrival, end_time);
          --outstanding;
        }
        boarded_it->second.clear();
      }
      cursors[c].next_slot =
          (cursors[c].next_slot + 1) % program.schedule(c).slots.size();
      if (outstanding > 0) start_slot(c);  // keep broadcasting while needed
    });
  };

  // Client arrivals.
  for (const Request& request : trace) {
    DBS_CHECK_MSG(request.time >= 0.0, "request times must be non-negative");
    queue.schedule(request.time, [&, request] {
      waiting[request.item].push_back(WaitingClient{request.time});
    });
  }

  // Kick off every channel at t = 0.
  for (ChannelId c = 0; c < channels; ++c) {
    queue.schedule(0.0, [&, c] { start_slot(c); });
  }

  // Depth right before draining = every arrival plus one kick per channel,
  // the high-water mark for a run that only ever pops and reschedules.
  DBS_OBS_HISTOGRAM_OBSERVE("sim.queue_depth", queue.pending());
  const std::size_t fired = queue.run_all();
  DBS_OBS_COUNTER_INC("sim.runs");
  DBS_OBS_COUNTER_ADD("sim.events_fired", fired);
  DBS_OBS_COUNTER_ADD("sim.requests_served", trace.size());
  DBS_CHECK_MSG(outstanding == 0, outstanding << " requests never completed");
  return builder.build();
}

SimReport replay_analytic(const BroadcastProgram& program,
                          const std::vector<Request>& trace) {
  DBS_OBS_SPAN("sim.replay_analytic");
  ReportBuilder builder(program.channels());
  for (const Request& request : trace) {
    const double done = program.delivery_time(request.item, request.time);
    builder.record(program.channel_of(request.item), done - request.time, done);
  }
  return builder.build();
}

}  // namespace dbs
