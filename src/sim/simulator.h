// Discrete-event broadcast simulator.
//
// The server cyclically transmits every channel's schedule; clients arrive
// per a request trace, tune to the channel carrying their item, wait for the
// next transmission *start*, and complete when the transmission ends. The
// empirical mean waiting time converges to the analytic W_b of Eq. (2),
// which the integration tests assert.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "model/allocation.h"
#include "sim/program.h"
#include "workload/trace.h"

namespace dbs {

/// Simulation report: waiting-time statistics overall and per channel.
struct SimReport {
  std::size_t requests_served = 0;
  Summary waiting;                       ///< distribution over all requests
  std::vector<double> channel_mean_wait; ///< mean waiting time per channel
  std::vector<std::size_t> channel_requests;
  double sim_end_time = 0.0;             ///< instant the last request completed

  /// Empirical average waiting time (mean of `waiting`).
  double mean_wait() const { return waiting.mean; }
};

/// Event-driven simulation of `program` against `trace`.
///
/// Events: per-channel SlotStart / SlotEnd (the server side) and per-request
/// Arrival (the client side). A client arriving during its item's
/// transmission must wait for the next occurrence — only clients already
/// waiting when a transmission starts board it.
SimReport simulate(const BroadcastProgram& program, const std::vector<Request>& trace);

/// Convenience: closed-form replay (no event loop) using
/// BroadcastProgram::delivery_time per request. Produces identical waits to
/// `simulate`; tests cross-check the two engines against each other.
SimReport replay_analytic(const BroadcastProgram& program,
                          const std::vector<Request>& trace);

}  // namespace dbs
