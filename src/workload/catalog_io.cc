#include "workload/catalog_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dbs {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(trim(field));
  return fields;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& why) {
  std::ostringstream os;
  os << "catalog line " << line_number << ": " << why;
  throw std::runtime_error(os.str());
}

double parse_number(const std::string& field, std::size_t line_number,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(field, &used);
    if (used != field.size()) fail(line_number, std::string("trailing junk in ") + what);
    return value;
  } catch (const std::invalid_argument&) {
    fail(line_number, std::string("non-numeric ") + what + " '" + field + "'");
  } catch (const std::out_of_range&) {
    fail(line_number, std::string("out-of-range ") + what + " '" + field + "'");
  }
}

}  // namespace

std::string Catalog::name_of(ItemId id) const {
  if (id < names.size() && !names[id].empty()) return names[id];
  return "d" + std::to_string(id + 1);
}

Catalog load_catalog(std::istream& in) {
  std::vector<double> sizes, freqs;
  std::vector<std::string> names;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::vector<std::string> fields = split_fields(stripped);
    if (fields.size() < 2 || fields.size() > 3) {
      fail(line_number, "expected 'size,freq[,name]'");
    }
    if (sizes.empty() && fields[0] == "size") continue;  // header
    const double size = parse_number(fields[0], line_number, "size");
    const double freq = parse_number(fields[1], line_number, "freq");
    if (size <= 0.0) fail(line_number, "size must be positive");
    if (freq < 0.0) fail(line_number, "freq must be non-negative");
    sizes.push_back(size);
    freqs.push_back(freq);
    names.push_back(fields.size() == 3 ? fields[2] : std::string());
  }
  if (sizes.empty()) throw std::runtime_error("catalog: no items found");
  return Catalog{Database(sizes, freqs), std::move(names)};
}

Catalog load_catalog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("catalog: cannot open " + path);
  return load_catalog(in);
}

void store_catalog(std::ostream& out, const Catalog& catalog) {
  out << "size,freq,name\n";
  for (const Item& it : catalog.database.items()) {
    out << it.size << ',' << it.freq << ',' << catalog.name_of(it.id) << '\n';
  }
}

}  // namespace dbs
