// Catalogue file I/O: load and store broadcast databases as CSV so the CLI
// (and downstream users) can schedule real catalogues.
//
// Format: one item per line, `size,freq[,name]`. Blank lines and lines
// starting with `#` are ignored; an optional header line `size,freq[,name]`
// is skipped. Frequencies need not be normalized (Database normalizes).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "model/database.h"

namespace dbs {

/// A catalogue: the database plus optional per-item display names
/// (names[id] is empty when the file had no name column).
struct Catalog {
  Database database;
  std::vector<std::string> names;

  /// Display name of an item: its file name when present, else "d<id+1>".
  std::string name_of(ItemId id) const;
};

/// Parses a catalogue from a stream. Throws std::runtime_error with the
/// offending line number on malformed input (bad field count, non-numeric or
/// non-positive size, negative frequency).
Catalog load_catalog(std::istream& in);

/// Loads a catalogue from a file path. Throws std::runtime_error if the file
/// cannot be opened or parsed.
Catalog load_catalog_file(const std::string& path);

/// Writes a catalogue in the same format (with header).
void store_catalog(std::ostream& out, const Catalog& catalog);

}  // namespace dbs
