#include "workload/drift.h"

#include <vector>

#include "common/check.h"

namespace dbs {

Database drift_frequencies(const Database& db, Rng& rng, const DriftConfig& config) {
  DBS_CHECK(config.intensity >= 0.0 && config.intensity <= 1.0);
  std::vector<double> sizes;
  std::vector<double> freqs;
  sizes.reserve(db.size());
  freqs.reserve(db.size());
  for (const Item& it : db.items()) {
    sizes.push_back(it.size);
    freqs.push_back(it.freq);
  }
  for (std::size_t transfer = 0; transfer < config.transfers; ++transfer) {
    const std::size_t from = static_cast<std::size_t>(rng.below(db.size()));
    const std::size_t to = static_cast<std::size_t>(rng.below(db.size()));
    const double moved = config.intensity * freqs[from];
    freqs[from] -= moved;
    freqs[to] += moved;
  }
  return Database(sizes, freqs);
}

}  // namespace dbs
