// Popularity drift: perturbs a database's access frequencies while keeping
// its item sizes, modelling interest shifting between items over time (used
// by the adaptive re-allocation example and the serve-loop tests).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "model/database.h"

namespace dbs {

/// Drift parameters.
struct DriftConfig {
  std::size_t transfers = 6;  ///< number of (hot → cold) probability moves
  double intensity = 0.5;     ///< fraction of the source item's mass moved
};

/// Returns a new database with the same sizes and drifted frequencies:
/// `transfers` times, a random source item sheds `intensity` of its mass to
/// a random destination item. Frequencies are re-normalized by Database.
Database drift_frequencies(const Database& db, Rng& rng,
                           const DriftConfig& config = {});

}  // namespace dbs
