#include "workload/estimate.h"

#include <cmath>

#include "common/check.h"

namespace dbs {

std::vector<double> estimate_frequencies(const std::vector<Request>& window,
                                         std::size_t items, double alpha) {
  DBS_CHECK(items > 0);
  DBS_CHECK(alpha >= 0.0);
  DBS_CHECK_MSG(alpha > 0.0 || !window.empty(),
                "raw MLE needs at least one observation");
  std::vector<double> counts(items, alpha);
  for (const Request& r : window) {
    DBS_CHECK_MSG(r.item < items, "request for unknown item " << r.item);
    counts[r.item] += 1.0;
  }
  const double total =
      static_cast<double>(window.size()) + alpha * static_cast<double>(items);
  for (double& c : counts) c /= total;
  return counts;
}

FrequencyTracker::FrequencyTracker(std::size_t items, double gain, double alpha)
    : gain_(gain), alpha_(alpha),
      estimate_(items, 1.0 / static_cast<double>(items)) {
  DBS_CHECK(items > 0);
  DBS_CHECK_MSG(gain > 0.0 && gain <= 1.0, "gain must lie in (0, 1]");
  DBS_CHECK(alpha >= 0.0);
}

void FrequencyTracker::observe(const std::vector<Request>& window) {
  const std::vector<double> fresh =
      estimate_frequencies(window, estimate_.size(), alpha_);
  for (std::size_t i = 0; i < estimate_.size(); ++i) {
    estimate_[i] = (1.0 - gain_) * estimate_[i] + gain_ * fresh[i];
  }
  ++windows_;
}

DecayedFrequencyTracker::DecayedFrequencyTracker(std::size_t items, double decay,
                                                 double alpha)
    : decay_(decay), alpha_(alpha), counts_(items, 0.0) {
  DBS_CHECK(items > 0);
  DBS_CHECK_MSG(decay > 0.0 && decay <= 1.0, "decay must lie in (0, 1]");
  DBS_CHECK_MSG(alpha > 0.0,
                "decayed counts need positive smoothing mass to stay defined");
}

void DecayedFrequencyTracker::observe(const std::vector<Request>& window) {
  if (decay_ < 1.0) {
    for (double& c : counts_) c *= decay_;
    total_ *= decay_;
  }
  for (const Request& r : window) {
    DBS_CHECK_MSG(r.item < counts_.size(), "request for unknown item " << r.item);
    counts_[r.item] += 1.0;
    total_ += 1.0;
  }
  ++windows_;
}

std::vector<double> DecayedFrequencyTracker::frequencies() const {
  // Mirrors estimate_frequencies' arithmetic shape (counts + alpha, divided
  // by mass + alpha·N) so the ρ = 1 single-window case is bit-identical to
  // the batch estimator.
  std::vector<double> freqs(counts_.size());
  const double total = total_ + alpha_ * static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    freqs[i] = (counts_[i] + alpha_) / total;
  }
  return freqs;
}

double DecayedFrequencyTracker::effective_windows() const {
  if (windows_ == 0) return 0.0;
  if (decay_ >= 1.0) return static_cast<double>(windows_);
  const double rho_w = std::pow(decay_, static_cast<double>(windows_));
  return (1.0 - rho_w) / (1.0 - decay_);
}

}  // namespace dbs
