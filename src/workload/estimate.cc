#include "workload/estimate.h"

#include "common/check.h"

namespace dbs {

std::vector<double> estimate_frequencies(const std::vector<Request>& window,
                                         std::size_t items, double alpha) {
  DBS_CHECK(items > 0);
  DBS_CHECK(alpha >= 0.0);
  DBS_CHECK_MSG(alpha > 0.0 || !window.empty(),
                "raw MLE needs at least one observation");
  std::vector<double> counts(items, alpha);
  for (const Request& r : window) {
    DBS_CHECK_MSG(r.item < items, "request for unknown item " << r.item);
    counts[r.item] += 1.0;
  }
  const double total =
      static_cast<double>(window.size()) + alpha * static_cast<double>(items);
  for (double& c : counts) c /= total;
  return counts;
}

FrequencyTracker::FrequencyTracker(std::size_t items, double gain, double alpha)
    : gain_(gain), alpha_(alpha),
      estimate_(items, 1.0 / static_cast<double>(items)) {
  DBS_CHECK(items > 0);
  DBS_CHECK_MSG(gain > 0.0 && gain <= 1.0, "gain must lie in (0, 1]");
  DBS_CHECK(alpha >= 0.0);
}

void FrequencyTracker::observe(const std::vector<Request>& window) {
  const std::vector<double> fresh =
      estimate_frequencies(window, estimate_.size(), alpha_);
  for (std::size_t i = 0; i < estimate_.size(); ++i) {
    estimate_[i] = (1.0 - gain_) * estimate_[i] + gain_ * fresh[i];
  }
  ++windows_;
}

}  // namespace dbs
