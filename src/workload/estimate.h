// Access-frequency estimation from observed request traces. The paper's
// server "generates a broadcast program by collecting the access patterns of
// mobile users" (§1); this is that collection step: turn a window of
// requests into the frequency vector the scheduler consumes, with Laplace
// smoothing so never-seen items keep a small positive probability (they must
// still be broadcast) and optional exponential decay across windows so the
// estimate tracks drifting popularity.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/trace.h"

namespace dbs {

/// One-shot estimator: normalized (count + alpha) over a trace window.
/// alpha = 0 gives the raw maximum-likelihood estimate (items never seen get
/// probability 0); alpha > 0 is Laplace smoothing. Requires items > 0 and a
/// non-empty trace when alpha == 0.
std::vector<double> estimate_frequencies(const std::vector<Request>& window,
                                         std::size_t items, double alpha = 1.0);

/// Streaming estimator with exponential forgetting: each new window's counts
/// are blended into the running estimate with weight `gain` (0 < gain ≤ 1).
/// gain = 1 forgets everything between windows; small gains smooth heavily.
class FrequencyTracker {
 public:
  /// Starts from the uniform distribution over `items`.
  explicit FrequencyTracker(std::size_t items, double gain = 0.3, double alpha = 1.0);

  /// Folds one observed window into the estimate.
  void observe(const std::vector<Request>& window);

  /// Current normalized estimate (sums to 1, strictly positive everywhere
  /// when alpha > 0).
  const std::vector<double>& frequencies() const { return estimate_; }

  std::size_t windows_observed() const { return windows_; }

 private:
  double gain_;
  double alpha_;
  std::vector<double> estimate_;
  std::size_t windows_ = 0;
};

/// Streaming estimator over decayed raw counts, the serve loop's estimator
/// (DESIGN.md §12). Where FrequencyTracker blends normalized per-window
/// estimates, this tracker keeps one decayed count per item,
///     c_i ← ρ·c_i + (requests for i in the window),
/// and normalizes with Laplace smoothing only when frequencies() is read:
///     f_i = (c_i + α) / (C + α·N),  C = Σ c_i.
/// Working on raw counts makes the fold order-independent within a window
/// (each request is an independent `+= 1.0`), weighs windows by how much
/// traffic they actually carried, and with ρ = 1 over a single window is
/// bit-identical to the batch estimate_frequencies() — both properties are
/// locked in by estimate_test.
class DecayedFrequencyTracker {
 public:
  /// \brief Starts from zero counts (frequencies() is uniform until the
  /// first window). Requires items > 0, 0 < decay ≤ 1 and alpha > 0 (the
  /// smoothing mass is what keeps the estimate defined before any traffic).
  explicit DecayedFrequencyTracker(std::size_t items, double decay = 0.5,
                                   double alpha = 1.0);

  /// \brief Decays the carried counts by `decay`, then folds the window in.
  void observe(const std::vector<Request>& window);

  /// \brief Current normalized estimate (sums to 1, strictly positive).
  std::vector<double> frequencies() const;

  /// \brief The decayed count column c, indexed by ItemId.
  const std::vector<double>& counts() const { return counts_; }

  /// \brief Total decayed request mass C = Σ c_i still remembered.
  double effective_requests() const { return total_; }

  /// \brief How many windows the estimate effectively remembers:
  /// Σ_{k<w} ρ^k = (1 − ρ^w)/(1 − ρ), or w when ρ = 1. This is the
  /// estimator-staleness figure surfaced in EpochReport.
  double effective_windows() const;

  std::size_t windows_observed() const { return windows_; }

 private:
  double decay_;
  double alpha_;
  std::vector<double> counts_;
  double total_ = 0.0;  // Σ counts_, maintained incrementally
  std::size_t windows_ = 0;
};

}  // namespace dbs
