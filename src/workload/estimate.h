// Access-frequency estimation from observed request traces. The paper's
// server "generates a broadcast program by collecting the access patterns of
// mobile users" (§1); this is that collection step: turn a window of
// requests into the frequency vector the scheduler consumes, with Laplace
// smoothing so never-seen items keep a small positive probability (they must
// still be broadcast) and optional exponential decay across windows so the
// estimate tracks drifting popularity.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/trace.h"

namespace dbs {

/// One-shot estimator: normalized (count + alpha) over a trace window.
/// alpha = 0 gives the raw maximum-likelihood estimate (items never seen get
/// probability 0); alpha > 0 is Laplace smoothing. Requires items > 0 and a
/// non-empty trace when alpha == 0.
std::vector<double> estimate_frequencies(const std::vector<Request>& window,
                                         std::size_t items, double alpha = 1.0);

/// Streaming estimator with exponential forgetting: each new window's counts
/// are blended into the running estimate with weight `gain` (0 < gain ≤ 1).
/// gain = 1 forgets everything between windows; small gains smooth heavily.
class FrequencyTracker {
 public:
  /// Starts from the uniform distribution over `items`.
  explicit FrequencyTracker(std::size_t items, double gain = 0.3, double alpha = 1.0);

  /// Folds one observed window into the estimate.
  void observe(const std::vector<Request>& window);

  /// Current normalized estimate (sums to 1, strictly positive everywhere
  /// when alpha > 0).
  const std::vector<double>& frequencies() const { return estimate_; }

  std::size_t windows_observed() const { return windows_; }

 private:
  double gain_;
  double alpha_;
  std::vector<double> estimate_;
  std::size_t windows_ = 0;
};

}  // namespace dbs
