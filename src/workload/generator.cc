#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/distributions.h"

namespace dbs {

double sample_item_size(Rng& rng, double diversity) {
  DBS_CHECK(diversity >= 0.0);
  return std::pow(10.0, rng.uniform(0.0, diversity));
}

namespace {

/// Standard normal via Box–Muller (one draw per call; simple and exact).
double sample_standard_normal(Rng& rng) {
  const double u1 = 1.0 - rng.uniform01();  // (0, 1]
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

double sample_item_size_model(Rng& rng, const WorkloadConfig& config) {
  DBS_CHECK(config.diversity >= 0.0);
  switch (config.size_model) {
    case SizeModel::kUniformExponent:
      return sample_item_size(rng, config.diversity);
    case SizeModel::kLognormal: {
      DBS_CHECK(config.lognormal_sigma >= 0.0);
      const double exponent = config.diversity / 2.0 +
                              config.lognormal_sigma * sample_standard_normal(rng);
      // Clamp to a sane positive range so a deep tail draw cannot produce a
      // subnormal or astronomically large object.
      return std::pow(10.0, std::clamp(exponent, -1.0, config.diversity + 1.0));
    }
    case SizeModel::kBimodal: {
      DBS_CHECK(config.bimodal_media_share >= 0.0 && config.bimodal_media_share <= 1.0);
      if (rng.chance(config.bimodal_media_share)) {
        return std::pow(10.0, rng.uniform(0.75 * config.diversity, config.diversity));
      }
      return std::pow(10.0, rng.uniform(0.0, 0.25 * config.diversity));
    }
  }
  DBS_CHECK_MSG(false, "unknown SizeModel");
  return 1.0;
}

Database generate_database(const WorkloadConfig& config) {
  DBS_CHECK_MSG(config.items > 0, "workload needs at least one item");
  DBS_CHECK_MSG(config.skewness >= 0.0, "Zipf skewness must be non-negative");
  Rng rng(config.seed);

  const std::vector<double> freqs = zipf_probabilities(config.items, config.skewness);

  std::vector<Item> items(config.items);
  for (std::size_t i = 0; i < config.items; ++i) {
    items[i].freq = freqs[i];
    items[i].size = sample_item_size_model(rng, config);
  }

  if (config.shuffle_ranks) {
    // Fisher–Yates over the items so that frequency rank is independent of
    // input position (Database reassigns ids afterwards anyway).
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  return Database(std::move(items));
}

}  // namespace dbs
