// Synthetic workload generation matching the paper's simulation environment
// (§4.1, Table 5): Zipf(θ) access frequencies over N items, item sizes
// 10^φ with φ uniform over [0, Φ].
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "model/database.h"

namespace dbs {

/// Item-size families. The paper's model is kUniformExponent; the others are
/// realistic alternatives for robustness studies: web-object sizes are
/// approximately lognormal, and the paper's motivating catalogue (text plus
/// multimedia) is bimodal.
enum class SizeModel {
  kUniformExponent,  ///< paper §4.1: size = 10^U[0, Φ]
  kLognormal,        ///< exp(N(μ, σ²)), parameterized to match the paper's mean exponent
  kBimodal,          ///< small "text" items with a heavy "media" minority
};

/// Parameters of one synthetic broadcast database.
struct WorkloadConfig {
  std::size_t items = 120;    ///< N — number of broadcast items
  double skewness = 0.8;      ///< θ — Zipf skewness parameter
  double diversity = 2.0;     ///< Φ — scale of the size distribution (see model)
  std::uint64_t seed = 1;     ///< PRNG seed; same seed ⇒ same database
  bool shuffle_ranks = true;  ///< decouple popularity rank from size draw order
  SizeModel size_model = SizeModel::kUniformExponent;
  double lognormal_sigma = 0.8;   ///< σ of log10-size for kLognormal
  double bimodal_media_share = 0.2;  ///< fraction of heavy items for kBimodal
};

/// Generates a database per the paper's model. Frequencies follow the exact
/// Zipf law over ranks 1..N; each item's size is 10^φ, φ ~ U[0, Φ].
/// With Φ = 0 every item has size 1 (the conventional environment).
///
/// When `shuffle_ranks` is set (the default), the rank-to-item mapping is
/// permuted so that popularity and the arbitrary input order are independent;
/// disabling it leaves item 0 the most popular, which some tests rely on.
Database generate_database(const WorkloadConfig& config);

/// Draws one diverse item size 10^U[0, diversity] (the paper's model).
double sample_item_size(Rng& rng, double diversity);

/// Draws one size from the configured family. For kUniformExponent this is
/// sample_item_size; for kLognormal, 10^N(Φ/2, σ²) — same mean exponent as
/// the paper's model; for kBimodal, a small item in [1, 10^(Φ/4)] with
/// probability 1 − media_share, else a heavy one in [10^(3Φ/4), 10^Φ].
double sample_item_size_model(Rng& rng, const WorkloadConfig& config);

}  // namespace dbs
