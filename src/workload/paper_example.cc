#include "workload/paper_example.h"

namespace dbs {

Database paper_table2_database() {
  // (freq, size) rows of Table 2, in d_1..d_15 order.
  const std::vector<double> freqs = {
      0.2374, 0.1363, 0.0986, 0.0783, 0.0655, 0.0566, 0.0500, 0.0450,
      0.0409, 0.0376, 0.0349, 0.0325, 0.0305, 0.0287, 0.0272};
  const std::vector<double> sizes = {
      21.18, 4.77, 3.59, 15.34, 2.91, 2.49, 17.51, 10.86,
      1.02,  6.41, 30.62, 4.09, 5.33, 7.74, 1.74};
  return Database(sizes, freqs);
}

std::vector<ItemId> paper_table3_br_order() {
  // Paper indices d9 d2 d3 d6 d5 d15 d1 d12 d10 d13 d4 d8 d14 d7 d11,
  // converted to 0-based ids.
  return {8, 1, 2, 5, 4, 14, 0, 11, 9, 12, 3, 7, 13, 6, 10};
}

}  // namespace dbs
