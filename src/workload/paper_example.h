// The worked example of the paper: the 15-item broadcast profile of Table 2,
// together with the intermediate values reported in Tables 3 and 4. Used by
// integration tests and by the table-reproduction bench.
#pragma once

#include <vector>

#include "model/database.h"

namespace dbs {

/// Builds the Table 2 database. Item ids 0..14 correspond to the paper's
/// d_1..d_15 (id = paper index − 1). Frequencies in the table already sum to
/// exactly 1, so normalization leaves them unchanged.
Database paper_table2_database();

/// The paper's br-descending order of Table 3(a), as ids:
/// d9 d2 d3 d6 d5 d15 d1 d12 d10 d13 d4 d8 d14 d7 d11.
std::vector<ItemId> paper_table3_br_order();

/// Reported total cost of the initial single group (Table 3a): 135.60.
inline constexpr double kPaperInitialCost = 135.60;

/// Reported group costs after DRP's first split (Table 3b): 29.04, 28.62.
inline constexpr double kPaperFirstSplitCostA = 29.04;
inline constexpr double kPaperFirstSplitCostB = 28.62;

/// Reported cost of DRP's final 5-group result (Table 4a): 24.09.
inline constexpr double kPaperDrpCost = 24.09;

/// Reported best first CDS move: d10 from group 4 to group 2, Δc = 0.95,
/// cost after = 23.13 (Table 4b).
inline constexpr double kPaperCdsFirstGain = 0.95;
inline constexpr double kPaperCdsAfterFirst = 23.13;

/// Reported second CDS move: d12 from group 3 to group 2, Δc = 0.45,
/// cost after = 22.68 (Table 4c).
inline constexpr double kPaperCdsSecondGain = 0.45;
inline constexpr double kPaperCdsAfterSecond = 22.68;

/// Reported local optimum reached by CDS (Table 4d): 22.29.
inline constexpr double kPaperCdsFinalCost = 22.29;

}  // namespace dbs
