#include "workload/trace.h"

#include "common/check.h"
#include "common/distributions.h"

namespace dbs {

std::vector<Request> generate_trace(const Database& db, const TraceConfig& config) {
  DBS_CHECK(config.arrival_rate > 0.0);
  Rng rng(config.seed);

  std::vector<double> weights;
  weights.reserve(db.size());
  for (const Item& it : db.items()) weights.push_back(it.freq);
  const AliasSampler sampler(weights);

  std::vector<Request> trace;
  trace.reserve(config.requests);
  double now = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    now += sample_exponential(rng, config.arrival_rate);
    trace.push_back(Request{now, static_cast<ItemId>(sampler.sample(rng))});
  }
  return trace;
}

std::vector<double> trace_popularity(const std::vector<Request>& trace,
                                     std::size_t items) {
  std::vector<double> hist(items, 0.0);
  for (const Request& r : trace) {
    DBS_CHECK(r.item < items);
    hist[r.item] += 1.0;
  }
  if (!trace.empty()) {
    for (double& h : hist) h /= static_cast<double>(trace.size());
  }
  return hist;
}

}  // namespace dbs
