// Client request traces for the discrete-event simulator: requests arrive as
// a Poisson process; each request targets an item drawn from the database's
// access-frequency distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/database.h"

namespace dbs {

/// One client request: at `time`, a client tunes in wanting `item`.
struct Request {
  double time = 0.0;
  ItemId item = 0;
};

/// Parameters of a synthetic request trace.
struct TraceConfig {
  std::size_t requests = 10000;  ///< number of requests to generate
  double arrival_rate = 10.0;    ///< Poisson arrivals per unit time
  std::uint64_t seed = 7;        ///< PRNG seed
};

/// Generates a trace whose item popularity follows the database frequencies
/// exactly (sampled via the alias method) and whose arrival times form a
/// Poisson process of the configured rate. Times are strictly increasing.
std::vector<Request> generate_trace(const Database& db, const TraceConfig& config);

/// Empirical item-request histogram of a trace, normalized to probabilities.
std::vector<double> trace_popularity(const std::vector<Request>& trace,
                                     std::size_t items);

}  // namespace dbs
