#include "air/index.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/check.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

Allocation sample_alloc(std::uint64_t seed = 1) {
  const WorkloadConfig cfg{.items = 60, .skewness = 0.9, .diversity = 2.0, .seed = seed};
  // Allocation keeps a pointer to its Database; park the databases in a
  // deque (stable addresses) that outlives the returned allocations.
  static std::deque<Database> keep;
  keep.push_back(generate_database(cfg));
  return run_drp_cds(keep.back(), 4).allocation;
}

TEST(AirIndex, CycleTimeIncludesIndexCopies) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const IndexConfig cfg{.index_size = 2.0, .header_size = 0.1, .replication = 3};
  const auto m = indexed_channel_metrics(alloc, 0, 10.0, cfg);
  EXPECT_NEAR(m.cycle_time, (30.0 + 3 * 2.0) / 10.0, 1e-12);
}

TEST(AirIndex, HandComputedMetrics) {
  // One channel, Z = 30, b = 10 -> D = 3. Index 2.0 -> I = 0.2, m = 1.
  // access = (3/1 + 0.2)/2 + 0.2 + (3 + 0.2)/2 + download.
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const IndexConfig cfg{.index_size = 2.0, .header_size = 0.1, .replication = 1};
  const auto m = indexed_channel_metrics(alloc, 0, 10.0, cfg);
  const double download = (0.5 * 10.0 + 0.5 * 20.0) / 10.0;  // 1.5
  EXPECT_NEAR(m.expected_access, 1.6 + 0.2 + 1.6 + download, 1e-12);
  EXPECT_NEAR(m.expected_tuning, 0.01 + 0.2 + download, 1e-12);
}

TEST(AirIndex, TuningFarBelowAccessForBigChannels) {
  const Allocation alloc = sample_alloc(2);
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.05, .replication = 1};
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    if (alloc.count_of(c) == 0) continue;
    const auto m = indexed_channel_metrics(alloc, c, 10.0, cfg);
    EXPECT_LT(m.expected_tuning, m.expected_access);
  }
}

TEST(AirIndex, MoreReplicationShortensProbeButLengthensCycle) {
  const Allocation alloc = sample_alloc(3);
  const IndexConfig base{.index_size = 1.0, .header_size = 0.05, .replication = 1};
  IndexConfig more = base;
  more.replication = 8;
  const auto m1 = indexed_channel_metrics(alloc, 0, 10.0, base);
  const auto m8 = indexed_channel_metrics(alloc, 0, 10.0, more);
  EXPECT_GT(m8.cycle_time, m1.cycle_time);
}

TEST(AirIndex, OptimalReplicationIsLocalMinimum) {
  const Allocation alloc = sample_alloc(4);
  const IndexConfig cfg{.index_size = 0.5, .header_size = 0.05, .replication = 1};
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    if (alloc.count_of(c) == 0) continue;
    const std::size_t m_star = optimal_replication(alloc, c, 10.0, cfg);
    auto access = [&](std::size_t m) {
      IndexConfig x = cfg;
      x.replication = m;
      return indexed_channel_metrics(alloc, c, 10.0, x).expected_access;
    };
    EXPECT_LE(access(m_star), access(m_star + 1) + 1e-12);
    if (m_star > 1) {
      EXPECT_LE(access(m_star), access(m_star - 1) + 1e-12);
    }
  }
}

TEST(AirIndex, OptimalReplicationNearSqrtRule) {
  // D/I = 100 -> m* ≈ 10.
  const Database db(std::vector<double>(10, 10.0), std::vector<double>(10, 0.1));
  const Allocation alloc(db, 1);
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.05, .replication = 1};
  const std::size_t m_star = optimal_replication(alloc, 0, 10.0, cfg);
  EXPECT_GE(m_star, 9u);
  EXPECT_LE(m_star, 11u);
}

TEST(AirIndex, ProgramAccessIsFrequencyWeighted) {
  const Allocation alloc = sample_alloc(5);
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.05, .replication = 1};
  double manual = 0.0;
  for (ChannelId c = 0; c < alloc.channels(); ++c) {
    if (alloc.count_of(c) == 0) continue;
    IndexConfig tuned = cfg;
    tuned.replication = optimal_replication(alloc, c, 10.0, cfg);
    manual += alloc.freq_of(c) *
              indexed_channel_metrics(alloc, c, 10.0, tuned).expected_access;
  }
  EXPECT_NEAR(indexed_program_access(alloc, 10.0, cfg), manual, 1e-12);
}

TEST(AirIndex, IndexedAccessExceedsUnindexedWait) {
  // The index costs air time, so indexed access latency is above the plain
  // W_b while tuning time is far below it.
  const Database db = generate_database({.items = 80, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 6});
  const Allocation alloc = run_drp_cds(db, 5).allocation;
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.05, .replication = 1};
  const double wb = program_waiting_time(alloc, 10.0);
  EXPECT_GT(indexed_program_access(alloc, 10.0, cfg), wb);
  EXPECT_LT(indexed_program_tuning(alloc, 10.0, cfg), wb);
}

TEST(AirIndex, RejectsBadInputs) {
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const Allocation alloc(db, 2, {0, 0});
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.0, .replication = 1};
  EXPECT_THROW(indexed_channel_metrics(alloc, 1, 10.0, cfg), ContractViolation);
  EXPECT_THROW(indexed_channel_metrics(alloc, 0, 0.0, cfg), ContractViolation);
  IndexConfig zero_m = cfg;
  zero_m.replication = 0;
  EXPECT_THROW(indexed_channel_metrics(alloc, 0, 10.0, zero_m), ContractViolation);
}

}  // namespace
}  // namespace dbs
