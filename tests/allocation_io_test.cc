#include "model/allocation_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(AllocationIo, RoundTrip) {
  const Database db = generate_database({.items = 30, .diversity = 2.0, .seed = 1});
  const Allocation original = run_drp_cds(db, 4).allocation;
  std::ostringstream out;
  store_allocation(out, original, 12.5);
  std::istringstream in(out.str());
  const StoredAllocation loaded = load_allocation(in, db);
  EXPECT_EQ(loaded.allocation.assignment(), original.assignment());
  EXPECT_DOUBLE_EQ(loaded.bandwidth, 12.5);
  EXPECT_DOUBLE_EQ(loaded.allocation.cost(), original.cost());
}

TEST(AllocationIo, IgnoresCommentsAndBlankLines) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  std::istringstream in(
      "# header comment\n"
      "\n"
      "channels 2\n"
      "bandwidth 5\n"
      "item 0 1\n"
      "# middle comment\n"
      "item 1 0\n");
  const StoredAllocation loaded = load_allocation(in, db);
  EXPECT_EQ(loaded.allocation.channel_of(0), 1u);
  EXPECT_EQ(loaded.allocation.channel_of(1), 0u);
}

TEST(AllocationIo, DetectsMissingAssignment) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  std::istringstream in("channels 2\nbandwidth 5\nitem 0 0\n");
  EXPECT_THROW(load_allocation(in, db), std::runtime_error);
}

TEST(AllocationIo, DetectsDuplicateAssignment) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  std::istringstream in(
      "channels 2\nbandwidth 5\nitem 0 0\nitem 0 1\nitem 1 0\n");
  EXPECT_THROW(load_allocation(in, db), std::runtime_error);
}

TEST(AllocationIo, DetectsOutOfRangeChannelAndItem) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  {
    std::istringstream in("channels 2\nbandwidth 5\nitem 0 7\nitem 1 0\n");
    EXPECT_THROW(load_allocation(in, db), std::runtime_error);
  }
  {
    std::istringstream in("channels 2\nbandwidth 5\nitem 9 0\nitem 1 0\n");
    EXPECT_THROW(load_allocation(in, db), std::runtime_error);
  }
}

TEST(AllocationIo, RequiresHeaderBeforeItems) {
  const Database db({1.0}, {1.0});
  std::istringstream in("item 0 0\nchannels 1\nbandwidth 5\n");
  EXPECT_THROW(load_allocation(in, db), std::runtime_error);
}

TEST(AllocationIo, RejectsUnknownKeywordAndBadValues) {
  const Database db({1.0}, {1.0});
  {
    std::istringstream in("wibble 3\n");
    EXPECT_THROW(load_allocation(in, db), std::runtime_error);
  }
  {
    std::istringstream in("channels 0\n");
    EXPECT_THROW(load_allocation(in, db), std::runtime_error);
  }
  {
    std::istringstream in("channels 1\nbandwidth -2\nitem 0 0\n");
    EXPECT_THROW(load_allocation(in, db), std::runtime_error);
  }
}

TEST(AllocationIo, ErrorsCarryLineNumbers) {
  const Database db({1.0}, {1.0});
  std::istringstream in("channels 1\nbandwidth 5\nitem zero 0\n");
  try {
    load_allocation(in, db);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace dbs
