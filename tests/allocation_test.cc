#include "model/allocation.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "workload/generator.h"

namespace dbs {
namespace {

Database small_db() {
  return Database({2.0, 3.0, 5.0, 1.0}, {0.4, 0.3, 0.2, 0.1});
}

TEST(Allocation, DefaultPutsEverythingOnChannelZero) {
  const Database db = small_db();
  const Allocation alloc(db, 3);
  EXPECT_EQ(alloc.count_of(0), 4u);
  EXPECT_EQ(alloc.count_of(1), 0u);
  EXPECT_DOUBLE_EQ(alloc.freq_of(0), 1.0);
  EXPECT_DOUBLE_EQ(alloc.size_of(0), 11.0);
}

TEST(Allocation, ExplicitAssignmentAggregates) {
  const Database db = small_db();
  const Allocation alloc(db, 2, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(alloc.freq_of(0), 0.6);
  EXPECT_DOUBLE_EQ(alloc.size_of(0), 7.0);
  EXPECT_DOUBLE_EQ(alloc.freq_of(1), 0.4);
  EXPECT_DOUBLE_EQ(alloc.size_of(1), 4.0);
  EXPECT_EQ(alloc.count_of(0), 2u);
  EXPECT_EQ(alloc.count_of(1), 2u);
}

TEST(Allocation, CostMatchesDefinition) {
  const Database db = small_db();
  const Allocation alloc(db, 2, {0, 1, 0, 1});
  EXPECT_NEAR(alloc.cost(), 0.6 * 7.0 + 0.4 * 4.0, 1e-12);
  EXPECT_NEAR(alloc.channel_cost(0), 4.2, 1e-12);
  EXPECT_NEAR(alloc.channel_cost(1), 1.6, 1e-12);
}

TEST(Allocation, MoveUpdatesAggregatesIncrementally) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  alloc.move(0, 1);  // item 0: f=0.4, z=2
  EXPECT_DOUBLE_EQ(alloc.freq_of(0), 0.2);
  EXPECT_DOUBLE_EQ(alloc.size_of(0), 5.0);
  EXPECT_DOUBLE_EQ(alloc.freq_of(1), 0.8);
  EXPECT_DOUBLE_EQ(alloc.size_of(1), 6.0);
  EXPECT_EQ(alloc.channel_of(0), 1u);
  EXPECT_NEAR(alloc.cost(), alloc.cost_recomputed(), 1e-12);
}

TEST(Allocation, MoveToSameChannelIsNoop) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  const double before = alloc.cost();
  alloc.move(0, 0);
  EXPECT_DOUBLE_EQ(alloc.cost(), before);
  EXPECT_EQ(alloc.count_of(0), 2u);
}

TEST(Allocation, MoveGainMatchesActualCostChange) {
  const Database db = small_db();
  Allocation alloc(db, 3, {0, 1, 2, 0});
  for (ItemId id = 0; id < db.size(); ++id) {
    for (ChannelId c = 0; c < 3; ++c) {
      const double predicted = alloc.move_gain(id, c);
      const double before = alloc.cost();
      Allocation copy = alloc;
      copy.move(id, c);
      EXPECT_NEAR(before - copy.cost(), predicted, 1e-12)
          << "item " << id << " -> channel " << c;
    }
  }
}

TEST(Allocation, MoveGainToOwnChannelIsZero) {
  const Database db = small_db();
  const Allocation alloc(db, 2, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(alloc.move_gain(0, 0), 0.0);
}

TEST(Allocation, ItemsInReturnsAscendingIds) {
  const Database db = small_db();
  const Allocation alloc(db, 2, {1, 0, 1, 0});
  EXPECT_EQ(alloc.items_in(0), (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(alloc.items_in(1), (std::vector<ItemId>{0, 2}));
}

TEST(Allocation, ValidateAcceptsConsistentState) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  alloc.move(2, 1);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
}

TEST(Allocation, RejectsBadConstruction) {
  const Database db = small_db();
  EXPECT_THROW(Allocation(db, 0), ContractViolation);
  EXPECT_THROW(Allocation(db, 2, {0, 1, 0}), ContractViolation);    // short
  EXPECT_THROW(Allocation(db, 2, {0, 1, 0, 2}), ContractViolation); // channel 2
}

TEST(Allocation, RejectsOutOfRangeQueries) {
  const Database db = small_db();
  const Allocation alloc(db, 2, {0, 1, 0, 1});
  EXPECT_THROW(alloc.freq_of(2), ContractViolation);
  EXPECT_THROW(alloc.channel_of(9), ContractViolation);
  EXPECT_THROW(alloc.move_gain(9, 0), ContractViolation);
}

TEST(Allocation, IncrementalCostStaysExactOverManyMoves) {
  const Database db = generate_database({.items = 60, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 3});
  Allocation alloc(db, 5);
  Rng rng(4);
  for (int step = 0; step < 2000; ++step) {
    const ItemId id = static_cast<ItemId>(rng.below(db.size()));
    const ChannelId to = static_cast<ChannelId>(rng.below(5));
    alloc.move(id, to);
  }
  EXPECT_NEAR(alloc.cost(), alloc.cost_recomputed(), 1e-9);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
}

}  // namespace

// Test-only peer declared as a friend in allocation.h: corrupts internal
// state so validate()'s failure paths can be exercised. Must live at
// namespace dbs scope (friendship does not extend into the anonymous
// namespace).
struct AllocationTestPeer {
  static void set_assignment(Allocation& a, ItemId id, ChannelId c) {
    a.assignment_[id] = c;
  }
  static void set_cached_freq(Allocation& a, ChannelId c, double v) {
    a.freq_[c] = v;
  }
  static void set_cached_size(Allocation& a, ChannelId c, double v) {
    a.size_[c] = v;
  }
  static void set_cached_count(Allocation& a, ChannelId c, std::size_t n) {
    a.count_[c] = n;
  }
  static void shrink_assignment(Allocation& a) { a.assignment_.pop_back(); }
};

namespace {

TEST(AllocationValidate, CatchesOutOfRangeChannel) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::set_assignment(alloc, 2, 7);
  std::string error;
  EXPECT_FALSE(alloc.validate(&error));
  EXPECT_NE(error.find("item 2"), std::string::npos) << error;
  EXPECT_NE(error.find("out-of-range channel 7"), std::string::npos) << error;
}

TEST(AllocationValidate, CatchesCorruptedFrequencyAggregate) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::set_cached_freq(alloc, 1, 0.999);
  std::string error;
  EXPECT_FALSE(alloc.validate(&error));
  EXPECT_NE(error.find("channel 1"), std::string::npos) << error;
  EXPECT_NE(error.find("diverge"), std::string::npos) << error;
}

TEST(AllocationValidate, CatchesCorruptedSizeAggregate) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::set_cached_size(alloc, 0, 123.0);
  std::string error;
  EXPECT_FALSE(alloc.validate(&error));
  EXPECT_NE(error.find("channel 0"), std::string::npos) << error;
}

TEST(AllocationValidate, CatchesCorruptedCount) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::set_cached_count(alloc, 0, 3);
  std::string error;
  EXPECT_FALSE(alloc.validate(&error));
  EXPECT_NE(error.find("diverge"), std::string::npos) << error;
}

TEST(AllocationValidate, CatchesAssignmentSizeMismatch) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::shrink_assignment(alloc);
  std::string error;
  EXPECT_FALSE(alloc.validate(&error));
  EXPECT_NE(error.find("size mismatch"), std::string::npos) << error;
}

TEST(AllocationValidate, NullErrorPointerIsAccepted) {
  const Database db = small_db();
  Allocation alloc(db, 2, {0, 1, 0, 1});
  AllocationTestPeer::set_cached_freq(alloc, 0, -1.0);
  EXPECT_FALSE(alloc.validate());       // must not dereference nullptr
  EXPECT_TRUE(Allocation(db, 2).validate());
}

}  // namespace
}  // namespace dbs
