#include "baselines/annealing.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/flat.h"
#include "common/check.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

AnnealOptions quick_anneal(std::uint64_t seed = 7) {
  AnnealOptions o;
  o.steps = 40'000;
  o.seed = seed;
  return o;
}

TEST(Annealing, ProducesValidAllocation) {
  const Database db = generate_database({.items = 50, .diversity = 2.0, .seed = 1});
  const AnnealResult r = run_annealing(db, 5, quick_anneal());
  std::string error;
  EXPECT_TRUE(r.allocation.validate(&error)) << error;
  EXPECT_NEAR(r.cost, r.allocation.cost(), 1e-12);
  EXPECT_GT(r.accepted, 0u);
}

TEST(Annealing, DeterministicForFixedSeed) {
  const Database db = generate_database({.items = 40, .seed = 2});
  const AnnealResult a = run_annealing(db, 4, quick_anneal(3));
  const AnnealResult b = run_annealing(db, 4, quick_anneal(3));
  EXPECT_EQ(a.allocation.assignment(), b.allocation.assignment());
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Annealing, BeatsItsGreedyStartingPoint) {
  const Database db = generate_database({.items = 100, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 3});
  const double greedy_cost = flat_round_robin(db, 6).cost();  // loose yardstick
  const AnnealResult r = run_annealing(db, 6, quick_anneal());
  EXPECT_LT(r.cost, greedy_cost);
}

TEST(Annealing, NearExactOptimumOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Database db = generate_database({.items = 12, .diversity = 2.0,
                                           .seed = seed});
    const auto exact = brute_force_optimal(db, 3);
    ASSERT_TRUE(exact.has_value());
    const AnnealResult r = run_annealing(db, 3, quick_anneal(seed));
    EXPECT_LE(r.cost, exact->cost * 1.02 + 1e-12) << "seed " << seed;
    EXPECT_GE(r.cost, exact->cost - 1e-9) << "seed " << seed;
  }
}

TEST(Annealing, CompetitiveWithDrpCds) {
  // SA is a reference metaheuristic: within 10% of DRP-CDS on the paper's
  // default workload (usually much closer).
  const Database db = generate_database({.items = 120, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 4});
  const double heuristic = run_drp_cds(db, 6).final_cost;
  const AnnealResult r = run_annealing(db, 6, quick_anneal());
  EXPECT_LT(r.cost, 1.10 * heuristic);
}

TEST(Annealing, RandomStartAlsoWorks) {
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 5});
  AnnealOptions o = quick_anneal();
  o.start_from_greedy = false;
  const AnnealResult r = run_annealing(db, 5, o);
  std::string error;
  EXPECT_TRUE(r.allocation.validate(&error)) << error;
  // Must end far below the expected random-assignment cost.
  EXPECT_LT(r.cost, flat_round_robin(db, 5).cost());
}

TEST(Annealing, SingleChannelTrivial) {
  const Database db = generate_database({.items = 8, .seed = 6});
  const AnnealResult r = run_annealing(db, 1, quick_anneal());
  EXPECT_NEAR(r.cost, db.total_size(), 1e-9);
  EXPECT_EQ(r.accepted, 0u);
}

TEST(Annealing, RejectsBadOptions) {
  const Database db = generate_database({.items = 8, .seed = 7});
  AnnealOptions bad = quick_anneal();
  bad.initial_temperature = 0.0;
  EXPECT_THROW(run_annealing(db, 2, bad), ContractViolation);
  bad = quick_anneal();
  bad.cooling = 1.5;
  EXPECT_THROW(run_annealing(db, 2, bad), ContractViolation);
  EXPECT_THROW(run_annealing(db, 9, quick_anneal()), ContractViolation);
}

}  // namespace
}  // namespace dbs
