#include <gtest/gtest.h>

#include "baselines/flat.h"
#include "baselines/greedy.h"
#include "baselines/ordered_dp.h"
#include "baselines/vfk.h"
#include "common/check.h"
#include "core/drp.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(FlatRoundRobin, SpreadsItemsEvenly) {
  const Database db = generate_database({.items = 12, .seed = 1});
  const Allocation alloc = flat_round_robin(db, 4);
  for (ChannelId c = 0; c < 4; ++c) EXPECT_EQ(alloc.count_of(c), 3u);
  EXPECT_EQ(alloc.channel_of(0), 0u);
  EXPECT_EQ(alloc.channel_of(5), 1u);
}

TEST(FlatRoundRobin, MoreChannelsThanItemsLeavesEmpties) {
  const Database db = generate_database({.items = 3, .seed = 2});
  const Allocation alloc = flat_round_robin(db, 5);
  EXPECT_EQ(alloc.count_of(3), 0u);
  EXPECT_EQ(alloc.count_of(4), 0u);
}

TEST(FlatSizeBalanced, BalancesAggregateSizes) {
  const Database db = generate_database({.items = 100, .diversity = 2.0, .seed = 3});
  const Allocation alloc = flat_size_balanced(db, 5);
  double min_z = alloc.size_of(0);
  double max_z = alloc.size_of(0);
  for (ChannelId c = 1; c < 5; ++c) {
    min_z = std::min(min_z, alloc.size_of(c));
    max_z = std::max(max_z, alloc.size_of(c));
  }
  // LPT keeps the spread within the largest single item.
  double max_item = 0.0;
  for (const Item& it : db.items()) max_item = std::max(max_item, it.size);
  EXPECT_LE(max_z - min_z, max_item + 1e-9);
}

TEST(Greedy, ValidPartitionAndBeatsRoundRobinOnAverage) {
  // On any single draw greedy can lose to round-robin by a hair (it is
  // myopic); across seeds it must win clearly.
  double greedy_total = 0.0;
  double flat_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Database db = generate_database({.items = 120, .skewness = 1.0,
                                           .diversity = 2.0, .seed = seed});
    const Allocation greedy = greedy_insertion(db, 6);
    std::string error;
    EXPECT_TRUE(greedy.validate(&error)) << error;
    greedy_total += greedy.cost();
    flat_total += flat_round_robin(db, 6).cost();
  }
  EXPECT_LT(greedy_total, flat_total);
}

TEST(Greedy, FillsAllChannelsWhenSkewed) {
  const Database db = generate_database({.items = 60, .skewness = 1.2,
                                         .diversity = 2.0, .seed = 5});
  const Allocation greedy = greedy_insertion(db, 4);
  for (ChannelId c = 0; c < 4; ++c) EXPECT_GT(greedy.count_of(c), 0u);
}

TEST(Vfk, ValidPartitionWithAllChannelsUsed) {
  const Database db = generate_database({.items = 80, .seed = 6});
  const Allocation alloc = run_vfk(db, 6);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
  for (ChannelId c = 0; c < 6; ++c) EXPECT_GT(alloc.count_of(c), 0u);
}

TEST(Vfk, GroupsAreContiguousInFrequencyOrder) {
  const Database db = generate_database({.items = 50, .skewness = 1.0, .seed = 7});
  const Allocation alloc = run_vfk(db, 5);
  const auto order = db.ids_by_freq_desc();
  // Channel indices must be non-decreasing along the frequency order.
  ChannelId prev = alloc.channel_of(order[0]);
  for (ItemId idx = 1; idx < order.size(); ++idx) {
    const ChannelId c = alloc.channel_of(order[idx]);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Vfk, OptimalUnderEqualSizes) {
  // With Φ = 0 (all sizes 1) VF^K solves the true objective exactly, so no
  // algorithm restricted to the same problem may beat it.
  const Database db = generate_database({.items = 40, .skewness = 1.0,
                                         .diversity = 0.0, .seed = 8});
  const double vfk = run_vfk(db, 4).cost();
  const double drpcds = run_drp_cds(db, 4).final_cost;
  EXPECT_LE(vfk, drpcds + 1e-9);
}

TEST(Vfk, SuffersUnderHighDiversity) {
  // The paper's headline: frequency-only allocation degrades as Φ grows.
  double vfk_total = 0.0;
  double drp_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Database db = generate_database({.items = 100, .skewness = 0.8,
                                           .diversity = 3.0, .seed = seed});
    vfk_total += run_vfk(db, 6).cost();
    drp_total += run_drp_cds(db, 6).final_cost;
  }
  EXPECT_GT(vfk_total, 1.15 * drp_total);
}

TEST(Vfk, SingleChannelAndKEqualsN) {
  const Database db = generate_database({.items = 10, .seed = 9});
  EXPECT_EQ(run_vfk(db, 1).count_of(0), 10u);
  const Allocation singletons = run_vfk(db, 10);
  for (ChannelId c = 0; c < 10; ++c) EXPECT_EQ(singletons.count_of(c), 1u);
}

TEST(Vfk, RejectsTooManyChannels) {
  const Database db = generate_database({.items = 4, .seed = 10});
  EXPECT_THROW(run_vfk(db, 5), ContractViolation);
}

TEST(OrderedDp, NeverWorseThanDrpOnSameOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Database db = generate_database({.items = 70, .skewness = 0.9,
                                           .diversity = 2.0, .seed = seed});
    const double dp = ordered_dp_optimal(db, 6).cost();
    const double drp = run_drp(db, 6).allocation.cost();
    EXPECT_LE(dp, drp + 1e-9) << "seed " << seed;
  }
}

TEST(OrderedDp, ContiguousInBrOrder) {
  const Database db = generate_database({.items = 45, .seed = 11});
  const Allocation alloc = ordered_dp_optimal(db, 5);
  const auto order = db.ids_by_benefit_ratio_desc();
  ChannelId prev = alloc.channel_of(order[0]);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const ChannelId c = alloc.channel_of(order[i]);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(OrderedDp, MatchesBestSplitForTwoChannels) {
  const Database db = generate_database({.items = 30, .seed = 12});
  const double dp = ordered_dp_optimal(db, 2).cost();
  const double drp = run_drp(db, 2).allocation.cost();
  // For K=2 DRP's single split is already optimal among contiguous splits.
  EXPECT_NEAR(dp, drp, 1e-9);
}

TEST(AllBaselines, EveryChannelCountProducesValidPartitions) {
  const Database db = generate_database({.items = 30, .diversity = 1.5, .seed = 13});
  for (ChannelId k = 1; k <= 10; ++k) {
    for (const Allocation& alloc :
         {flat_round_robin(db, k), flat_size_balanced(db, k), greedy_insertion(db, k),
          run_vfk(db, k), ordered_dp_optimal(db, k)}) {
      std::string error;
      EXPECT_TRUE(alloc.validate(&error)) << "k=" << k << ": " << error;
    }
  }
}

}  // namespace
}  // namespace dbs
