#include "baselines/brute_force.h"

#include <gtest/gtest.h>

#include "baselines/flat.h"
#include "baselines/greedy.h"
#include "baselines/ordered_dp.h"
#include "baselines/vfk.h"
#include "common/check.h"
#include "core/drp_cds.h"
#include "workload/generator.h"
#include "workload/paper_example.h"

namespace dbs {
namespace {

TEST(BruteForce, TwoItemsTwoChannels) {
  const Database db({10.0, 1.0}, {0.5, 0.5});
  const auto r = brute_force_optimal(db, 2);
  ASSERT_TRUE(r.has_value());
  // Separating them: 0.5*10 + 0.5*1 = 5.5; together: 1*11 = 11.
  EXPECT_NEAR(r->cost, 5.5, 1e-12);
  EXPECT_NE(r->allocation.channel_of(0), r->allocation.channel_of(1));
}

TEST(BruteForce, MatchesExhaustiveDefinitionOnTinyInstance) {
  // 6 items, 2 channels: enumerate all 2^6 assignments directly and compare.
  const Database db = generate_database({.items = 6, .diversity = 2.0, .seed = 1});
  double best = 1e18;
  for (unsigned mask = 0; mask < 64; ++mask) {
    std::vector<ChannelId> a(6);
    for (int i = 0; i < 6; ++i) a[i] = (mask >> i) & 1u;
    best = std::min(best, Allocation(db, 2, a).cost());
  }
  const auto r = brute_force_optimal(db, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->cost, best, 1e-12);
}

TEST(BruteForce, LowerBoundsEveryHeuristic) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Database db = generate_database({.items = 13, .skewness = 0.9,
                                           .diversity = 2.0, .seed = seed});
    const auto exact = brute_force_optimal(db, 4);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(exact->cost, run_drp_cds(db, 4).final_cost + 1e-9);
    EXPECT_LE(exact->cost, run_vfk(db, 4).cost() + 1e-9);
    EXPECT_LE(exact->cost, greedy_insertion(db, 4).cost() + 1e-9);
    EXPECT_LE(exact->cost, ordered_dp_optimal(db, 4).cost() + 1e-9);
    EXPECT_LE(exact->cost, flat_round_robin(db, 4).cost() + 1e-9);
  }
}

TEST(BruteForce, CostMatchesItsOwnAllocation) {
  const Database db = generate_database({.items = 10, .seed = 2});
  const auto r = brute_force_optimal(db, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->cost, r->allocation.cost(), 1e-12);
  std::string error;
  EXPECT_TRUE(r->allocation.validate(&error)) << error;
}

TEST(BruteForce, PaperExampleOptimumIsAtMostCdsLocalOptimum) {
  const Database db = paper_table2_database();
  const auto exact = brute_force_optimal(db, 5);
  ASSERT_TRUE(exact.has_value());
  // The paper reports CDS reaching 22.29; the global optimum can only be
  // lower or equal, and the paper's "very close to optimum" claim implies it
  // is not far below.
  EXPECT_LE(exact->cost, 22.30);
  EXPECT_GE(exact->cost, 20.0);
}

TEST(BruteForce, NodeBudgetAborts) {
  const Database db = generate_database({.items = 14, .seed = 3});
  const auto r = brute_force_optimal(db, 4, {.max_nodes = 10});
  EXPECT_FALSE(r.has_value());
}

TEST(BruteForce, SingleChannel) {
  const Database db = generate_database({.items = 8, .seed = 4});
  const auto r = brute_force_optimal(db, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->cost, db.total_size(), 1e-9);
}

TEST(BruteForce, MoreChannelsNeverHurts) {
  const Database db = generate_database({.items = 10, .diversity = 1.5, .seed = 5});
  double prev = 1e18;
  for (ChannelId k = 1; k <= 5; ++k) {
    const auto r = brute_force_optimal(db, k);
    ASSERT_TRUE(r.has_value());
    EXPECT_LE(r->cost, prev + 1e-12);
    prev = r->cost;
  }
}

TEST(BruteForce, RejectsBadChannelCount) {
  const Database db = generate_database({.items = 3, .seed = 6});
  EXPECT_THROW(brute_force_optimal(db, 0), ContractViolation);
  EXPECT_THROW(brute_force_optimal(db, 4), ContractViolation);
}

}  // namespace
}  // namespace dbs
