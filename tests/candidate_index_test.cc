#include "core/candidate_index.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/cds.h"
#include "core/drp.h"
#include "workload/generator.h"

namespace dbs {
namespace {

// The index's one correctness obligation: at every step its best_move() must
// equal the scan engine's exhaustive best_move() — same item, same target,
// bit-identical gain (both compute Eq. 4 with the same expression).
void expect_matches_scan(Allocation& alloc, CandidateIndex& index,
                         const char* context) {
  const CdsMove scan = best_move(alloc);
  const CdsMove indexed = index.best_move();
  ASSERT_EQ(scan.item, indexed.item) << context;
  ASSERT_EQ(scan.from, indexed.from) << context;
  ASSERT_EQ(scan.to, indexed.to) << context;
  ASSERT_DOUBLE_EQ(scan.gain, indexed.gain) << context;
}

TEST(CandidateIndex, AgreesWithScanOnFreshAllocations) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Database db = generate_database({.items = 40 + seed * 10,
                                           .skewness = 0.5 + 0.05 * seed,
                                           .diversity = 2.0, .seed = seed});
    Allocation alloc = run_drp(db, static_cast<ChannelId>(2 + seed)).allocation;
    CandidateIndex index(alloc);
    expect_matches_scan(alloc, index, "fresh DRP allocation");
  }
}

TEST(CandidateIndex, AgreesWithScanAlongAGreedyTrajectory) {
  const Database db = generate_database({.items = 90, .skewness = 0.7,
                                         .diversity = 2.5, .seed = 21});
  Allocation alloc(db, 6);  // everything on channel 0: long improvement run
  CandidateIndex index(alloc);
  for (int step = 0; step < 400; ++step) {
    const CdsMove move = index.best_move();
    expect_matches_scan(alloc, index, "greedy trajectory");
    if (move.gain <= 1e-12) break;
    index.apply(move);
  }
  EXPECT_LE(best_move(alloc).gain, 1e-12) << "trajectory must end at the optimum";
}

TEST(CandidateIndex, AgreesWithScanUnderArbitraryMoves) {
  // apply() accepts any legal move, not just the one best_move() returned.
  // A random walk exercises the fold/repair machinery under dynamics a
  // greedy descent never produces (cost-increasing moves, revisits).
  const Database db = generate_database({.items = 60, .diversity = 3.0, .seed = 22});
  const ChannelId k = 5;
  Allocation alloc(db, k, [&] {
    Rng rng(7);
    std::vector<ChannelId> start(db.size());
    for (auto& c : start) c = static_cast<ChannelId>(rng.below(k));
    return start;
  }());
  CandidateIndex index(alloc);
  Rng rng(99);
  for (int step = 0; step < 200; ++step) {
    expect_matches_scan(alloc, index, "random walk");
    const ItemId item = static_cast<ItemId>(rng.below(db.size()));
    ChannelId to = static_cast<ChannelId>(rng.below(k));
    if (to == alloc.assignment()[item]) to = static_cast<ChannelId>((to + 1) % k);
    index.apply(CdsMove{item, alloc.assignment()[item], to, 0.0});
  }
}

TEST(CandidateIndex, AgedIndexAgreesWithFreshlyBuiltIndex) {
  // After many incremental folds, the cached columns must equal what a
  // from-scratch construction computes — the repair path may not drift.
  const Database db = generate_database({.items = 70, .diversity = 2.0, .seed = 23});
  Allocation alloc(db, 6);
  CandidateIndex aged(alloc);
  for (int step = 0; step < 50; ++step) {
    const CdsMove move = aged.best_move();
    if (move.gain <= 1e-12) break;
    aged.apply(move);
  }
  const CdsMove from_aged = aged.best_move();
  CandidateIndex fresh(alloc);
  const CdsMove from_fresh = fresh.best_move();
  EXPECT_EQ(from_aged.item, from_fresh.item);
  EXPECT_EQ(from_aged.to, from_fresh.to);
  EXPECT_DOUBLE_EQ(from_aged.gain, from_fresh.gain);
}

TEST(CandidateIndex, CountsWorkAndRepairs) {
  const Database db = generate_database({.items = 50, .diversity = 2.0, .seed = 24});
  Allocation alloc(db, 4);
  CandidateIndex index(alloc);
  const std::size_t evals_at_build = index.moves_evaluated();
  EXPECT_GT(evals_at_build, 0u) << "construction materializes candidate gains";
  EXPECT_EQ(index.repairs(), 0u) << "nothing to repair before the first move";
  const CdsMove move = index.best_move();
  ASSERT_GT(move.gain, 0.0);
  index.apply(move);
  index.best_move();  // folds the pending move
  EXPECT_GT(index.repairs(), 0u) << "a move must disturb at least its own pair";
  EXPECT_GT(index.moves_evaluated(), evals_at_build);
}

TEST(CandidateIndex, RequiresTwoChannels) {
  const Database db = generate_database({.items = 10, .seed = 25});
  Allocation alloc(db, 1);
  EXPECT_THROW(CandidateIndex index(alloc), ContractViolation);
}

TEST(CandidateIndex, RejectsBackToBackApplies) {
  const Database db = generate_database({.items = 20, .seed = 26});
  Allocation alloc(db, 3);
  CandidateIndex index(alloc);
  const CdsMove move = index.best_move();
  ASSERT_GT(move.gain, 0.0);
  index.apply(move);
  // The fold in best_move() must run before the next apply.
  EXPECT_THROW(index.apply(move), ContractViolation);
}

}  // namespace
}  // namespace dbs
