#include "workload/catalog_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dbs {
namespace {

TEST(CatalogIo, ParsesBasicFile) {
  std::istringstream in(
      "# comment\n"
      "size,freq,name\n"
      "10.5,0.5,video.mp4\n"
      "\n"
      "2,0.25,page.html\n"
      "1,0.25\n");
  const Catalog catalog = load_catalog(in);
  ASSERT_EQ(catalog.database.size(), 3u);
  EXPECT_DOUBLE_EQ(catalog.database.item(0).size, 10.5);
  EXPECT_DOUBLE_EQ(catalog.database.item(0).freq, 0.5);
  EXPECT_EQ(catalog.name_of(0), "video.mp4");
  EXPECT_EQ(catalog.name_of(2), "d3");  // no name column on that row
}

TEST(CatalogIo, NormalizesFrequencies) {
  std::istringstream in("1,3\n1,1\n");
  const Catalog catalog = load_catalog(in);
  EXPECT_DOUBLE_EQ(catalog.database.item(0).freq, 0.75);
}

TEST(CatalogIo, HeaderIsOptional) {
  std::istringstream in("4,0.6\n2,0.4\n");
  EXPECT_EQ(load_catalog(in).database.size(), 2u);
}

TEST(CatalogIo, RejectsMalformedLines) {
  {
    std::istringstream in("1\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
  {
    std::istringstream in("1,2,3,4\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
  {
    std::istringstream in("abc,0.5\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
  {
    std::istringstream in("1.5x,0.5\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
  {
    std::istringstream in("-2,0.5\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
  {
    std::istringstream in("2,-0.5\n");
    EXPECT_THROW(load_catalog(in), std::runtime_error);
  }
}

TEST(CatalogIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("1,0.5\n2,0.5\nbroken\n");
  try {
    load_catalog(in);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(CatalogIo, EmptyFileRejected) {
  std::istringstream in("# only comments\n\n");
  EXPECT_THROW(load_catalog(in), std::runtime_error);
}

TEST(CatalogIo, MissingFileRejected) {
  EXPECT_THROW(load_catalog_file("/no/such/catalog.csv"), std::runtime_error);
}

TEST(CatalogIo, StoreLoadRoundTrip) {
  std::istringstream in("10,0.5,a\n30,0.3,b\n60,0.2,c\n");
  const Catalog original = load_catalog(in);
  std::ostringstream out;
  store_catalog(out, original);
  std::istringstream back(out.str());
  const Catalog reloaded = load_catalog(back);
  ASSERT_EQ(reloaded.database.size(), original.database.size());
  for (ItemId id = 0; id < original.database.size(); ++id) {
    EXPECT_DOUBLE_EQ(reloaded.database.item(id).size, original.database.item(id).size);
    EXPECT_NEAR(reloaded.database.item(id).freq, original.database.item(id).freq, 1e-12);
    EXPECT_EQ(reloaded.name_of(id), original.name_of(id));
  }
}

TEST(CatalogIo, LoadsPaperSampleFromRepo) {
  // The shipped sample catalogue is the paper's Table 2 profile.
  const Catalog catalog = load_catalog_file(
      std::string(DBS_SOURCE_DIR) + "/examples/data/sample_catalog.csv");
  EXPECT_EQ(catalog.database.size(), 15u);
  EXPECT_NEAR(catalog.database.total_size(), 135.60, 1e-9);
  EXPECT_EQ(catalog.name_of(10), "d11");
}

}  // namespace
}  // namespace dbs
