#include "core/cds.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/check.h"
#include "core/drp.h"
#include "workload/generator.h"

namespace dbs {
namespace {

// Sets DBS_CDS_ENGINE for one test body and restores the previous state on
// scope exit, so a failing assertion can't leak the override into later tests.
class ScopedEngineEnv {
 public:
  explicit ScopedEngineEnv(const char* value) {
    if (const char* prev = std::getenv("DBS_CDS_ENGINE")) saved_ = prev;
    ::setenv("DBS_CDS_ENGINE", value, /*overwrite=*/1);
  }
  ~ScopedEngineEnv() {
    if (saved_.empty()) {
      ::unsetenv("DBS_CDS_ENGINE");
    } else {
      ::setenv("DBS_CDS_ENGINE", saved_.c_str(), /*overwrite=*/1);
    }
  }

 private:
  std::string saved_;
};

TEST(BestMove, FindsKnownImprovement) {
  // Channel 0 = {popular small d0, huge cold d2}, channel 1 = {popular small
  // d1}. By Eq. (4) the best move is d0 → channel 1 with
  // Δc = 0.45·(101−1) + 1·(0.55−0.45) − 2·0.45·1 = 44.2 (moving the huge item
  // instead gains exactly 0).
  const Database db({1.0, 1.0, 100.0}, {0.45, 0.45, 0.10});
  Allocation alloc(db, 2, {0, 1, 0});
  const CdsMove move = best_move(alloc);
  EXPECT_EQ(move.item, 0u);
  EXPECT_EQ(move.from, 0u);
  EXPECT_EQ(move.to, 1u);
  EXPECT_NEAR(move.gain, 44.2, 1e-9);
  EXPECT_NEAR(alloc.move_gain(2, 1), 0.0, 1e-12);
}

TEST(BestMove, GainAgreesWithAllocationMoveGain) {
  const Database db = generate_database({.items = 30, .seed = 1});
  Allocation alloc = run_drp(db, 4).allocation;
  const CdsMove move = best_move(alloc);
  EXPECT_DOUBLE_EQ(move.gain, alloc.move_gain(move.item, move.to));
}

TEST(BestMove, AtLocalOptimumGainIsNonPositive) {
  const Database db = generate_database({.items = 25, .seed = 2});
  Allocation alloc = run_drp(db, 3).allocation;
  run_cds(alloc);
  EXPECT_LE(best_move(alloc).gain, 1e-12);
}

TEST(Cds, CostNeverIncreasesAndConverges) {
  const Database db = generate_database({.items = 100, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 3});
  Allocation alloc = run_drp(db, 6).allocation;
  const double before = alloc.cost();
  const CdsStats stats = run_cds(alloc);
  EXPECT_LE(alloc.cost(), before + 1e-12);
  EXPECT_TRUE(stats.converged);
  EXPECT_DOUBLE_EQ(stats.initial_cost, before);
  EXPECT_NEAR(stats.final_cost, alloc.cost(), 1e-12);
  EXPECT_NEAR(stats.total_reduction(), before - alloc.cost(), 1e-12);
}

TEST(Cds, EachIterationStrictlyDecreasesCost) {
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 4});
  Allocation alloc = run_drp(db, 5).allocation;
  double prev = alloc.cost();
  // Step manually: one iteration at a time.
  for (int step = 0; step < 1000; ++step) {
    CdsOptions one;
    one.max_iterations = 1;
    const CdsStats stats = run_cds(alloc, one);
    if (stats.iterations == 0) break;
    EXPECT_LT(alloc.cost(), prev);
    prev = alloc.cost();
  }
  EXPECT_LE(best_move(alloc).gain, 1e-12);
}

TEST(Cds, IdempotentAtLocalOptimum) {
  const Database db = generate_database({.items = 40, .seed = 5});
  Allocation alloc = run_drp(db, 4).allocation;
  run_cds(alloc);
  const auto frozen = alloc.assignment();
  const CdsStats again = run_cds(alloc);
  EXPECT_EQ(again.iterations, 0u);
  EXPECT_EQ(alloc.assignment(), frozen);
}

TEST(Cds, RespectsIterationBudget) {
  const Database db = generate_database({.items = 150, .skewness = 0.4,
                                         .diversity = 3.0, .seed = 6});
  Allocation alloc(db, 8);  // everything on channel 0: far from optimal
  // Distribute something first so moves exist both ways.
  CdsOptions capped;
  capped.max_iterations = 3;
  const CdsStats stats = run_cds(alloc, capped);
  EXPECT_LE(stats.iterations, 3u);
}

TEST(Cds, FirstImprovementReachesLocalOptimumToo) {
  const Database db = generate_database({.items = 70, .diversity = 2.0, .seed = 7});
  Allocation best_alloc = run_drp(db, 5).allocation;
  Allocation first_alloc = best_alloc;
  run_cds(best_alloc, {.policy = CdsPolicy::kBestImprovement});
  run_cds(first_alloc, {.policy = CdsPolicy::kFirstImprovement});
  // Both are local optima of the same neighbourhood.
  EXPECT_LE(best_move(best_alloc).gain, 1e-12);
  EXPECT_LE(best_move(first_alloc).gain, 1e-12);
}

TEST(Cds, ImprovesAPoorStartSubstantially) {
  // All items on one channel with K available: CDS alone must spread them.
  const Database db = generate_database({.items = 50, .skewness = 1.0,
                                         .diversity = 1.5, .seed = 8});
  Allocation alloc(db, 5);
  const double before = alloc.cost();
  run_cds(alloc);
  EXPECT_LT(alloc.cost(), 0.8 * before);
  // No channel may end up with everything if spreading helps.
  std::size_t nonempty = 0;
  for (ChannelId c = 0; c < 5; ++c) nonempty += alloc.count_of(c) > 0;
  EXPECT_GT(nonempty, 1u);
}

TEST(Cds, SingleChannelNothingToDo) {
  const Database db = generate_database({.items = 10, .seed = 9});
  Allocation alloc(db, 1);
  const CdsStats stats = run_cds(alloc);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(Cds, SingleItemNothingToDo) {
  const Database db({5.0}, {1.0});
  Allocation alloc(db, 1);
  EXPECT_EQ(run_cds(alloc).iterations, 0u);
}

TEST(CdsIndexed, ProducesIdenticalResultToScanEngine) {
  // The indexed engine must replay the exact same move sequence, ending in
  // the identical assignment — across a spread of shapes.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Database db = generate_database({.items = 60 + seed * 15,
                                           .skewness = 0.6 + 0.1 * seed,
                                           .diversity = 2.0, .seed = seed});
    const ChannelId k = static_cast<ChannelId>(3 + seed);
    Allocation scan = run_drp(db, k).allocation;
    Allocation indexed = scan;
    const CdsStats s1 = run_cds(scan, {.engine = CdsEngine::kScan});
    const CdsStats s2 = run_cds(indexed, {.engine = CdsEngine::kIndexed});
    EXPECT_EQ(scan.assignment(), indexed.assignment()) << "seed " << seed;
    EXPECT_EQ(s1.iterations, s2.iterations) << "seed " << seed;
    EXPECT_DOUBLE_EQ(s1.final_cost, s2.final_cost) << "seed " << seed;
  }
}

TEST(CdsStatsWork, ScanCountsOneFullScanPerIterationPlusConvergenceCheck) {
  const Database db = generate_database({.items = 30, .seed = 41});
  Allocation alloc = run_drp(db, 4).allocation;
  const CdsStats stats = run_cds(alloc, {.engine = CdsEngine::kScan});
  // Best-improvement scans all N·(K−1) moves every iteration, and one final
  // scan discovers there is nothing left to apply.
  EXPECT_EQ(stats.moves_evaluated, (stats.iterations + 1) * 30 * (4 - 1));
  EXPECT_EQ(stats.index_repairs, 0u) << "kScan keeps no cache to repair";
}

TEST(CdsStatsWork, IndexedDoesStrictlyLessWorkThanScan) {
  // Same move sequence, far fewer Δc evaluations — the whole point of the
  // indexed engine, now directly visible in the stats. Each run pins its
  // engine through the env override so the comparison survives the CI
  // index-off job (which exports DBS_CDS_ENGINE=scan suite-wide).
  const Database db = generate_database({.items = 80, .diversity = 2.0, .seed = 42});
  Allocation scan(db, 5);
  Allocation indexed = scan;
  CdsStats s_scan, s_indexed;
  {
    const ScopedEngineEnv env("scan");
    s_scan = run_cds(scan, {.engine = CdsEngine::kScan});
  }
  {
    const ScopedEngineEnv env("indexed");
    s_indexed = run_cds(indexed, {.engine = CdsEngine::kIndexed});
  }
  ASSERT_GT(s_scan.iterations, 0u);
  EXPECT_GT(s_indexed.moves_evaluated, 0u);
  EXPECT_LT(s_indexed.moves_evaluated, s_scan.moves_evaluated);
  EXPECT_GT(s_indexed.index_repairs, 0u);
}

TEST(CdsStatsWork, FirstImprovementStopsScanningEarly) {
  const Database db = generate_database({.items = 50, .diversity = 2.0, .seed = 43});
  Allocation best(db, 5);
  Allocation first = best;
  const CdsStats s_best = run_cds(best, {.policy = CdsPolicy::kBestImprovement});
  const CdsStats s_first = run_cds(first, {.policy = CdsPolicy::kFirstImprovement});
  ASSERT_GT(s_first.iterations, 0u);
  // Per applied move, first-improvement must evaluate no more than the full
  // scan (it stops at the first improving candidate).
  EXPECT_LE(s_first.moves_evaluated / (s_first.iterations + 1),
            s_best.moves_evaluated / (s_best.iterations + 1));
}

TEST(CdsStatsWork, NoMovesMeansOneScanOnly) {
  const Database db = generate_database({.items = 20, .seed = 44});
  Allocation alloc = run_drp(db, 3).allocation;
  run_cds(alloc);  // reach the local optimum
  const CdsStats stats = run_cds(alloc);
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_EQ(stats.moves_evaluated, 20u * (3 - 1));
}

TEST(CdsIndexed, IdenticalFromArbitraryStartsToo) {
  const Database db = generate_database({.items = 90, .diversity = 2.5, .seed = 31});
  Rng rng(5);
  std::vector<ChannelId> start(db.size());
  for (auto& c : start) c = static_cast<ChannelId>(rng.below(7));
  Allocation scan(db, 7, start);
  Allocation indexed = scan;
  run_cds(scan, {.engine = CdsEngine::kScan});
  run_cds(indexed, {.engine = CdsEngine::kIndexed});
  EXPECT_EQ(scan.assignment(), indexed.assignment());
}

TEST(CdsIndexed, SingleChannelNoop) {
  const Database db = generate_database({.items = 10, .seed = 32});
  Allocation alloc(db, 1);
  const CdsStats stats = run_cds(alloc, {.engine = CdsEngine::kIndexed});
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_TRUE(stats.converged);
}

TEST(CdsIndexed, RespectsIterationBudget) {
  const Database db = generate_database({.items = 120, .diversity = 2.0, .seed = 33});
  Allocation alloc(db, 6);
  CdsOptions capped;
  capped.engine = CdsEngine::kIndexed;
  capped.max_iterations = 2;
  EXPECT_LE(run_cds(alloc, capped).iterations, 2u);
}

TEST(CdsEngineEnv, ScanOverrideDisablesTheIndex) {
  // The CI index-off job relies on this: DBS_CDS_ENGINE=scan must win even
  // when the caller explicitly asked for the indexed engine. The scan
  // engine's work signature — one full N·(K−1) sweep per iteration plus the
  // convergence check, zero cache repairs — is the observable proof.
  const ScopedEngineEnv env("scan");
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 51});
  Allocation alloc(db, 4);
  const CdsStats stats = run_cds(alloc, {.engine = CdsEngine::kIndexed});
  ASSERT_GT(stats.iterations, 0u);
  EXPECT_EQ(stats.moves_evaluated, (stats.iterations + 1) * 60 * (4 - 1));
  EXPECT_EQ(stats.index_repairs, 0u);
}

TEST(CdsEngineEnv, IndexedOverrideForcesTheIndexOnSmallRuns) {
  // Inverse direction: a problem far below kAutoIndexedThreshold, caller
  // asks for scan, env forces the index — visible as nonzero repairs.
  const ScopedEngineEnv env("indexed");
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 51});
  Allocation alloc(db, 4);
  const CdsStats stats = run_cds(alloc, {.engine = CdsEngine::kScan});
  ASSERT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.index_repairs, 0u);
}

TEST(CdsEngineEnv, OverrideDoesNotChangeTheResult) {
  const Database db = generate_database({.items = 70, .diversity = 2.5, .seed = 52});
  Allocation forced(db, 5);
  Allocation plain = forced;
  {
    const ScopedEngineEnv env("indexed");
    run_cds(forced, {.engine = CdsEngine::kScan});
  }
  run_cds(plain, {.engine = CdsEngine::kScan});
  EXPECT_EQ(forced.assignment(), plain.assignment());
}

TEST(CdsEngineEnv, RejectsUnknownValues) {
  const ScopedEngineEnv env("turbo");
  const Database db = generate_database({.items = 10, .seed = 53});
  Allocation alloc(db, 2);
  EXPECT_THROW(run_cds(alloc), ContractViolation);
}

TEST(Cds, AllocationStaysValidThroughout) {
  const Database db = generate_database({.items = 80, .diversity = 2.5, .seed = 10});
  Allocation alloc = run_drp(db, 7).allocation;
  run_cds(alloc);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
  EXPECT_NEAR(alloc.cost(), alloc.cost_recomputed(), 1e-9);
}

}  // namespace
}  // namespace dbs
