// Contract-macro semantics: ContractViolation diagnostics must carry the
// failing expression and file:line, DBS_CHECK_MSG must append the streamed
// message, and DBS_ASSERT must vanish (without unused-variable fallout or
// side effects) in NDEBUG builds.
#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace dbs {
namespace {

TEST(ContractViolation, MessageCarriesExpressionAndLocation) {
  const int expected_line = __LINE__ + 2;
  try {
    DBS_CHECK(1 + 1 == 3);
    FAIL() << "DBS_CHECK(false-y) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violation"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
    EXPECT_NE(what.find(':' + std::to_string(expected_line)), std::string::npos)
        << what;
  }
}

TEST(ContractViolation, CheckMsgAppendsStreamedMessage) {
  const int channels = 0;
  try {
    DBS_CHECK_MSG(channels > 0, "need " << 1 << " channel, got " << channels);
    FAIL() << "DBS_CHECK_MSG(false-y) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("channels > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("need 1 channel, got 0"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  }
}

TEST(ContractViolation, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(DBS_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(DBS_CHECK_MSG(true, "never shown"));
}

TEST(DbsAssert, OperandsStayReferencedButUnevaluatedInRelease) {
  // `guard` is referenced only from DBS_ASSERT; the ((void)sizeof(...))
  // NDEBUG expansion keeps it odr-visible, so this test building under
  // -Wall -Wextra -Werror (the DBS_WERROR CI leg) proves the
  // unused-variable regression stays fixed.
  const bool guard = true;
  int evaluations = 0;
  DBS_ASSERT(guard && ++evaluations > 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0) << "DBS_ASSERT evaluated its operand in NDEBUG";
  EXPECT_NO_THROW(DBS_ASSERT(false));
#else
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(DBS_ASSERT(false), ContractViolation);
#endif
}

}  // namespace
}  // namespace dbs
