#include "model/cost.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Cost, GroupCostIsProduct) {
  EXPECT_DOUBLE_EQ(group_cost(0.5, 20.0), 10.0);
  EXPECT_DOUBLE_EQ(group_cost(0.0, 100.0), 0.0);
}

TEST(Cost, SingleChannelMatchesIntroFormula) {
  // N items of equal size z on one channel: W = Nz/2b + z/b (paper §1).
  const std::size_t n = 10;
  const double z = 4.0;
  const double b = 2.0;
  const Database db(std::vector<double>(n, z), std::vector<double>(n, 1.0));
  const Allocation alloc(db, 1);
  const double expected = static_cast<double>(n) * z / (2.0 * b) + z / b;
  EXPECT_NEAR(program_waiting_time(alloc, b), expected, 1e-12);
  for (ItemId id = 0; id < n; ++id) {
    EXPECT_NEAR(item_waiting_time(alloc, id, b), expected, 1e-12);
  }
}

TEST(Cost, ItemWaitingTimeEq1) {
  const Database db({10.0, 30.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const double b = 10.0;
  // Z = 40 -> probe 2.0; downloads 1.0 and 3.0.
  EXPECT_NEAR(item_waiting_time(alloc, 0, b), 3.0, 1e-12);
  EXPECT_NEAR(item_waiting_time(alloc, 1, b), 5.0, 1e-12);
}

TEST(Cost, ChannelWaitingTimeIsFrequencyWeighted) {
  const Database db({10.0, 30.0}, {0.75, 0.25});
  const Allocation alloc(db, 1);
  const double b = 10.0;
  const double expected = 0.75 * 3.0 + 0.25 * 5.0;
  EXPECT_NEAR(channel_waiting_time(alloc, 0, b), expected, 1e-12);
}

TEST(Cost, EmptyChannelWaitingTimeIsZero) {
  const Database db({10.0}, {1.0});
  const Allocation alloc(db, 2, {0});
  EXPECT_DOUBLE_EQ(channel_waiting_time(alloc, 1, 10.0), 0.0);
}

TEST(Cost, ProgramWaitEqualsWeightedChannelWaits) {
  // Eq. 2 = Σ F_i · W^(i); verify across a random allocation.
  const Database db = generate_database({.items = 40, .skewness = 0.9,
                                         .diversity = 1.5, .seed = 11});
  std::vector<ChannelId> assignment(db.size());
  for (ItemId id = 0; id < db.size(); ++id) assignment[id] = id % 4;
  const Allocation alloc(db, 4, std::move(assignment));
  const double b = 10.0;
  double weighted = 0.0;
  for (ChannelId c = 0; c < 4; ++c) {
    weighted += alloc.freq_of(c) * channel_waiting_time(alloc, c, b);
  }
  EXPECT_NEAR(program_waiting_time(alloc, b), weighted, 1e-10);
}

TEST(Cost, ProgramWaitDecomposesIntoProbeAndDownload) {
  const Database db = generate_database({.items = 30, .seed = 2});
  const Allocation alloc(db, 3, std::vector<ChannelId>(30, 0));
  const double b = 7.0;
  EXPECT_NEAR(program_waiting_time(alloc, b),
              probe_component(alloc, b) + download_component(db, b), 1e-12);
}

TEST(Cost, DownloadComponentIsScheduleIndependent) {
  const Database db = generate_database({.items = 24, .seed = 5});
  const double b = 10.0;
  const Allocation a(db, 3, [&] {
    std::vector<ChannelId> v(24);
    for (ItemId i = 0; i < 24; ++i) v[i] = i % 3;
    return v;
  }());
  const Allocation c(db, 3, std::vector<ChannelId>(24, 1));
  // Different allocations, same download term.
  EXPECT_NEAR(download_component(a.database(), b), download_component(c.database(), b),
              1e-15);
}

TEST(Cost, ProbeComponentIsHalfCostOverBandwidth) {
  const Database db = generate_database({.items = 16, .seed = 6});
  const Allocation alloc(db, 2, [&] {
    std::vector<ChannelId> v(16);
    for (ItemId i = 0; i < 16; ++i) v[i] = i % 2;
    return v;
  }());
  EXPECT_NEAR(probe_component(alloc, 5.0), alloc.cost() / 10.0, 1e-12);
}

TEST(Cost, BandwidthScalesInversely) {
  const Database db = generate_database({.items = 20, .seed = 9});
  const Allocation alloc(db, 2, std::vector<ChannelId>(20, 0));
  EXPECT_NEAR(program_waiting_time(alloc, 20.0) * 2.0,
              program_waiting_time(alloc, 10.0), 1e-12);
}

TEST(Cost, RejectsNonPositiveBandwidth) {
  const Database db({1.0}, {1.0});
  const Allocation alloc(db, 1);
  EXPECT_THROW(program_waiting_time(alloc, 0.0), ContractViolation);
  EXPECT_THROW(item_waiting_time(alloc, 0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace dbs
