#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/strings.h"
#include "common/table.h"

namespace dbs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/dbs_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"k", "cost"});
    csv.row({"4", "1.5"});
    csv.row_values({5.0, 2.25});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "k,cost\n4,1.5\n5,2.25\n");
}

TEST_F(CsvTest, RejectsMismatchedRowWidth) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), ContractViolation);
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  EXPECT_EQ(slurp(path_), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterErrors, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(FormatDouble, RoundTripsExactly) {
  for (double v : {0.0, 1.5, -2.25, 1.0 / 3.0, 135.60, 1e-17, 12345678.9}) {
    const std::string s = format_double(v);
    double parsed = 0.0;
    std::sscanf(s.c_str(), "%lf", &parsed);
    EXPECT_DOUBLE_EQ(parsed, v) << "formatted as " << s;
  }
}

TEST(FormatFixed, PlacesRespected) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Padding, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"K", "drp", "gopt"});
  table.add_row("4", {1.25, 1.2}, 2);
  table.add_row("10", {0.5, 0.45}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("K"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("0.45"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable table({"a", "b"});
  table.add_row({std::vector<std::string>{"only"}});
  EXPECT_NO_THROW(table.render());
}

}  // namespace
}  // namespace dbs
