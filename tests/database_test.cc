#include "model/database.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace dbs {
namespace {

TEST(Item, BenefitRatio) {
  const Item it{0, 4.0, 0.2};
  EXPECT_DOUBLE_EQ(it.benefit_ratio(), 0.05);
}

TEST(Database, AssignsIdsInInputOrder) {
  const Database db({2.0, 3.0, 4.0}, {1.0, 1.0, 2.0});
  ASSERT_EQ(db.size(), 3u);
  for (ItemId id = 0; id < 3; ++id) EXPECT_EQ(db.item(id).id, id);
}

TEST(Database, NormalizesFrequencies) {
  const Database db({1.0, 1.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(db.item(0).freq, 0.75);
  EXPECT_DOUBLE_EQ(db.item(1).freq, 0.25);
}

TEST(Database, AlreadyNormalizedFrequenciesUnchanged) {
  const Database db({1.0, 1.0}, {0.6, 0.4});
  EXPECT_DOUBLE_EQ(db.item(0).freq, 0.6);
  EXPECT_DOUBLE_EQ(db.item(1).freq, 0.4);
}

TEST(Database, TotalAndWeightedSize) {
  const Database db({10.0, 20.0}, {0.25, 0.75});
  EXPECT_DOUBLE_EQ(db.total_size(), 30.0);
  EXPECT_DOUBLE_EQ(db.weighted_size(), 0.25 * 10.0 + 0.75 * 20.0);
}

TEST(Database, RejectsEmpty) {
  EXPECT_THROW(Database(std::vector<Item>{}), ContractViolation);
}

TEST(Database, RejectsNonPositiveSize) {
  EXPECT_THROW(Database({0.0}, {1.0}), ContractViolation);
  EXPECT_THROW(Database({-1.0}, {1.0}), ContractViolation);
}

TEST(Database, RejectsNegativeFrequency) {
  EXPECT_THROW(Database({1.0, 1.0}, {0.5, -0.1}), ContractViolation);
}

TEST(Database, RejectsAllZeroFrequencies) {
  EXPECT_THROW(Database({1.0, 1.0}, {0.0, 0.0}), ContractViolation);
}

TEST(Database, RejectsNonFiniteInput) {
  EXPECT_THROW(Database({std::nan("")}, {1.0}), ContractViolation);
  EXPECT_THROW(Database({1.0}, {std::numeric_limits<double>::infinity()}),
               ContractViolation);
}

TEST(Database, RejectsMismatchedArrays) {
  EXPECT_THROW(Database({1.0, 2.0}, {1.0}), ContractViolation);
}

TEST(Database, ItemLookupOutOfRangeThrows) {
  const Database db({1.0}, {1.0});
  EXPECT_THROW(db.item(1), ContractViolation);
}

TEST(Database, ZeroFrequencyItemsAllowed) {
  // Unpopular items with f = 0 are legal; they still occupy channel capacity.
  const Database db({1.0, 2.0}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(db.item(1).freq, 0.0);
}

TEST(Database, BenefitRatioOrderIsDescending) {
  const Database db({1.0, 2.0, 0.5, 4.0}, {0.1, 0.4, 0.2, 0.3});
  const auto order = db.ids_by_benefit_ratio_desc();
  ASSERT_EQ(order.size(), 4u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(db.item(order[i - 1]).benefit_ratio(),
              db.item(order[i]).benefit_ratio());
  }
}

TEST(Database, BenefitRatioOrderBreaksTiesById) {
  // Identical items: order must be stable by id.
  const Database db({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  const auto order = db.ids_by_benefit_ratio_desc();
  EXPECT_EQ(order, (std::vector<ItemId>{0, 1, 2}));
}

TEST(Database, FreqOrderIsDescending) {
  const Database db({1.0, 1.0, 1.0}, {0.2, 0.5, 0.3});
  const auto order = db.ids_by_freq_desc();
  EXPECT_EQ(order, (std::vector<ItemId>{1, 2, 0}));
}

}  // namespace
}  // namespace dbs
