#include "depend/queries.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/flat.h"
#include "common/check.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(QueryWorkload, GeneratorProducesValidQueries) {
  const Database db = generate_database({.items = 40, .seed = 1});
  const QueryWorkload workload =
      generate_query_workload(db, {.queries = 50, .max_items = 4, .seed = 2});
  ASSERT_EQ(workload.queries.size(), 50u);
  double freq = 0.0;
  for (const Query& q : workload.queries) {
    EXPECT_GE(q.items.size(), 1u);
    EXPECT_LE(q.items.size(), 4u);
    std::set<ItemId> unique(q.items.begin(), q.items.end());
    EXPECT_EQ(unique.size(), q.items.size()) << "duplicate item in query";
    for (ItemId id : q.items) EXPECT_LT(id, db.size());
    freq += q.freq;
  }
  EXPECT_NEAR(freq, 1.0, 1e-9);
}

TEST(QueryWorkload, DeterministicForFixedSeed) {
  const Database db = generate_database({.items = 30, .seed = 3});
  const QueryWorkloadConfig cfg{.queries = 20, .max_items = 3, .seed = 9};
  const QueryWorkload a = generate_query_workload(db, cfg);
  const QueryWorkload b = generate_query_workload(db, cfg);
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].items, b.queries[i].items);
  }
}

TEST(QueryWorkload, InducedFrequenciesCoverQueriedItems) {
  const Database db = generate_database({.items = 25, .seed = 4});
  const QueryWorkload workload =
      generate_query_workload(db, {.queries = 30, .max_items = 3, .seed = 5});
  const auto freq = workload.induced_item_frequencies(db.size());
  double sum = 0.0;
  for (double f : freq) sum += f;
  EXPECT_GT(sum, 0.99);  // ≥ total query mass; > 1 when queries overlap
  for (const Query& q : workload.queries) {
    for (ItemId id : q.items) EXPECT_GT(freq[id], 0.0);
  }
}

TEST(QueryLatency, SingleItemQueryMatchesProgramWait) {
  const Database db = generate_database({.items = 20, .seed = 6});
  const Allocation alloc = run_drp_cds(db, 3).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const Query q{{5}, 1.0};
  for (double t : {0.0, 1.3, 7.9}) {
    EXPECT_NEAR(query_latency_parallel(program, q, t), program.waiting_time(5, t),
                1e-12);
    EXPECT_NEAR(query_latency_sequential(program, q, t), program.waiting_time(5, t),
                1e-12);
  }
}

TEST(QueryLatency, ParallelNeverSlowerThanSequential) {
  const Database db = generate_database({.items = 50, .diversity = 1.5, .seed = 7});
  const Allocation alloc = run_drp_cds(db, 5).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const QueryWorkload workload =
      generate_query_workload(db, {.queries = 40, .max_items = 4, .seed = 8});
  for (const Query& q : workload.queries) {
    for (double t : {0.0, 3.7, 11.2}) {
      EXPECT_LE(query_latency_parallel(program, q, t),
                query_latency_sequential(program, q, t) + 1e-9);
    }
  }
}

TEST(QueryLatency, ParallelIsMaxOfItemWaits) {
  const Database db({10.0, 20.0, 30.0}, {0.4, 0.3, 0.3});
  std::vector<ChannelId> assignment = {0, 1, 1};
  const Allocation alloc(db, 2, std::move(assignment));
  const BroadcastProgram program(alloc, 10.0);
  const Query q{{0, 2}, 1.0};
  const double t = 0.3;
  const double expected = std::max(program.delivery_time(0, t),
                                   program.delivery_time(2, t)) - t;
  EXPECT_NEAR(query_latency_parallel(program, q, t), expected, 1e-12);
}

TEST(QueryLatency, SequentialGreedyHandComputed) {
  // Channel 0: item0 [0,1) cycle 1. Channel 1: item1 [0,2), item2 [2,5),
  // cycle 5 (b=10, sizes 10/20/30).
  const Database db({10.0, 20.0, 30.0}, {0.4, 0.3, 0.3});
  const Allocation alloc(db, 2, {0, 1, 1});
  const BroadcastProgram program(alloc, 10.0);
  const Query q{{0, 1, 2}, 1.0};
  // t=0: deliveries — item0 at 1, item1 at 2, item2 at 5. Greedy takes item0
  // (done 1), then item1: next start ≥1 is 5 -> done 7? No: item1 starts at
  // 0+5k; ≥1 -> 5, done 7. item2: starts 2+5k ≥1 -> 2, done 5. Greedy picks
  // item2 (5 < 7), then item1: starts ≥5 -> 5, done 7. Total 7.
  EXPECT_NEAR(query_latency_sequential(program, q, 0.0), 7.0, 1e-9);
  // Parallel: max(1, 2, 5) = 5.
  EXPECT_NEAR(query_latency_parallel(program, q, 0.0), 5.0, 1e-9);
}

TEST(QueryLatency, EvaluateAggregatesConsistently) {
  const Database db = generate_database({.items = 40, .diversity = 1.5, .seed = 9});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const QueryWorkload workload =
      generate_query_workload(db, {.queries = 25, .max_items = 3, .seed = 10});
  const QueryLatencyReport report = evaluate_query_workload(program, workload, 32);
  EXPECT_GT(report.parallel, 0.0);
  EXPECT_GE(report.sequential, report.parallel - 1e-9);
}

TEST(QueryLatency, ScheduledProgramBeatsFlatForQueriesToo) {
  // Scheduling on induced item frequencies helps query latency as well.
  const Database db = generate_database({.items = 60, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 11});
  const QueryWorkload workload =
      generate_query_workload(db, {.queries = 50, .max_items = 3,
                                   .item_skewness = 1.2, .seed = 12});
  // Re-weight the database by induced frequencies, then schedule.
  std::vector<double> sizes;
  for (const Item& it : db.items()) sizes.push_back(it.size);
  const Database weighted(sizes, workload.induced_item_frequencies(db.size()));
  const Allocation tuned = run_drp_cds(weighted, 5).allocation;
  const Allocation flat = flat_round_robin(weighted, 5);
  const BroadcastProgram tuned_prog(tuned, 10.0);
  const BroadcastProgram flat_prog(flat, 10.0);
  const QueryLatencyReport a = evaluate_query_workload(tuned_prog, workload);
  const QueryLatencyReport b = evaluate_query_workload(flat_prog, workload);
  EXPECT_LT(a.sequential, b.sequential);
}

TEST(QueryWorkload, RejectsBadConfig) {
  const Database db = generate_database({.items = 5, .seed = 13});
  EXPECT_THROW(generate_query_workload(db, {.queries = 0}), ContractViolation);
  EXPECT_THROW(generate_query_workload(db, {.queries = 3, .max_items = 9}),
               ContractViolation);
}

}  // namespace
}  // namespace dbs
