#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace dbs {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double theta : {0.0, 0.4, 0.8, 1.0, 1.6}) {
    const auto p = zipf_probabilities(100, theta);
    const double sum = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  const auto p = zipf_probabilities(50, 0.0);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 50.0, 1e-12);
}

TEST(Zipf, MonotoneNonIncreasingInRank) {
  const auto p = zipf_probabilities(80, 1.2);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_LE(p[i], p[i - 1]);
}

TEST(Zipf, HigherThetaMoreSkewed) {
  const auto lo = zipf_probabilities(100, 0.4);
  const auto hi = zipf_probabilities(100, 1.6);
  EXPECT_GT(hi.front(), lo.front());
  EXPECT_LT(hi.back(), lo.back());
}

TEST(Zipf, MatchesClosedFormForSmallN) {
  // n=3, theta=1: weights 1, 1/2, 1/3 -> total 11/6.
  const auto p = zipf_probabilities(3, 1.0);
  EXPECT_NEAR(p[0], (1.0) / (11.0 / 6.0), 1e-12);
  EXPECT_NEAR(p[1], (0.5) / (11.0 / 6.0), 1e-12);
  EXPECT_NEAR(p[2], (1.0 / 3.0) / (11.0 / 6.0), 1e-12);
}

TEST(Zipf, SingleItemGetsAllMass) {
  const auto p = zipf_probabilities(1, 0.8);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(Zipf, RejectsZeroItems) {
  EXPECT_THROW(zipf_probabilities(0, 1.0), ContractViolation);
}

TEST(Zipf, RejectsNegativeTheta) {
  EXPECT_THROW(zipf_probabilities(10, -0.1), ContractViolation);
}

TEST(AliasSampler, NormalizesWeights) {
  const AliasSampler sampler({2.0, 6.0});
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(AliasSampler, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {0.5, 0.2, 0.2, 0.05, 0.05};
  const AliasSampler sampler(weights);
  Rng rng(99);
  std::vector<int> counts(weights.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i], 0.01) << "bucket " << i;
  }
}

TEST(AliasSampler, HandlesZeroWeightBuckets) {
  const AliasSampler sampler({0.0, 1.0, 0.0});
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(AliasSampler, SingleBucket) {
  const AliasSampler sampler({42.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, RejectsEmptyAndNegative) {
  EXPECT_THROW(AliasSampler({}), ContractViolation);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), ContractViolation);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), ContractViolation);
}

TEST(AliasSampler, HandlesHighlySkewedZipf) {
  const auto p = zipf_probabilities(1000, 1.6);
  const AliasSampler sampler(p);
  Rng rng(17);
  int rank0 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) rank0 += (sampler.sample(rng) == 0);
  EXPECT_NEAR(static_cast<double>(rank0) / n, p[0], 0.01);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += sample_exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Exponential, AlwaysPositive) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(sample_exponential(rng, 1.0), 0.0);
}

TEST(Exponential, RejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(sample_exponential(rng, 0.0), ContractViolation);
  EXPECT_THROW(sample_exponential(rng, -1.0), ContractViolation);
}

TEST(DiscreteCdf, MatchesAliasSampler) {
  const std::vector<double> p = {0.1, 0.6, 0.3};
  Rng rng(21);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sample_discrete_cdf(rng, p)];
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, p[i], 0.01);
  }
}

TEST(DiscreteCdf, TailRoundingFallsToLastBucket) {
  // Probabilities that sum to slightly under 1 must still return an index.
  const std::vector<double> p = {0.5, 0.5 - 1e-13};
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = sample_discrete_cdf(rng, p);
    ASSERT_LT(v, 2u);
  }
}

}  // namespace
}  // namespace dbs
