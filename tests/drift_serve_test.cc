// Drift-scenario harness for the online re-allocation service (DESIGN.md
// §12): scripted workload drift — hot-set rotation, Zipf-parameter shift,
// and a flash crowd built with workload/drift.h — driven through
// BroadcastServerLoop, asserting that
//   * the program on air stays within a bound of a fresh DRP-CDS rebuild at
//     every epoch (the repair-quality contract),
//   * rebuild escalations fire when (and only when) the scripted regression
//     crosses the trigger — steady traffic after warm-up never rebuilds,
// plus a reader/writer stress test over the versioned snapshot publication
// (the TSan CI flavor is where its data-race coverage is armed).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/distributions.h"
#include "common/rng.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "obs/obs.h"  // for the DBS_OBS_ENABLED default
#include "serve/server_loop.h"
#include "workload/drift.h"
#include "workload/generator.h"

namespace dbs {
namespace {

// Repair-quality bound checked against a fresh DRP-CDS rebuild every epoch:
// the configured escalate_threshold (0.05) plus slack for trigger latency
// and for drift the trigger cannot see — when the achievable optimum *falls*
// (e.g. skew sharpening), repair trails the fresh rebuild without ever
// regressing against its own reference, so the bound carries the full lag.
constexpr double kRepairQualityBound = 0.12;

std::vector<double> sample_sizes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sizes(n);
  for (double& z : sizes) z = sample_item_size(rng, 2.0);
  return sizes;
}

std::vector<Request> window_from(const std::vector<double>& freqs,
                                 std::size_t count, Rng& rng) {
  const AliasSampler sampler(freqs);
  std::vector<Request> window;
  window.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    window.push_back(
        {static_cast<double>(i), static_cast<ItemId>(sampler.sample(rng))});
  }
  return window;
}

// One scripted epoch: feed the window, then re-plan from scratch on the very
// database the server just planned against and check the on-air program is
// within the bound of that fresh reference.
EpochReport step_and_check(BroadcastServerLoop& server,
                           const std::vector<double>& freqs, std::size_t count,
                           Rng& rng) {
  const EpochReport r = server.observe_window(window_from(freqs, count, rng));
  const DrpCdsResult fresh = run_drp_cds(server.database(), server.config().channels);
  const double on_air = server.allocation().cost();
  EXPECT_LE(on_air, fresh.final_cost * (1.0 + kRepairQualityBound))
      << "epoch " << r.epoch << ": repaired program drifted too far from a "
      << "fresh rebuild (escalated=" << r.escalated << ")";
  return r;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& metrics,
                            const std::string& name) {
  for (const obs::CounterSample& c : metrics.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(DriftServe, HotSetRotationStaysNearFreshRebuild) {
  const std::size_t n = 60;
  BroadcastServerLoop server(sample_sizes(n, 41), {.channels = 6});
  std::vector<double> freqs = zipf_probabilities(n, 1.2);
  Rng rng(42);

  // Warm up from the uniform prior on stable traffic.
  for (int epoch = 0; epoch < 6; ++epoch) {
    step_and_check(server, freqs, 3000, rng);
  }
  // Rotate the hot set: every epoch the popularity ranks shift by five
  // positions, so the hottest items keep changing identity.
  std::size_t escalations_during_rotation = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    std::rotate(freqs.begin(), freqs.begin() + 5, freqs.end());
    const EpochReport r = step_and_check(server, freqs, 3000, rng);
    escalations_during_rotation += r.escalated ? 1 : 0;
  }
  // Rotation of this magnitude invalidates the carried program repeatedly;
  // the trigger must have noticed at least once.
  EXPECT_GE(escalations_during_rotation, 1u);

  // Back to steady traffic: after a settling period, no epoch escalates.
  for (int epoch = 0; epoch < 4; ++epoch) {
    step_and_check(server, freqs, 3000, rng);
  }
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochReport r = step_and_check(server, freqs, 3000, rng);
    EXPECT_FALSE(r.escalated) << "steady epoch " << r.epoch << " rebuilt";
  }
}

TEST(DriftServe, ZipfParameterShiftTracksSkewChange) {
  const std::size_t n = 50;
  BroadcastServerLoop server(sample_sizes(n, 43), {.channels = 5});
  Rng rng(44);
  double theta = 0.4;
  for (int epoch = 0; epoch < 5; ++epoch) {
    step_and_check(server, zipf_probabilities(n, theta), 3000, rng);
  }
  // The skew parameter ramps 0.4 → 1.5: the popularity *shape* changes while
  // the rank order stays fixed, so the optimal cost scale moves a lot.
  for (int epoch = 0; epoch < 11; ++epoch) {
    theta += 0.1;
    step_and_check(server, zipf_probabilities(n, theta), 3000, rng);
  }
  std::size_t late_escalations = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    const EpochReport r =
        step_and_check(server, zipf_probabilities(n, theta), 3000, rng);
    late_escalations += r.escalated ? 1 : 0;
  }
  // Once the shift is over the service settles back into pure repair.
  EXPECT_LE(late_escalations, 1u);
}

TEST(DriftServe, FlashCrowdFiresTriggerThenSteadyStateNeverRebuilds) {
  // Long estimator memory (ρ = 0.9): after the shock the estimate is a
  // mixture of old and new popularity for several windows, which flattens
  // the distribution and lifts the achievable cost — exactly the regression
  // the trigger watches for. A fast-forgetting tracker would let repair
  // absorb the crowd in one epoch and the trigger (correctly) stay silent.
  const std::size_t n = 60;
  const ServerLoopConfig config{.channels = 6, .tracker_decay = 0.9};
  BroadcastServerLoop server(sample_sizes(n, 45), config);
  std::vector<double> freqs = zipf_probabilities(n, 1.0);
  Rng rng(46);

  for (int epoch = 0; epoch < 8; ++epoch) {
    step_and_check(server, freqs, 3000, rng);
  }
  // Warm-up is over: the next stretch is steady, so zero epochs may rebuild.
  std::uint64_t adoptions_before = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochReport r = step_and_check(server, freqs, 3000, rng);
    EXPECT_FALSE(r.escalated) << "steady epoch " << r.epoch << " escalated";
    EXPECT_FALSE(r.adopted_rebuild);
    adoptions_before = counter_value(r.metrics, "serve.rebuild_adoptions");
  }

  // Flash crowd, scripted through workload/drift.h: a burst of high-intensity
  // mass transfers yanks the popularity estimate out from under the program.
  {
    Rng drift_rng(47);
    const Database shocked = drift_frequencies(
        Database(sample_sizes(n, 45), freqs), drift_rng,
        {.transfers = 40, .intensity = 1.0});
    freqs.assign(shocked.freqs().begin(), shocked.freqs().end());
  }
  bool fired = false;
  EpochReport last;
  for (int epoch = 0; epoch < static_cast<int>(config.stall_epochs) + 2; ++epoch) {
    last = server.observe_window(window_from(freqs, 3000, rng));
    fired |= last.escalated;
  }
  EXPECT_TRUE(fired) << "the scripted flash crowd never fired the trigger";

  // And the loop re-converges: the bound holds again and steady traffic
  // stops escalating.
  for (int epoch = 0; epoch < 4; ++epoch) {
    last = step_and_check(server, freqs, 3000, rng);
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    last = step_and_check(server, freqs, 3000, rng);
    EXPECT_FALSE(last.escalated)
        << "post-crowd steady epoch " << last.epoch << " escalated";
  }
#if DBS_OBS_ENABLED
  // The rebuild_adoptions counter moved (if at all) only inside the scripted
  // regression window, never during the steady stretches.
  const std::uint64_t adoptions_after =
      counter_value(last.metrics, "serve.rebuild_adoptions");
  EXPECT_GE(adoptions_after, adoptions_before);
#endif
}

TEST(DriftServe, EscalationReasonsAreScriptable) {
  // A regression big enough to clear the threshold in one epoch reports
  // kCostRegression (the immediate trigger), not the stall path.
  const std::size_t n = 40;
  BroadcastServerLoop server(sample_sizes(n, 48),
                             {.channels = 4, .tracker_decay = 0.9});
  std::vector<double> freqs = zipf_probabilities(n, 1.3);
  Rng rng(49);
  for (int epoch = 0; epoch < 8; ++epoch) {
    server.observe_window(window_from(freqs, 4000, rng));
  }
  std::reverse(freqs.begin(), freqs.end());  // hottest items become coldest
  bool saw_regression = false;
  for (int epoch = 0; epoch < 6 && !saw_regression; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 4000, rng));
    if (r.escalated) {
      saw_regression = r.escalation_reason == EscalationReason::kCostRegression;
      EXPECT_GE(r.cost_excess, server.config().escalate_threshold);
    }
  }
  EXPECT_TRUE(saw_regression);
}

// Reader/writer stress over the RCU snapshot publication. Readers validate
// every snapshot they observe: versions must be monotone per reader, the
// allocation must be bound to the snapshot's own database, and the recorded
// cost must match a from-scratch recomputation of the assignment. The TSan
// CI flavor (DBS_SANITIZE=thread) turns any publication race into a hard
// failure; in other flavors this is a liveness/consistency smoke.
TEST(SnapshotStress, ConcurrentReadersSeeConsistentVersionedSnapshots) {
  const std::size_t n = 50;
  BroadcastServerLoop server(sample_sizes(n, 51), {.channels = 5});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots_read{0};
  std::atomic<std::uint64_t> violations{0};

  const auto reader = [&] {
    std::size_t last_version = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::shared_ptr<const ProgramSnapshot> s = server.snapshot();
      snapshots_read.fetch_add(1, std::memory_order_relaxed);
      if (s->version < last_version) violations.fetch_add(1);
      last_version = s->version;
      if (&s->alloc.database() != &s->db) violations.fetch_add(1);
      if (s->alloc.items() != s->db.size()) violations.fetch_add(1);
      const double recomputed = s->alloc.cost_recomputed();
      const double scale = recomputed > 1.0 ? recomputed : 1.0;
      if (std::abs(recomputed - s->cost) > 1e-9 * scale) violations.fetch_add(1);
      if (!(s->waiting_time > 0.0)) violations.fetch_add(1);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) readers.emplace_back(reader);

  // The epochs are fast enough to finish before the reader threads are even
  // scheduled, so force the overlap: start publishing only once the readers
  // are demonstrably reading, and keep them running on the final program
  // until every reader has had time for many validations.
  while (snapshots_read.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  // Writer: epochs under rotating popularity so repairs, escalations and
  // adoptions all publish while the readers hammer the pointer.
  std::vector<double> freqs = zipf_probabilities(n, 1.2);
  Rng rng(52);
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::rotate(freqs.begin(), freqs.begin() + 7, freqs.end());
    server.observe_window(window_from(freqs, 1500, rng));
  }
  const std::uint64_t floor = snapshots_read.load(std::memory_order_relaxed) + 64;
  while (snapshots_read.load(std::memory_order_relaxed) < floor) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(snapshots_read.load(), 0u);
  EXPECT_EQ(server.snapshot()->version, 12u);
}

}  // namespace
}  // namespace dbs
