#include "core/drp.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/flat.h"
#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Drp, ProducesExactlyKGroups) {
  const Database db = generate_database({.items = 50, .seed = 1});
  for (ChannelId k : {1u, 2u, 5u, 9u}) {
    const DrpResult r = run_drp(db, k);
    EXPECT_EQ(r.groups.size(), k);
    EXPECT_EQ(r.splits, k - 1);
    EXPECT_EQ(r.allocation.channels(), k);
    // Every channel non-empty: DRP splits non-empty slices.
    for (ChannelId c = 0; c < k; ++c) EXPECT_GT(r.allocation.count_of(c), 0u);
  }
}

TEST(Drp, SingleChannelIsWholeDatabase) {
  const Database db = generate_database({.items = 20, .seed = 2});
  const DrpResult r = run_drp(db, 1);
  EXPECT_EQ(r.allocation.count_of(0), 20u);
  EXPECT_NEAR(r.allocation.cost(), db.total_size(), 1e-9);  // F=1 ⇒ cost=Z
}

TEST(Drp, KEqualsNGivesSingletons) {
  const Database db = generate_database({.items = 12, .seed = 3});
  const DrpResult r = run_drp(db, 12);
  for (ChannelId c = 0; c < 12; ++c) EXPECT_EQ(r.allocation.count_of(c), 1u);
}

TEST(Drp, GroupsAreContiguousInBrOrder) {
  const Database db = generate_database({.items = 80, .diversity = 2.0, .seed = 4});
  const DrpResult r = run_drp(db, 7);
  // Groups tile [0, N) without gaps or overlaps.
  std::size_t expected_begin = 0;
  for (const DrpGroup& g : r.groups) {
    EXPECT_EQ(g.begin, expected_begin);
    EXPECT_GT(g.end, g.begin);
    expected_begin = g.end;
  }
  EXPECT_EQ(expected_begin, db.size());
  // And the allocation maps each slice to one distinct channel.
  std::set<ChannelId> seen;
  for (std::size_t gi = 0; gi < r.groups.size(); ++gi) {
    const ChannelId c = r.allocation.channel_of(r.order[r.groups[gi].begin]);
    EXPECT_TRUE(seen.insert(c).second);
    for (std::size_t i = r.groups[gi].begin; i < r.groups[gi].end; ++i) {
      EXPECT_EQ(r.allocation.channel_of(r.order[i]), c);
    }
  }
}

TEST(Drp, GroupCostsMatchAllocation) {
  const Database db = generate_database({.items = 45, .seed = 5});
  const DrpResult r = run_drp(db, 6);
  double group_total = 0.0;
  for (const DrpGroup& g : r.groups) group_total += g.cost;
  EXPECT_NEAR(group_total, r.allocation.cost(), 1e-9);
}

TEST(Drp, BeatsFlatOnSkewedWorkloads) {
  const Database db = generate_database({.items = 120, .skewness = 1.2,
                                         .diversity = 2.0, .seed = 6});
  const DrpResult drp = run_drp(db, 6);
  const Allocation flat = flat_round_robin(db, 6);
  EXPECT_LT(drp.allocation.cost(), flat.cost());
}

TEST(Drp, DeterministicAcrossRuns) {
  const Database db = generate_database({.items = 64, .seed = 7});
  const DrpResult a = run_drp(db, 5);
  const DrpResult b = run_drp(db, 5);
  EXPECT_EQ(a.allocation.assignment(), b.allocation.assignment());
}

TEST(Drp, EachSplitReducesTotalCost) {
  // Splitting the max-cost group never increases the total (superadditivity),
  // so cost must be monotone in K along DRP's own trajectory.
  const Database db = generate_database({.items = 90, .diversity = 2.5, .seed = 8});
  double prev = run_drp(db, 1).allocation.cost();
  for (ChannelId k = 2; k <= 10; ++k) {
    const double cost = run_drp(db, k).allocation.cost();
    EXPECT_LE(cost, prev + 1e-12) << "K=" << k;
    prev = cost;
  }
}

TEST(Drp, AlternativeSelectionPoliciesStillPartition) {
  const Database db = generate_database({.items = 40, .seed = 9});
  for (SplitSelection sel :
       {SplitSelection::kMaxCost, SplitSelection::kMaxSize, SplitSelection::kMaxCount}) {
    const DrpResult r = run_drp(db, 5, {.selection = sel});
    std::string error;
    EXPECT_TRUE(r.allocation.validate(&error)) << error;
    EXPECT_EQ(r.groups.size(), 5u);
  }
}

TEST(Drp, AlternativeOrderingsStillPartition) {
  const Database db = generate_database({.items = 40, .diversity = 1.0, .seed = 10});
  for (ItemOrdering ord :
       {ItemOrdering::kBenefitRatioDesc, ItemOrdering::kFreqDesc, ItemOrdering::kSizeAsc}) {
    const DrpResult r = run_drp(db, 4, {.ordering = ord});
    std::string error;
    EXPECT_TRUE(r.allocation.validate(&error)) << error;
  }
}

TEST(Drp, PaperOrderingBeatsSizeOrderingOnDiverseData) {
  // The dimension-reduction claim: br ordering should dominate naive size
  // ordering on a skewed diverse workload (statistically; fixed seed here).
  const Database db = generate_database({.items = 120, .skewness = 1.0,
                                         .diversity = 2.5, .seed = 11});
  const double br = run_drp(db, 6).allocation.cost();
  const double sz = run_drp(db, 6, {.ordering = ItemOrdering::kSizeAsc}).allocation.cost();
  EXPECT_LT(br, sz);
}

TEST(Drp, RejectsInvalidChannelCounts) {
  const Database db = generate_database({.items = 5, .seed = 12});
  EXPECT_THROW(run_drp(db, 0), ContractViolation);
  EXPECT_THROW(run_drp(db, 6), ContractViolation);
}

TEST(Drp, HandlesUniformItems) {
  // All items identical: any balanced contiguous partition is optimal; DRP
  // must still produce K valid non-empty groups.
  const Database db(std::vector<double>(16, 2.0), std::vector<double>(16, 1.0));
  const DrpResult r = run_drp(db, 4);
  for (ChannelId c = 0; c < 4; ++c) EXPECT_EQ(r.allocation.count_of(c), 4u);
}

TEST(Drp, HandlesZeroFrequencyItems) {
  // Items with f=0 contribute no cost wherever they go; DRP must not crash.
  const Database db({1.0, 2.0, 3.0, 4.0, 5.0}, {1.0, 0.0, 0.0, 1.0, 0.0});
  const DrpResult r = run_drp(db, 3);
  std::string error;
  EXPECT_TRUE(r.allocation.validate(&error)) << error;
}

}  // namespace
}  // namespace dbs
