#include "workload/estimate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Estimate, SumsToOne) {
  const std::vector<Request> window = {{0.0, 0}, {1.0, 1}, {2.0, 1}};
  for (double alpha : {0.0, 0.5, 1.0, 5.0}) {
    const auto f = estimate_frequencies(window, 4, alpha);
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-12)
        << "alpha=" << alpha;
  }
}

TEST(Estimate, RawMleMatchesCounts) {
  const std::vector<Request> window = {{0.0, 0}, {1.0, 1}, {2.0, 1}, {3.0, 1}};
  const auto f = estimate_frequencies(window, 3, 0.0);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.75);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(Estimate, SmoothingKeepsUnseenItemsPositive) {
  const std::vector<Request> window = {{0.0, 0}};
  const auto f = estimate_frequencies(window, 3, 1.0);
  EXPECT_GT(f[1], 0.0);
  EXPECT_GT(f[2], 0.0);
  EXPECT_GT(f[0], f[1]);
}

TEST(Estimate, EmptyWindowWithSmoothingIsUniform) {
  const auto f = estimate_frequencies({}, 5, 1.0);
  for (double v : f) EXPECT_NEAR(v, 0.2, 1e-12);
}

TEST(Estimate, ConvergesToTrueFrequencies) {
  const Database db = generate_database(
      {.items = 20, .skewness = 1.0, .seed = 1, .shuffle_ranks = false});
  const auto trace = generate_trace(db, {.requests = 200000, .seed = 2});
  const auto f = estimate_frequencies(trace, db.size(), 1.0);
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_NEAR(f[id], db.item(id).freq, 0.01) << "item " << id;
  }
}

TEST(Estimate, RejectsBadInput) {
  EXPECT_THROW(estimate_frequencies({}, 0, 1.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({}, 3, 0.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({{0.0, 9}}, 3, 1.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({{0.0, 0}}, 3, -1.0), ContractViolation);
}

TEST(Tracker, StartsUniform) {
  const FrequencyTracker tracker(4);
  for (double f : tracker.frequencies()) EXPECT_DOUBLE_EQ(f, 0.25);
  EXPECT_EQ(tracker.windows_observed(), 0u);
}

TEST(Tracker, FullGainForgetsThePast) {
  FrequencyTracker tracker(2, /*gain=*/1.0, /*alpha=*/0.0);
  tracker.observe({{0.0, 0}, {1.0, 0}});
  EXPECT_DOUBLE_EQ(tracker.frequencies()[0], 1.0);
  tracker.observe({{2.0, 1}, {3.0, 1}});
  EXPECT_DOUBLE_EQ(tracker.frequencies()[0], 0.0);
  EXPECT_DOUBLE_EQ(tracker.frequencies()[1], 1.0);
}

TEST(Tracker, SmallGainSmoothsDrift) {
  FrequencyTracker tracker(2, /*gain=*/0.25, /*alpha=*/0.0);
  tracker.observe({{0.0, 0}});  // all mass on item 0 this window
  // estimate = 0.75 * uniform(0.5) + 0.25 * [1, 0].
  EXPECT_NEAR(tracker.frequencies()[0], 0.625, 1e-12);
  EXPECT_NEAR(tracker.frequencies()[1], 0.375, 1e-12);
}

TEST(Tracker, TracksDriftingPopularity) {
  // Popularity flips between two items; the tracker must follow.
  FrequencyTracker tracker(2, 0.5, 1.0);
  for (int w = 0; w < 6; ++w) tracker.observe({{0.0, 0}, {1.0, 0}, {2.0, 0}});
  EXPECT_GT(tracker.frequencies()[0], 0.7);
  for (int w = 0; w < 6; ++w) tracker.observe({{0.0, 1}, {1.0, 1}, {2.0, 1}});
  EXPECT_GT(tracker.frequencies()[1], 0.7);
  EXPECT_EQ(tracker.windows_observed(), 12u);
}

TEST(Tracker, EstimateStaysNormalized) {
  FrequencyTracker tracker(5, 0.4, 1.0);
  Rng rng(3);
  for (int w = 0; w < 10; ++w) {
    std::vector<Request> window;
    for (int i = 0; i < 20; ++i) {
      window.push_back({static_cast<double>(i), static_cast<ItemId>(rng.below(5))});
    }
    tracker.observe(window);
    const auto& f = tracker.frequencies();
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Tracker, RejectsBadGain) {
  EXPECT_THROW(FrequencyTracker(3, 0.0), ContractViolation);
  EXPECT_THROW(FrequencyTracker(3, 1.5), ContractViolation);
  EXPECT_THROW(FrequencyTracker(0, 0.5), ContractViolation);
}

std::vector<Request> random_window(std::size_t items, std::size_t count,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> window;
  window.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    window.push_back({static_cast<double>(i),
                      static_cast<ItemId>(rng.below(items))});
  }
  return window;
}

TEST(DecayedTracker, NoDecaySingleWindowIsBitIdenticalToBatch) {
  // With ρ = 1 (no forgetting) a single window's decayed counts are exactly
  // the batch counts, and frequencies() uses the same (count+α)/(mass+αN)
  // arithmetic — so the result must match estimate_frequencies bit for bit.
  for (double alpha : {0.5, 1.0, 2.0}) {
    const auto window = random_window(17, 400, 21);
    DecayedFrequencyTracker tracker(17, /*decay=*/1.0, alpha);
    tracker.observe(window);
    const auto streamed = tracker.frequencies();
    const auto batch = estimate_frequencies(window, 17, alpha);
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streamed[i], batch[i]) << "item " << i << " alpha " << alpha;
    }
  }
}

TEST(DecayedTracker, CountsAreOrderIndependentWithinAWindow) {
  // Folding a window is a sum of independent `+= 1.0` per request, so any
  // permutation of the window must give bitwise-identical state — including
  // on top of non-integer carried-over decayed counts.
  auto window = random_window(11, 300, 22);
  const auto prefix = random_window(11, 150, 23);
  DecayedFrequencyTracker forward(11, 0.7, 1.0);
  forward.observe(prefix);
  forward.observe(window);
  std::reverse(window.begin(), window.end());
  DecayedFrequencyTracker reversed(11, 0.7, 1.0);
  reversed.observe(prefix);
  reversed.observe(window);
  Rng rng(24);
  for (std::size_t i = window.size(); i > 1; --i) {
    std::swap(window[i - 1], window[rng.below(i)]);
  }
  DecayedFrequencyTracker shuffled(11, 0.7, 1.0);
  shuffled.observe(prefix);
  shuffled.observe(window);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(forward.counts()[i], reversed.counts()[i]) << "item " << i;
    EXPECT_EQ(forward.counts()[i], shuffled.counts()[i]) << "item " << i;
  }
  EXPECT_EQ(forward.effective_requests(), reversed.effective_requests());
  EXPECT_EQ(forward.frequencies(), shuffled.frequencies());
}

TEST(DecayedTracker, DecayDiscountsOldWindows) {
  // Two windows of equal volume on disjoint items: with decay ρ the older
  // window's count is exactly ρ · volume, the newer one's is the volume.
  DecayedFrequencyTracker tracker(2, 0.25, 1.0);
  tracker.observe({{0.0, 0}, {1.0, 0}, {2.0, 0}, {3.0, 0}});
  tracker.observe({{4.0, 1}, {5.0, 1}, {6.0, 1}, {7.0, 1}});
  EXPECT_DOUBLE_EQ(tracker.counts()[0], 1.0);  // 4 · 0.25
  EXPECT_DOUBLE_EQ(tracker.counts()[1], 4.0);
  EXPECT_DOUBLE_EQ(tracker.effective_requests(), 5.0);
  EXPECT_GT(tracker.frequencies()[1], tracker.frequencies()[0]);
}

TEST(DecayedTracker, EffectiveWindowsFollowsGeometricSum) {
  DecayedFrequencyTracker tracker(3, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(tracker.effective_windows(), 0.0);
  const std::vector<Request> window = {{0.0, 0}};
  tracker.observe(window);
  EXPECT_DOUBLE_EQ(tracker.effective_windows(), 1.0);
  tracker.observe(window);
  EXPECT_DOUBLE_EQ(tracker.effective_windows(), 1.5);
  tracker.observe(window);
  EXPECT_DOUBLE_EQ(tracker.effective_windows(), 1.75);

  DecayedFrequencyTracker no_decay(3, 1.0, 1.0);
  no_decay.observe(window);
  no_decay.observe(window);
  EXPECT_DOUBLE_EQ(no_decay.effective_windows(), 2.0);
}

TEST(DecayedTracker, FrequenciesStayNormalizedAndPositive) {
  DecayedFrequencyTracker tracker(5, 0.6, 0.5);
  for (int w = 0; w < 8; ++w) {
    tracker.observe(random_window(5, 40, 30 + static_cast<std::uint64_t>(w)));
    const auto f = tracker.frequencies();
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-9);
    for (double v : f) EXPECT_GT(v, 0.0);
  }
}

TEST(DecayedTracker, RejectsBadConfig) {
  EXPECT_THROW(DecayedFrequencyTracker(0, 0.5, 1.0), ContractViolation);
  EXPECT_THROW(DecayedFrequencyTracker(3, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(DecayedFrequencyTracker(3, 1.5, 1.0), ContractViolation);
  EXPECT_THROW(DecayedFrequencyTracker(3, 0.5, 0.0), ContractViolation);
  DecayedFrequencyTracker tracker(3, 0.5, 1.0);
  EXPECT_THROW(tracker.observe({{0.0, 7}}), ContractViolation);
}

}  // namespace
}  // namespace dbs
