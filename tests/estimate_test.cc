#include "workload/estimate.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Estimate, SumsToOne) {
  const std::vector<Request> window = {{0.0, 0}, {1.0, 1}, {2.0, 1}};
  for (double alpha : {0.0, 0.5, 1.0, 5.0}) {
    const auto f = estimate_frequencies(window, 4, alpha);
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-12)
        << "alpha=" << alpha;
  }
}

TEST(Estimate, RawMleMatchesCounts) {
  const std::vector<Request> window = {{0.0, 0}, {1.0, 1}, {2.0, 1}, {3.0, 1}};
  const auto f = estimate_frequencies(window, 3, 0.0);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.75);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(Estimate, SmoothingKeepsUnseenItemsPositive) {
  const std::vector<Request> window = {{0.0, 0}};
  const auto f = estimate_frequencies(window, 3, 1.0);
  EXPECT_GT(f[1], 0.0);
  EXPECT_GT(f[2], 0.0);
  EXPECT_GT(f[0], f[1]);
}

TEST(Estimate, EmptyWindowWithSmoothingIsUniform) {
  const auto f = estimate_frequencies({}, 5, 1.0);
  for (double v : f) EXPECT_NEAR(v, 0.2, 1e-12);
}

TEST(Estimate, ConvergesToTrueFrequencies) {
  const Database db = generate_database(
      {.items = 20, .skewness = 1.0, .seed = 1, .shuffle_ranks = false});
  const auto trace = generate_trace(db, {.requests = 200000, .seed = 2});
  const auto f = estimate_frequencies(trace, db.size(), 1.0);
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_NEAR(f[id], db.item(id).freq, 0.01) << "item " << id;
  }
}

TEST(Estimate, RejectsBadInput) {
  EXPECT_THROW(estimate_frequencies({}, 0, 1.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({}, 3, 0.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({{0.0, 9}}, 3, 1.0), ContractViolation);
  EXPECT_THROW(estimate_frequencies({{0.0, 0}}, 3, -1.0), ContractViolation);
}

TEST(Tracker, StartsUniform) {
  const FrequencyTracker tracker(4);
  for (double f : tracker.frequencies()) EXPECT_DOUBLE_EQ(f, 0.25);
  EXPECT_EQ(tracker.windows_observed(), 0u);
}

TEST(Tracker, FullGainForgetsThePast) {
  FrequencyTracker tracker(2, /*gain=*/1.0, /*alpha=*/0.0);
  tracker.observe({{0.0, 0}, {1.0, 0}});
  EXPECT_DOUBLE_EQ(tracker.frequencies()[0], 1.0);
  tracker.observe({{2.0, 1}, {3.0, 1}});
  EXPECT_DOUBLE_EQ(tracker.frequencies()[0], 0.0);
  EXPECT_DOUBLE_EQ(tracker.frequencies()[1], 1.0);
}

TEST(Tracker, SmallGainSmoothsDrift) {
  FrequencyTracker tracker(2, /*gain=*/0.25, /*alpha=*/0.0);
  tracker.observe({{0.0, 0}});  // all mass on item 0 this window
  // estimate = 0.75 * uniform(0.5) + 0.25 * [1, 0].
  EXPECT_NEAR(tracker.frequencies()[0], 0.625, 1e-12);
  EXPECT_NEAR(tracker.frequencies()[1], 0.375, 1e-12);
}

TEST(Tracker, TracksDriftingPopularity) {
  // Popularity flips between two items; the tracker must follow.
  FrequencyTracker tracker(2, 0.5, 1.0);
  for (int w = 0; w < 6; ++w) tracker.observe({{0.0, 0}, {1.0, 0}, {2.0, 0}});
  EXPECT_GT(tracker.frequencies()[0], 0.7);
  for (int w = 0; w < 6; ++w) tracker.observe({{0.0, 1}, {1.0, 1}, {2.0, 1}});
  EXPECT_GT(tracker.frequencies()[1], 0.7);
  EXPECT_EQ(tracker.windows_observed(), 12u);
}

TEST(Tracker, EstimateStaysNormalized) {
  FrequencyTracker tracker(5, 0.4, 1.0);
  Rng rng(3);
  for (int w = 0; w < 10; ++w) {
    std::vector<Request> window;
    for (int i = 0; i < 20; ++i) {
      window.push_back({static_cast<double>(i), static_cast<ItemId>(rng.below(5))});
    }
    tracker.observe(window);
    const auto& f = tracker.frequencies();
    EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Tracker, RejectsBadGain) {
  EXPECT_THROW(FrequencyTracker(3, 0.0), ContractViolation);
  EXPECT_THROW(FrequencyTracker(3, 1.5), ContractViolation);
  EXPECT_THROW(FrequencyTracker(0, 0.5), ContractViolation);
}

}  // namespace
}  // namespace dbs
