#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace dbs {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(q.now());
    if (times.size() < 5) q.schedule(q.now() + 1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_all();
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0}));
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(3.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsSchedulingIntoThePast) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(1.0, [] {}), ContractViolation);
  EXPECT_NO_THROW(q.schedule(2.0, [] {}));  // same instant is allowed
}

TEST(EventQueue, NowStartsAtZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

}  // namespace
}  // namespace dbs
