// Randomized differential tests: independent implementations of the same
// quantity must agree on randomly generated instances. These are the tests
// that catch bookkeeping drift that hand-picked cases miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/brute_force.h"
#include "baselines/ordered_dp.h"
#include "core/cds.h"
#include "core/drp.h"
#include "core/partition.h"
#include "model/cost.h"
#include "replication/multi_program.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace dbs {
namespace {

Database random_db(Rng& rng, std::size_t max_items = 24) {
  const std::size_t n = 2 + static_cast<std::size_t>(rng.below(max_items - 1));
  std::vector<double> sizes(n);
  std::vector<double> freqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = rng.uniform(0.1, 50.0);
    freqs[i] = rng.uniform(0.0, 1.0);
  }
  freqs[static_cast<std::size_t>(rng.below(n))] += 0.1;  // ensure positive mass
  return Database(sizes, freqs);
}

TEST(FuzzDifferential, IncrementalCostEqualsRecomputedAfterRandomOps) {
  Rng rng(101);
  for (int instance = 0; instance < 30; ++instance) {
    const Database db = random_db(rng);
    const ChannelId k = 1 + static_cast<ChannelId>(rng.below(5));
    Allocation alloc(db, k);
    for (int op = 0; op < 200; ++op) {
      const ItemId id = static_cast<ItemId>(rng.below(db.size()));
      const ChannelId to = static_cast<ChannelId>(rng.below(k));
      const double predicted = alloc.move_gain(id, to);
      const double before = alloc.cost();
      alloc.move(id, to);
      EXPECT_NEAR(before - alloc.cost(), predicted, 1e-9);
      EXPECT_NEAR(alloc.cost(), alloc.cost_recomputed(), 1e-9);
    }
    std::string error;
    EXPECT_TRUE(alloc.validate(&error)) << error;
  }
}

TEST(FuzzDifferential, BestSplitAgreesWithQuadraticReference) {
  Rng rng(102);
  for (int instance = 0; instance < 40; ++instance) {
    const Database db = random_db(rng);
    const auto order = db.ids_by_benefit_ratio_desc();
    const PrefixSums sums(db, order);
    const std::size_t n = order.size();
    const SplitResult fast = best_split(sums, 0, n);
    double reference = 1e300;
    std::size_t ref_split = 0;
    for (std::size_t p = 1; p < n; ++p) {
      double fl = 0.0, zl = 0.0;
      for (std::size_t i = 0; i < p; ++i) {
        fl += db.item(order[i]).freq;
        zl += db.item(order[i]).size;
      }
      double fr = 0.0, zr = 0.0;
      for (std::size_t i = p; i < n; ++i) {
        fr += db.item(order[i]).freq;
        zr += db.item(order[i]).size;
      }
      const double total = fl * zl + fr * zr;
      if (total < reference - 1e-15) {
        reference = total;
        ref_split = p;
      }
    }
    EXPECT_NEAR(fast.total(), reference, 1e-9);
    EXPECT_EQ(fast.split, ref_split);
  }
}

TEST(FuzzDifferential, OrderedDpNeverBeatsBruteForceAndNeverLosesToDrp) {
  Rng rng(103);
  for (int instance = 0; instance < 15; ++instance) {
    const Database db = random_db(rng, 14);
    const ChannelId k =
        1 + static_cast<ChannelId>(rng.below(std::min<std::size_t>(4, db.size())));
    const auto exact = brute_force_optimal(db, k);
    ASSERT_TRUE(exact.has_value());
    const double dp = ordered_dp_optimal(db, k).cost();
    const double drp = run_drp(db, k).allocation.cost();
    EXPECT_GE(dp, exact->cost - 1e-9);
    EXPECT_LE(dp, drp + 1e-9);
  }
}

TEST(FuzzDifferential, CdsEnginesIdenticalOnRandomInstances) {
  Rng rng(104);
  for (int instance = 0; instance < 20; ++instance) {
    const Database db = random_db(rng, 40);
    const ChannelId k =
        1 + static_cast<ChannelId>(rng.below(std::min<std::size_t>(6, db.size())));
    std::vector<ChannelId> start(db.size());
    for (auto& c : start) c = static_cast<ChannelId>(rng.below(k));
    Allocation a(db, k, start);
    Allocation b = a;
    run_cds(a, {.engine = CdsEngine::kScan});
    run_cds(b, {.engine = CdsEngine::kIndexed});
    EXPECT_EQ(a.assignment(), b.assignment()) << "instance " << instance;
  }
}

TEST(FuzzDifferential, SimulatorEnginesAgreeOnRandomPrograms) {
  Rng rng(105);
  for (int instance = 0; instance < 10; ++instance) {
    const Database db = random_db(rng, 20);
    const ChannelId k =
        1 + static_cast<ChannelId>(rng.below(std::min<std::size_t>(4, db.size())));
    std::vector<ChannelId> assignment(db.size());
    for (auto& c : assignment) c = static_cast<ChannelId>(rng.below(k));
    const Allocation alloc(db, k, assignment);
    const BroadcastProgram program(alloc, rng.uniform(1.0, 20.0));
    const auto trace =
        generate_trace(db, {.requests = 400, .arrival_rate = 5.0, .seed = rng()});
    const SimReport des = simulate(program, trace);
    const SimReport replay = replay_analytic(program, trace);
    ASSERT_EQ(des.requests_served, replay.requests_served);
    EXPECT_NEAR(des.mean_wait(), replay.mean_wait(), 1e-9) << "instance " << instance;
  }
}

TEST(FuzzDifferential, MultiProgramSingleCopyMatchesBroadcastProgram) {
  Rng rng(106);
  for (int instance = 0; instance < 10; ++instance) {
    const Database db = random_db(rng, 20);
    const ChannelId k =
        1 + static_cast<ChannelId>(rng.below(std::min<std::size_t>(4, db.size())));
    std::vector<ChannelId> assignment(db.size());
    for (auto& c : assignment) c = static_cast<ChannelId>(rng.below(k));
    const Allocation alloc(db, k, assignment);
    const double bandwidth = rng.uniform(1.0, 20.0);
    const BroadcastProgram single(alloc, bandwidth);
    const MultiProgram multi(db, placement_from_assignment(assignment, k), bandwidth);
    for (int probe = 0; probe < 50; ++probe) {
      const ItemId id = static_cast<ItemId>(rng.below(db.size()));
      const double t = rng.uniform(0.0, 100.0);
      EXPECT_NEAR(multi.delivery_time(id, t), single.delivery_time(id, t), 1e-9);
    }
  }
}

TEST(FuzzDifferential, EventQueueMatchesSortedReference) {
  Rng rng(107);
  for (int instance = 0; instance < 20; ++instance) {
    EventQueue queue;
    std::vector<std::pair<double, int>> expected;
    std::vector<std::pair<double, int>> fired;
    const int events = 100;
    for (int i = 0; i < events; ++i) {
      const double when = rng.uniform(0.0, 10.0);
      expected.emplace_back(when, i);
      queue.schedule(when, [&fired, when, i] { fired.emplace_back(when, i); });
    }
    queue.run_all();
    // Stable sort by time = FIFO among ties, exactly the queue's contract.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    EXPECT_EQ(fired, expected) << "instance " << instance;
  }
}

}  // namespace
}  // namespace dbs
