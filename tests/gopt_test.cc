#include "baselines/gopt.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "common/check.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

GoptOptions quick_gopt(std::uint64_t seed = 42) {
  GoptOptions o;
  o.population = 60;
  o.generations = 200;
  o.stall_generations = 60;
  o.seed = seed;
  return o;
}

TEST(Gopt, ProducesValidPartition) {
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 1});
  const GoptResult r = run_gopt(db, 5, quick_gopt());
  std::string error;
  EXPECT_TRUE(r.allocation.validate(&error)) << error;
  EXPECT_NEAR(r.cost, r.allocation.cost(), 1e-12);
  EXPECT_GT(r.generations_run, 0u);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(Gopt, DeterministicForFixedSeed) {
  const Database db = generate_database({.items = 30, .seed = 2});
  const GoptResult a = run_gopt(db, 4, quick_gopt(7));
  const GoptResult b = run_gopt(db, 4, quick_gopt(7));
  EXPECT_EQ(a.allocation.assignment(), b.allocation.assignment());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Gopt, NearOptimalOnSmallInstances) {
  // The paper's footnote concedes GOPT's GA result "is still viewed as a
  // suboptimum"; with the full default budget it must land within 1% of the
  // exact optimum on every small instance, and usually exactly on it.
  std::size_t exact_hits = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Database db = generate_database({.items = 12, .skewness = 1.0,
                                           .diversity = 2.0, .seed = seed});
    const auto exact = brute_force_optimal(db, 3);
    ASSERT_TRUE(exact.has_value());
    GoptOptions full;  // default (paper-scale) budget
    full.seed = seed;
    const GoptResult ga = run_gopt(db, 3, full);
    EXPECT_LE(ga.cost, exact->cost * 1.01 + 1e-12) << "seed " << seed;
    EXPECT_GE(ga.cost, exact->cost - 1e-9) << "seed " << seed;
    if (ga.cost <= exact->cost + 1e-9) ++exact_hits;
  }
  EXPECT_GE(exact_hits, 4u) << "GA should usually find the exact optimum";
}

TEST(Gopt, AtLeastAsGoodAsDrpCdsWhenSeeded) {
  // GOPT seeds its population with the DRP solution and polishes with CDS,
  // so it can never end worse than DRP-CDS.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Database db = generate_database({.items = 60, .skewness = 0.8,
                                           .diversity = 2.5, .seed = seed});
    const double heuristic = run_drp_cds(db, 5).final_cost;
    const double ga = run_gopt(db, 5, quick_gopt(seed)).cost;
    EXPECT_LE(ga, heuristic + 1e-9) << "seed " << seed;
  }
}

TEST(Gopt, PureRandomStartStillImproves) {
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 5});
  GoptOptions o = quick_gopt();
  o.seed_with_heuristics = false;
  o.local_search_final = false;
  const GoptResult r = run_gopt(db, 4, o);
  // Should at least beat the expected cost of a uniformly random assignment,
  // approximated here by one sampled random assignment.
  Rng rng(99);
  std::vector<ChannelId> random_assignment(db.size());
  for (auto& c : random_assignment) c = static_cast<ChannelId>(rng.below(4));
  const Allocation random_alloc(db, 4, std::move(random_assignment));
  EXPECT_LT(r.cost, random_alloc.cost());
}

TEST(Gopt, StallCutoffStopsEarly) {
  const Database db = generate_database({.items = 20, .seed = 6});
  GoptOptions o = quick_gopt();
  o.generations = 100000;
  o.stall_generations = 10;
  const GoptResult r = run_gopt(db, 3, o);
  EXPECT_LT(r.generations_run, 100000u);
}

TEST(Gopt, SingleChannelTrivial) {
  const Database db = generate_database({.items = 15, .seed = 7});
  const GoptResult r = run_gopt(db, 1, quick_gopt());
  EXPECT_NEAR(r.cost, db.total_size(), 1e-9);
}

TEST(Gopt, RejectsBadInputs) {
  const Database db = generate_database({.items = 5, .seed = 8});
  EXPECT_THROW(run_gopt(db, 0, quick_gopt()), ContractViolation);
  EXPECT_THROW(run_gopt(db, 6, quick_gopt()), ContractViolation);
  GoptOptions tiny = quick_gopt();
  tiny.population = 1;
  EXPECT_THROW(run_gopt(db, 2, tiny), ContractViolation);
}

}  // namespace
}  // namespace dbs
