// Determinism contract of the bench trial harness: the thread-pooled
// average_over_trials must reproduce the serial path bit-for-bit, because
// every figure in EXPERIMENTS.md and every cost in a BENCH_*.json relies on
// seeds alone determining the result. Running this suite under
// -DDBS_SANITIZE=thread is the TSan proof for the pool itself.
#include "harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dbs::bench {
namespace {

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.items = 60;
  config.skewness = 0.8;
  config.diversity = 2.0;
  config.seed = 0;  // overwritten per trial by the harness
  return config;
}

Options with_threads(std::size_t threads, std::size_t trials, bool quick) {
  Options options;
  options.threads = threads;
  options.trials = trials;
  options.quick = quick;
  return options;
}

// The deterministic algorithms and the seeded GA must all survive the
// serial -> parallel swap unchanged. GOPT is the interesting case: its GA
// draws millions of PRNG values, so any cross-thread state sharing or
// trial-order dependence would show up immediately.
TEST(Harness, ParallelAveragesMatchSerialBitForBit) {
  const WorkloadConfig config = small_workload();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kDrp, Algorithm::kDrpCds, Algorithm::kVfk, Algorithm::kGopt};
  for (Algorithm algorithm : algorithms) {
    const bool quick = algorithm == Algorithm::kGopt;  // keep the GA cheap
    const Measurement serial = average_over_trials(
        config, algorithm, 4, 10.0, with_threads(1, 6, quick), 123);
    const Measurement parallel = average_over_trials(
        config, algorithm, 4, 10.0, with_threads(4, 6, quick), 123);
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the parallel path must run the
    // exact same per-trial computations and reduce them in the same order.
    EXPECT_EQ(serial.waiting_time, parallel.waiting_time)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_EQ(serial.cost, parallel.cost)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_GE(parallel.elapsed_ms, 0.0);
  }
}

// Seeds are pre-assigned per trial index: trial t of a batch equals a
// standalone single-trial run at base_seed + t, so batch size and thread
// count never shift which workload a trial sees.
TEST(Harness, TrialSeedsAreIndependentOfBatchAndThreads) {
  const WorkloadConfig config = small_workload();
  const std::vector<Measurement> batch = measure_trials(
      config, Algorithm::kDrpCds, 4, 10.0, with_threads(3, 5, false), 900);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t trial = 0; trial < batch.size(); ++trial) {
    const std::vector<Measurement> alone = measure_trials(
        config, Algorithm::kDrpCds, 4, 10.0, with_threads(1, 1, false),
        900 + trial);
    ASSERT_EQ(alone.size(), 1u);
    EXPECT_EQ(batch[trial].cost, alone[0].cost) << "trial " << trial;
    EXPECT_EQ(batch[trial].waiting_time, alone[0].waiting_time)
        << "trial " << trial;
  }
}

// More workers than trials must not deadlock, double-run a trial, or change
// the result; zero (auto) threads must behave on any machine.
TEST(Harness, OversizedPoolAndAutoDetectAreSafe) {
  const WorkloadConfig config = small_workload();
  const Measurement serial = average_over_trials(
      config, Algorithm::kDrpCds, 4, 10.0, with_threads(1, 2, false), 77);
  const Measurement oversized = average_over_trials(
      config, Algorithm::kDrpCds, 4, 10.0, with_threads(16, 2, false), 77);
  const Measurement automatic = average_over_trials(
      config, Algorithm::kDrpCds, 4, 10.0, with_threads(0, 2, false), 77);
  EXPECT_EQ(serial.cost, oversized.cost);
  EXPECT_EQ(serial.cost, automatic.cost);
  EXPECT_EQ(serial.waiting_time, oversized.waiting_time);
  EXPECT_EQ(serial.waiting_time, automatic.waiting_time);
}

// --- run_trials failure-path contract (ISSUE 6 satellite) -----------------
// A trial that throws must propagate out of run_trials on the calling
// thread, after every worker has been joined — never std::terminate() a
// worker, never deadlock the pool, never leak a joinable thread (the leak
// would abort the test process at thread destruction).

TEST(RunTrials, ExecutesEveryTrialExactlyOnce) {
  constexpr std::size_t kTrials = 64;
  std::vector<std::atomic<int>> executions(kTrials);
  run_trials(kTrials, 4, [&](std::size_t trial) {
    executions[trial].fetch_add(1);
  });
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    EXPECT_EQ(executions[trial].load(), 1) << "trial " << trial;
  }
}

TEST(RunTrials, ThrowingTrialPropagatesFromParallelPool) {
  EXPECT_THROW(
      run_trials(16, 4,
                 [](std::size_t trial) {
                   if (trial == 3) throw std::runtime_error("trial 3 boom");
                 }),
      std::runtime_error);
}

TEST(RunTrials, ThrowingTrialPropagatesFromSerialPath) {
  std::size_t executed = 0;
  EXPECT_THROW(run_trials(8, 1,
                          [&](std::size_t trial) {
                            ++executed;
                            if (trial == 2) throw std::logic_error("serial boom");
                          }),
               std::logic_error);
  // Serial execution is in trial order, so the failure cuts the run short.
  EXPECT_EQ(executed, 3u);
}

TEST(RunTrials, PoolStopsClaimingNewTrialsAfterFailure) {
  constexpr std::size_t kTrials = 64;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      run_trials(kTrials, 2,
                 [&](std::size_t trial) {
                   executed.fetch_add(1);
                   if (trial == 0) throw std::runtime_error("first trial boom");
                   // Slow survivors down so the cancellation flag is visible
                   // before the other worker can drain the whole range.
                   std::this_thread::sleep_for(std::chrono::milliseconds(2));
                 }),
      std::runtime_error);
  // The failing trial plus whatever was in flight — but nowhere near the
  // full range, and no worker is left running (run_trials joined them all
  // before rethrowing, or this counter would still be moving).
  EXPECT_LT(executed.load(), kTrials);
  const std::size_t settled = executed.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(executed.load(), settled) << "a worker outlived run_trials";
}

TEST(RunTrials, FirstExceptionWinsWhenSeveralTrialsThrow) {
  // Every trial throws; exactly one exception must come out and it must be
  // one of the thrown types (not a terminate, not a mixed/corrupted state).
  EXPECT_THROW(run_trials(32, 4,
                          [](std::size_t) {
                            throw std::runtime_error("every trial throws");
                          }),
               std::runtime_error);
}

}  // namespace
}  // namespace dbs::bench
