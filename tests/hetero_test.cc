#include "hetero/hetero.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Hetero, EqualBandwidthsReduceToEq2) {
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 1});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const std::vector<double> equal(4, 10.0);
  EXPECT_NEAR(hetero_wait(alloc, equal), program_waiting_time(alloc, 10.0), 1e-9);
}

TEST(Hetero, MoveGainMatchesRecomputedDelta) {
  const Database db = generate_database({.items = 30, .diversity = 2.0, .seed = 2});
  Allocation alloc = run_drp_cds(db, 3).allocation;
  const std::vector<double> bw = {25.0, 10.0, 4.0};
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const ItemId id = static_cast<ItemId>(rng.below(db.size()));
    const ChannelId to = static_cast<ChannelId>(rng.below(3));
    const double predicted = hetero_move_gain(alloc, bw, id, to);
    const double before = hetero_wait(alloc, bw);
    Allocation copy = alloc;
    copy.move(id, to);
    EXPECT_NEAR(before - hetero_wait(copy, bw), predicted, 1e-9);
  }
}

TEST(Hetero, SchedulerReachesLocalOptimum) {
  const Database db = generate_database({.items = 80, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 4});
  const std::vector<double> bw = {40.0, 20.0, 10.0, 5.0, 2.5};
  const HeteroResult r = schedule_hetero(db, bw);
  EXPECT_NEAR(r.wait, hetero_wait(r.allocation, bw), 1e-9);
  // No single move may improve at the local optimum.
  for (ItemId id = 0; id < db.size(); ++id) {
    for (ChannelId c = 0; c < 5; ++c) {
      EXPECT_LE(hetero_move_gain(r.allocation, bw, id, c), 1e-9);
    }
  }
}

TEST(Hetero, BeatsBandwidthBlindScheduling) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Database db = generate_database({.items = 90, .skewness = 1.0,
                                           .diversity = 2.0, .seed = seed});
    const std::vector<double> bw = {40.0, 10.0, 10.0, 2.0};
    const Allocation blind = run_drp_cds(db, 4).allocation;
    const HeteroResult tuned = schedule_hetero(db, bw);
    EXPECT_LE(tuned.wait, hetero_wait(blind, bw) + 1e-9) << "seed " << seed;
  }
}

TEST(Hetero, FastChannelsCarryMoreAccessProbabilityPerSize) {
  // The fastest channel should end with a higher frequency density than the
  // slowest (hot content gravitates to fast spectrum).
  const Database db = generate_database({.items = 120, .skewness = 1.2,
                                         .diversity = 2.0, .seed = 6});
  const std::vector<double> bw = {50.0, 10.0, 10.0, 1.0};
  const HeteroResult r = schedule_hetero(db, bw);
  const Allocation& a = r.allocation;
  // The slow channel pays 1/b per unit of load, so the optimizer drains
  // access probability from it; the fast channel can afford both more
  // frequency and more bytes. (Its *cycle* may well be longer — capacity is
  // cheap there.)
  EXPECT_GT(a.freq_of(0), a.freq_of(3));
  EXPECT_GT(a.size_of(0), a.size_of(3));
  // Per-frequency service on the fast channel is better: F-weighted cycle.
  if (a.freq_of(3) > 1e-9) {
    EXPECT_LT(a.size_of(0) / bw[0] * a.freq_of(0) + a.size_of(3) / bw[3] * a.freq_of(3),
              a.size_of(0) / bw[3] * a.freq_of(0) + a.size_of(3) / bw[0] * a.freq_of(3))
        << "swapping the fast and slow channels must hurt";
  }
}

TEST(Hetero, PermutingBandwidthsPermutesNothingEssential) {
  // The scheduler's result quality must not depend on the order in which the
  // bandwidth values are listed.
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 7});
  const HeteroResult a = schedule_hetero(db, {40.0, 10.0, 2.0});
  const HeteroResult b = schedule_hetero(db, {2.0, 40.0, 10.0});
  EXPECT_NEAR(a.wait, b.wait, 1e-6);
}

TEST(Hetero, SingleChannel) {
  const Database db = generate_database({.items = 10, .seed = 8});
  const HeteroResult r = schedule_hetero(db, {5.0});
  EXPECT_NEAR(r.wait, program_waiting_time(r.allocation, 5.0), 1e-9);
}

TEST(Hetero, RejectsBadInput) {
  const Database db = generate_database({.items = 10, .seed = 9});
  const Allocation alloc = run_drp_cds(db, 2).allocation;
  EXPECT_THROW(hetero_wait(alloc, {10.0}), ContractViolation);        // size mismatch
  EXPECT_THROW(hetero_wait(alloc, {10.0, 0.0}), ContractViolation);   // zero bw
  EXPECT_THROW(schedule_hetero(db, {}), ContractViolation);
  EXPECT_THROW(schedule_hetero(db, {10.0, -1.0}), ContractViolation);
}

}  // namespace
}  // namespace dbs
