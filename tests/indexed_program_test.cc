#include "air/indexed_program.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

const IndexConfig kIndex{.index_size = 1.0, .header_size = 0.05, .replication = 1};

Allocation one_channel(const Database& db) { return Allocation(db, 1); }

TEST(IndexedProgram, CycleIncludesIndexSegments) {
  const Database db({10.0, 10.0, 10.0}, {0.4, 0.3, 0.3});
  const Allocation alloc = one_channel(db);
  IndexConfig cfg = kIndex;
  cfg.replication = 3;
  const IndexedProgram program(alloc, 10.0, cfg);
  // Data 3s + 3 index segments of 0.1s.
  EXPECT_NEAR(program.cycle_time(0), 3.3, 1e-12);
  EXPECT_EQ(program.replication_of(0), 3u);
}

TEST(IndexedProgram, ReplicationCappedByItemCount) {
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const Allocation alloc = one_channel(db);
  IndexConfig cfg = kIndex;
  cfg.replication = 10;
  const IndexedProgram program(alloc, 10.0, cfg);
  EXPECT_LE(program.replication_of(0), 2u);
}

TEST(IndexedProgram, HandComputedReplay) {
  // One channel, b=10, index 1.0 (0.1s), header 0.05 (0.005s), m=1.
  // Layout: IDX [0, 0.1), item0 [0.1, 1.1), item1 [1.1, 3.1). Cycle 3.1.
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc = one_channel(db);
  const IndexedProgram program(alloc, 10.0, kIndex);
  // Client at t=0 wanting item0: header till 0.005, next index at 3.1 (the
  // t=0 index already started), index till 3.2, item0 at 3.2 -> done 4.2.
  {
    const auto r = program.replay_request(0, 0.0);
    EXPECT_NEAR(r.access, 4.2, 1e-9);
    EXPECT_NEAR(r.tuning, 0.005 + 0.1 + 1.0, 1e-12);
  }
  // Client just before the cycle's index: t = 3.0; header to 3.005, index at
  // 3.1 -> read till 3.2 -> item0 at 3.2, done 4.2 -> access 1.2.
  {
    const auto r = program.replay_request(0, 3.0);
    EXPECT_NEAR(r.access, 1.2, 1e-9);
  }
  // Item1: t=3.0 -> index read ends 3.2, item1 starts 4.2 (3.1+1.1), done 6.2
  // -> access 3.2.
  {
    const auto r = program.replay_request(1, 3.0);
    EXPECT_NEAR(r.access, 3.2, 1e-9);
  }
}

TEST(IndexedProgram, TuningIsHeaderPlusIndexPlusDownload) {
  const Database db = generate_database({.items = 30, .diversity = 1.5, .seed = 1});
  const Allocation alloc = run_drp_cds(db, 3).allocation;
  const IndexedProgram program(alloc, 10.0, kIndex);
  const auto trace = generate_trace(db, {.requests = 200, .seed = 2});
  for (const Request& r : trace) {
    const auto outcome = program.replay_request(r.item, r.time);
    const double expected =
        (kIndex.header_size + kIndex.index_size + db.item(r.item).size) / 10.0;
    EXPECT_NEAR(outcome.tuning, expected, 1e-12);
  }
}

TEST(IndexedProgram, EmpiricalAccessTracksAnalyticModel) {
  // The analytic (1,m) model of air/index.h should predict the replayed
  // access latency within ~15% (it idealizes the post-index wait).
  const Database db = generate_database({.items = 60, .skewness = 0.8,
                                         .diversity = 1.5, .seed = 3});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  for (std::size_t m : {1u, 2u, 4u}) {
    IndexConfig cfg = kIndex;
    cfg.replication = m;
    const IndexedProgram program(alloc, 10.0, cfg);
    const auto trace = generate_trace(db, {.requests = 40000, .arrival_rate = 20.0,
                                           .seed = 4});
    const IndexedSimReport report = program.replay(trace);
    double analytic = 0.0;
    for (ChannelId c = 0; c < alloc.channels(); ++c) {
      if (alloc.count_of(c) == 0) continue;
      analytic += alloc.freq_of(c) *
                  indexed_channel_metrics(alloc, c, 10.0, cfg).expected_access;
    }
    EXPECT_NEAR(report.access.mean, analytic, 0.15 * analytic) << "m=" << m;
  }
}

TEST(IndexedProgram, MoreReplicationCutsEmpiricalAccessOnLargeChannels) {
  const Database db = generate_database({.items = 80, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 5});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const auto trace = generate_trace(db, {.requests = 20000, .arrival_rate = 10.0,
                                         .seed = 6});
  IndexConfig m1 = kIndex;
  IndexConfig m4 = kIndex;
  m4.replication = 4;
  const double a1 = IndexedProgram(alloc, 10.0, m1).replay(trace).access.mean;
  const double a4 = IndexedProgram(alloc, 10.0, m4).replay(trace).access.mean;
  EXPECT_LT(a4, a1);
}

TEST(IndexedProgram, TuningFarBelowAlwaysListening) {
  const Database db = generate_database({.items = 60, .diversity = 2.0, .seed = 7});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const IndexedProgram program(alloc, 10.0, kIndex, /*optimal_m=*/true);
  const auto trace = generate_trace(db, {.requests = 10000, .seed = 8});
  const IndexedSimReport report = program.replay(trace);
  // Always-listening tuning time = full access latency ≥ W_b; selective
  // tuning should be an order of magnitude below.
  EXPECT_LT(report.tuning.mean, 0.4 * program_waiting_time(alloc, 10.0));
  EXPECT_LT(report.tuning.mean, report.access.mean);
}

TEST(IndexedProgram, RejectsBadConfig) {
  const Database db({1.0}, {1.0});
  const Allocation alloc(db, 1);
  IndexConfig bad = kIndex;
  bad.index_size = 0.0;
  EXPECT_THROW(IndexedProgram(alloc, 10.0, bad), ContractViolation);
  EXPECT_THROW(IndexedProgram(alloc, 0.0, kIndex), ContractViolation);
  IndexConfig zero_m = kIndex;
  zero_m.replication = 0;
  EXPECT_THROW(IndexedProgram(alloc, 10.0, zero_m), ContractViolation);
}

}  // namespace
}  // namespace dbs
