// End-to-end integration: workload generation → scheduling → physical
// broadcast program → discrete-event simulation → empirical metrics, plus
// the paper's qualitative experimental claims on small replicas of its
// experiment grid.
#include <gtest/gtest.h>

#include "api/scheduler.h"
#include "baselines/gopt.h"
#include "baselines/vfk.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace dbs {
namespace {

GoptOptions test_gopt(std::uint64_t seed) {
  GoptOptions o;
  o.population = 80;
  o.generations = 250;
  o.stall_generations = 80;
  o.seed = seed;
  return o;
}

TEST(Integration, FullPipelineEndsWithServedRequests) {
  const Database db = generate_database({.items = 80, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 1});
  ScheduleRequest request;
  request.algorithm = Algorithm::kDrpCds;
  request.channels = 5;
  const ScheduleResult scheduled = schedule(db, request);
  const BroadcastProgram program(scheduled.allocation, request.bandwidth);
  const auto trace = generate_trace(db, {.requests = 5000, .arrival_rate = 10.0, .seed = 2});
  const SimReport report = simulate(program, trace);
  EXPECT_EQ(report.requests_served, trace.size());
  EXPECT_GT(report.mean_wait(), 0.0);
  // Sanity: empirical within 25% of analytic even at this trace length.
  EXPECT_NEAR(report.mean_wait(), scheduled.waiting_time,
              0.25 * scheduled.waiting_time);
}

TEST(Integration, Figure2Shape_WaitFallsWithK_AndDrpCdsNearGopt) {
  const Database db = generate_database({.items = 120, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 3});
  double prev_drpcds = 1e18;
  for (ChannelId k : {4u, 6u, 8u, 10u}) {
    const double drpcds = program_waiting_time(run_drp_cds(db, k).allocation, 10.0);
    const double gopt =
        program_waiting_time(run_gopt(db, k, test_gopt(k)).allocation, 10.0);
    EXPECT_LT(drpcds, prev_drpcds) << "W_b must fall as K grows";
    prev_drpcds = drpcds;
    // Paper: DRP-CDS within ~3% of the (near-)optimal GOPT; allow 6% slack
    // for our reduced GA budget.
    EXPECT_LE(drpcds, 1.06 * gopt) << "K=" << k;
    EXPECT_GE(drpcds, gopt - 1e-9) << "GOPT seeded with DRP cannot be worse";
  }
}

TEST(Integration, Figure3Shape_WaitGrowsWithN) {
  double prev = 0.0;
  for (std::size_t n : {60u, 100u, 140u, 180u}) {
    const Database db = generate_database({.items = n, .skewness = 0.8,
                                           .diversity = 2.0, .seed = 4});
    const double w = program_waiting_time(run_drp_cds(db, 6).allocation, 10.0);
    EXPECT_GT(w, prev) << "N=" << n;
    prev = w;
  }
}

TEST(Integration, Figure4Shape_DiversityHurtsVfkMost) {
  // At Φ=0, VF^K is optimal (equal sizes); at Φ=3 it must trail DRP-CDS.
  const Database flat_db = generate_database({.items = 120, .skewness = 0.8,
                                              .diversity = 0.0, .seed = 5});
  EXPECT_LE(run_vfk(flat_db, 6).cost(), run_drp_cds(flat_db, 6).final_cost + 1e-9);

  double vfk_sum = 0.0, drp_sum = 0.0;
  for (std::uint64_t seed = 6; seed <= 10; ++seed) {
    const Database db = generate_database({.items = 120, .skewness = 0.8,
                                           .diversity = 3.0, .seed = seed});
    vfk_sum += program_waiting_time(run_vfk(db, 6), 10.0);
    drp_sum += program_waiting_time(run_drp_cds(db, 6).allocation, 10.0);
  }
  EXPECT_GT(vfk_sum, 1.05 * drp_sum);
}

TEST(Integration, Figure5Shape_WaitFallsWithSkewness) {
  double prev = 1e18;
  for (double theta : {0.4, 0.8, 1.2, 1.6}) {
    // Average a few seeds: single draws are noisy in item sizes.
    double sum = 0.0;
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
      const Database db = generate_database({.items = 120, .skewness = theta,
                                             .diversity = 2.0,
                                             .seed = seed});
      sum += program_waiting_time(run_drp_cds(db, 6).allocation, 10.0);
    }
    EXPECT_LT(sum, prev) << "theta=" << theta;
    prev = sum;
  }
}

TEST(Integration, Figure6And7Shape_DrpCdsOrdersOfMagnitudeFasterThanGopt) {
  const Database db = generate_database({.items = 120, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 15});
  ScheduleRequest fast;
  fast.algorithm = Algorithm::kDrpCds;
  fast.channels = 6;
  ScheduleRequest slow = fast;
  slow.algorithm = Algorithm::kGopt;
  slow.gopt = test_gopt(15);
  const double fast_ms = schedule(db, fast).elapsed_ms;
  const double slow_ms = schedule(db, slow).elapsed_ms;
  EXPECT_LT(fast_ms * 5.0, slow_ms)
      << "DRP-CDS " << fast_ms << "ms vs GOPT " << slow_ms << "ms";
}

TEST(Integration, DrpAloneExcellentAtPowersOfTwo) {
  // Paper §4.2: the DRP→DRP-CDS improvement is subtle at K = 2^n (items split
  // evenly), pronounced otherwise. Check the relative CDS gain at K=8 is
  // smaller than at K=6 on average.
  double gain_pow2 = 0.0, gain_other = 0.0;
  for (std::uint64_t seed = 16; seed <= 25; ++seed) {
    const Database db = generate_database({.items = 120, .skewness = 0.8,
                                           .diversity = 2.0, .seed = seed});
    const DrpCdsResult at8 = run_drp_cds(db, 8);
    const DrpCdsResult at6 = run_drp_cds(db, 6);
    gain_pow2 += (at8.drp_cost - at8.final_cost) / at8.drp_cost;
    gain_other += (at6.drp_cost - at6.final_cost) / at6.drp_cost;
  }
  EXPECT_LT(gain_pow2, gain_other);
}

TEST(Integration, SimulatedWaitRanksAlgorithmsLikeAnalyticCost) {
  const Database db = generate_database({.items = 100, .skewness = 1.0,
                                         .diversity = 2.5, .seed = 26});
  const auto trace = generate_trace(db, {.requests = 20000, .arrival_rate = 10.0, .seed = 27});
  auto empirical = [&](const Allocation& alloc) {
    return simulate(BroadcastProgram(alloc, 10.0), trace).mean_wait();
  };
  const double w_drpcds = empirical(run_drp_cds(db, 6).allocation);
  const double w_vfk = empirical(run_vfk(db, 6));
  EXPECT_LT(w_drpcds, w_vfk);
}

}  // namespace
}  // namespace dbs
