// Proves the DBS_OBS kill switch really compiles the macro layer down to
// nothing. This TU is built with DBS_OBS_ENABLED=0 forced by
// tests/CMakeLists.txt regardless of the build-wide DBS_OBS option, so the
// macros below must (a) register no instruments, (b) leave their argument
// expressions unevaluated, and (c) still type-check. When the whole build is
// configured with -DDBS_OBS=OFF, the extra section at the bottom also drives
// the real scheduler hot paths and asserts the process-global registry stays
// empty — the "grep the registry for zero registered instruments" gate.
#include <gtest/gtest.h>

#include "core/drp_cds.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "workload/generator.h"

static_assert(DBS_OBS_ENABLED == 0,
              "obs_killswitch_test must be compiled with the kill switch off");

namespace dbs {
namespace {

TEST(ObsKillswitch, MacrosRegisterNothing) {
  DBS_OBS_COUNTER_INC("killswitch.counter");
  DBS_OBS_COUNTER_ADD("killswitch.counter", 41);
  DBS_OBS_GAUGE_SET("killswitch.gauge", 2.5);
  DBS_OBS_HISTOGRAM_OBSERVE("killswitch.histogram", 7.0);
  { DBS_OBS_SPAN("killswitch.span"); }
  EXPECT_EQ(obs::MetricsRegistry::global().size(), 0u);
  EXPECT_TRUE(obs::MetricsRegistry::global().snapshot().empty());
}

TEST(ObsKillswitch, ArgumentsAreNotEvaluated) {
  int evaluations = 0;
  DBS_OBS_COUNTER_ADD("killswitch.side_effect", ++evaluations);
  DBS_OBS_GAUGE_SET("killswitch.side_effect2", ++evaluations);
  DBS_OBS_HISTOGRAM_OBSERVE("killswitch.side_effect3", ++evaluations);
  EXPECT_EQ(evaluations, 0) << "no-op macros must not evaluate their arguments";
}

TEST(ObsKillswitch, SpansRecordNothingEvenWithTracerEnabled) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  { DBS_OBS_SPAN("killswitch.traced_span"); }
  tracer.disable();
  EXPECT_TRUE(tracer.events().empty());
}

#if !DBS_OBS_LIBRARY_ENABLED
// Only meaningful when the *library* was also built with DBS_OBS=OFF: the
// instrumented hot paths run end-to-end and must leave the registry empty.
TEST(ObsKillswitch, LibraryHotPathsRegisterNothing) {
  const Database db = generate_database({.items = 80, .seed = 21});
  const DrpCdsResult result = run_drp_cds(db, 6);
  EXPECT_GT(result.final_cost, 0.0);
  EXPECT_EQ(obs::MetricsRegistry::global().size(), 0u)
      << "DBS_OBS=OFF build registered instruments from library code";
}
#endif

}  // namespace
}  // namespace dbs
