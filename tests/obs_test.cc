#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace dbs::obs {
namespace {

// Each test uses its own registry instance so tests stay independent of the
// process-global one (which library code touches whenever DBS_OBS is on).

TEST(MetricName, AcceptsDottedSnakeCase) {
  EXPECT_TRUE(valid_metric_name("core.cds.moves_evaluated"));
  EXPECT_TRUE(valid_metric_name("serve.epoch"));
  EXPECT_TRUE(valid_metric_name("a.b2_c.d"));
}

TEST(MetricName, RejectsMalformedNames) {
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("flat"));          // needs >= 2 components
  EXPECT_FALSE(valid_metric_name("Core.cds.runs")); // uppercase
  EXPECT_FALSE(valid_metric_name("core..runs"));    // empty component
  EXPECT_FALSE(valid_metric_name(".core.runs"));
  EXPECT_FALSE(valid_metric_name("core.runs."));
  EXPECT_FALSE(valid_metric_name("core.2fast"));    // digit-leading component
  EXPECT_FALSE(valid_metric_name("core.cds-runs")); // dash
  EXPECT_FALSE(valid_metric_name("core cds.runs")); // space
}

TEST(MetricsRegistry, RegistersLazilyAndReturnsStableRefs) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  Counter& c1 = registry.counter("test.counter");
  Counter& c2 = registry.counter("test.counter");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(registry.size(), 1u);
  c1.inc();
  c2.add(4);
  EXPECT_EQ(c1.value(), 5u);
}

TEST(MetricsRegistry, RejectsInvalidNamesAndKindCollisions) {
  MetricsRegistry registry;
  // dbs-lint: allow(obs-metric-names) — the invalid name is the test subject
  EXPECT_THROW(registry.counter("NotValid"), ContractViolation);
  registry.counter("test.name");
  EXPECT_THROW(registry.gauge("test.name"), ContractViolation);
  EXPECT_THROW(registry.histogram("test.name"), ContractViolation);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").inc();
  registry.counter("a.first").add(2);
  registry.gauge("m.gauge").set(1.5);
  registry.histogram("h.hist").observe(3.0);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.size(), 4u);
  EXPECT_FALSE(snap.empty());
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.counter("test.counter").add(7);
  registry.gauge("test.gauge").set(2.0);
  registry.histogram("test.hist").observe(1.0);
  registry.reset();
  EXPECT_EQ(registry.size(), 3u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].value, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 0.0);
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);    // le=1
  histogram.observe(1.0);    // le=1 (inclusive upper bound)
  histogram.observe(5.0);    // le=10
  histogram.observe(1000.0); // overflow
  const std::vector<std::uint64_t> counts = histogram.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), ContractViolation);
  EXPECT_THROW(Histogram({1.0, 1.0}), ContractViolation);
  EXPECT_THROW(Histogram({2.0, 1.0}), ContractViolation);
}

TEST(Histogram, DefaultBoundsCoverMicrosecondsToMegaunits) {
  const std::vector<double> bounds = Histogram::default_bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_LT(bounds.front(), 1e-3);
  EXPECT_GT(bounds.back(), 1e6);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Registration races on the same names on purpose.
      for (int i = 0; i < kIncrements; ++i) {
        registry.counter("race.counter").inc();
        registry.histogram("race.hist").observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("race.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.histogram("race.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(registry.histogram("race.hist").sum(),
                   static_cast<double>(kThreads) * kIncrements);
}

TEST(Exporters, JsonCarriesEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("test.counter").add(3);
  registry.gauge("test.gauge").set(0.25);
  registry.histogram("test.hist").observe(2.0);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"schema\": \"dbs-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.counter\", \"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\", \"value\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(Exporters, TextListsOneInstrumentPerLine) {
  MetricsRegistry registry;
  registry.counter("test.counter").add(3);
  registry.gauge("test.gauge").set(0.25);
  const std::string text = to_text(registry.snapshot());
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_EQ(to_text(MetricsSnapshot{}), "(no instruments registered)\n");
}

TEST(Macros, RecordIntoTheGlobalRegistry) {
#if DBS_OBS_ENABLED
  // The global registry accumulates across tests in this binary; measure
  // deltas instead of absolutes.
  const std::uint64_t before =
      MetricsRegistry::global().counter("obs_test.macro_counter").value();
  DBS_OBS_COUNTER_INC("obs_test.macro_counter");
  DBS_OBS_COUNTER_ADD("obs_test.macro_counter", 2);
  EXPECT_EQ(MetricsRegistry::global().counter("obs_test.macro_counter").value(),
            before + 3);
  DBS_OBS_GAUGE_SET("obs_test.macro_gauge", 4.5);
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("obs_test.macro_gauge").value(),
                   4.5);
  DBS_OBS_HISTOGRAM_OBSERVE("obs_test.macro_hist", 1.0);
  EXPECT_GE(MetricsRegistry::global().histogram("obs_test.macro_hist").count(), 1u);
#else
  // DBS_OBS=OFF build: the macros must be inert (the dedicated
  // obs_killswitch_test covers this in depth in every flavor).
  DBS_OBS_COUNTER_INC("obs_test.macro_counter");
  for (const CounterSample& c : MetricsRegistry::global().snapshot().counters) {
    EXPECT_NE(c.name, "obs_test.macro_counter");
  }
#endif
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  tracer.clear();
  { DBS_OBS_SPAN("obs_test.disabled_span"); }
  tracer.instant("obs_test.disabled_instant");
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, EnabledTracerRecordsSpansWithDurations) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  // Direct ScopedSpan use (not the macro) so this exercises the tracer
  // itself in DBS_OBS=OFF builds too.
  {
    ScopedSpan outer("obs_test.outer");
    { ScopedSpan inner("obs_test.inner"); }
  }
  tracer.instant("obs_test.mark");
  tracer.disable();
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "obs_test.inner");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[1].name, "obs_test.outer");
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_EQ(events[2].name, "obs_test.mark");
  EXPECT_EQ(events[2].ph, 'i');
  EXPECT_EQ(events[2].dur_us, 0.0);
  tracer.clear();
}

}  // namespace
}  // namespace dbs::obs
