#include "ondemand/server.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(OnDemand, PolicyNamesRoundTrip) {
  for (OnDemandPolicy p : all_ondemand_policies()) {
    EXPECT_NE(ondemand_policy_name(p), "unknown");
  }
  EXPECT_EQ(all_ondemand_policies().size(), 5u);
}

TEST(OnDemand, EmptyTrace) {
  const Database db({1.0}, {1.0});
  const OnDemandReport r = run_ondemand(db, {}, {});
  EXPECT_EQ(r.requests_served, 0u);
  EXPECT_EQ(r.broadcasts, 0u);
}

TEST(OnDemand, SingleRequestHandComputed) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  // Request at t=1 for item 1 (service 2s at b=10): starts immediately,
  // completes at 3, wait 2, stretch 1.
  const OnDemandReport r =
      run_ondemand(db, {{1.0, 1}}, {.policy = OnDemandPolicy::kFcfs});
  EXPECT_EQ(r.requests_served, 1u);
  EXPECT_EQ(r.broadcasts, 1u);
  EXPECT_NEAR(r.waiting.mean, 2.0, 1e-12);
  EXPECT_NEAR(r.stretch.mean, 1.0, 1e-12);
  EXPECT_NEAR(r.makespan, 3.0, 1e-12);
}

TEST(OnDemand, BatchingServesManyWithOneBroadcast) {
  const Database db({100.0, 1.0}, {0.5, 0.5});
  // Item 0 takes 10s. First request at t=0 starts it; requests arriving
  // during [0,10) for item 0 must be batched into the *next* broadcast.
  std::vector<Request> trace = {{0.0, 0}, {1.0, 0}, {2.0, 0}, {3.0, 0}};
  const OnDemandReport r = run_ondemand(db, trace, {.policy = OnDemandPolicy::kMrf});
  EXPECT_EQ(r.requests_served, 4u);
  EXPECT_EQ(r.broadcasts, 2u);  // one for the first, one batching the rest
  // First wait: 10. Others: complete at 20 -> waits 19, 18, 17.
  EXPECT_NEAR(r.waiting.max, 19.0, 1e-9);
  EXPECT_NEAR(r.makespan, 20.0, 1e-9);
}

TEST(OnDemand, FcfsOrdersByOldestRequest) {
  const Database db({10.0, 10.0, 10.0}, {0.4, 0.3, 0.3});
  // All requests arrive while item 0 is on air; FCFS must then serve item 2
  // (older request) before item 1.
  std::vector<Request> trace = {{0.0, 0}, {0.1, 2}, {0.2, 1}};
  const OnDemandReport r = run_ondemand(db, trace, {.policy = OnDemandPolicy::kFcfs});
  EXPECT_EQ(r.broadcasts, 3u);
  // item2 completes at 2, item1 at 3 (b=10: each service 1s).
  EXPECT_NEAR(r.makespan, 3.0, 1e-9);
  EXPECT_NEAR(r.waiting.max, 2.8, 1e-9);  // item1: 3 - 0.2
}

TEST(OnDemand, MrfPrefersPopularItemFcfsPrefersOldest) {
  const Database db({10.0, 10.0}, {0.5, 0.5});
  // While item 0 is on air [0,1), a second item-0 request arrives at 0.1 and
  // three item-1 requests at 0.2-0.4. At t=1 FCFS serves item 0 (oldest
  // pending, 0.1) while MRF serves item 1 (3 pending vs 1).
  std::vector<Request> trace = {{0.0, 0}, {0.1, 0}, {0.2, 1}, {0.3, 1}, {0.4, 1}};
  const OnDemandReport mrf = run_ondemand(db, trace, {.policy = OnDemandPolicy::kMrf});
  const OnDemandReport fcfs = run_ondemand(db, trace, {.policy = OnDemandPolicy::kFcfs});
  // MRF waits: 1.0 + 2.9 + (1.8+1.7+1.6) = 9.0; FCFS: 1.0 + 1.9 +
  // (2.8+2.7+2.6) = 11.0.
  EXPECT_NEAR(mrf.waiting.mean, 9.0 / 5.0, 1e-9);
  EXPECT_NEAR(fcfs.waiting.mean, 11.0 / 5.0, 1e-9);
  EXPECT_LT(mrf.waiting.mean, fcfs.waiting.mean);
}

TEST(OnDemand, AllRequestsServedUnderEveryPolicy) {
  const Database db = generate_database({.items = 40, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 1});
  const auto trace = generate_trace(db, {.requests = 3000, .arrival_rate = 6.0,
                                         .seed = 2});
  for (OnDemandPolicy policy : all_ondemand_policies()) {
    const OnDemandReport r =
        run_ondemand(db, trace, {.policy = policy, .channels = 2, .bandwidth = 10.0});
    EXPECT_EQ(r.requests_served, trace.size())
        << ondemand_policy_name(policy);
    EXPECT_GT(r.broadcasts, 0u);
    EXPECT_GT(r.mean_stretch(), 0.0);
  }
}

TEST(OnDemand, DeterministicAcrossRuns) {
  const Database db = generate_database({.items = 30, .diversity = 1.5, .seed = 3});
  const auto trace = generate_trace(db, {.requests = 2000, .arrival_rate = 10.0,
                                         .seed = 4});
  const OnDemandConfig cfg{.policy = OnDemandPolicy::kRxW, .channels = 3,
                           .bandwidth = 10.0};
  const OnDemandReport a = run_ondemand(db, trace, cfg);
  const OnDemandReport b = run_ondemand(db, trace, cfg);
  EXPECT_DOUBLE_EQ(a.waiting.mean, b.waiting.mean);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
}

TEST(OnDemand, MoreChannelsReduceWaits) {
  const Database db = generate_database({.items = 50, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 5});
  const auto trace = generate_trace(db, {.requests = 4000, .arrival_rate = 12.0,
                                         .seed = 6});
  const OnDemandReport one =
      run_ondemand(db, trace, {.policy = OnDemandPolicy::kRxW, .channels = 1});
  const OnDemandReport four =
      run_ondemand(db, trace, {.policy = OnDemandPolicy::kRxW, .channels = 4});
  EXPECT_LT(four.waiting.mean, one.waiting.mean);
}

TEST(OnDemand, LtsfControlsStretchBetterThanFcfsOnDiverseSizes) {
  // The size-aware policy should cut the tail stretch (small items stuck
  // behind huge ones) relative to FCFS under load.
  const Database db = generate_database({.items = 60, .skewness = 1.0,
                                         .diversity = 3.0, .seed = 7});
  const auto trace = generate_trace(db, {.requests = 5000, .arrival_rate = 4.0,
                                         .seed = 8});
  const OnDemandReport fcfs =
      run_ondemand(db, trace, {.policy = OnDemandPolicy::kFcfs, .channels = 1,
                               .bandwidth = 10.0});
  const OnDemandReport ltsf =
      run_ondemand(db, trace, {.policy = OnDemandPolicy::kLtsf, .channels = 1,
                               .bandwidth = 10.0});
  EXPECT_LT(ltsf.stretch.p95, fcfs.stretch.p95);
}

TEST(OnDemand, RejectsBadConfig) {
  const Database db({1.0}, {1.0});
  EXPECT_THROW(run_ondemand(db, {{0.0, 0}}, {.channels = 0}), ContractViolation);
  EXPECT_THROW(run_ondemand(db, {{0.0, 0}}, {.bandwidth = 0.0}), ContractViolation);
  EXPECT_THROW(run_ondemand(db, {{0.0, 7}}, {}), ContractViolation);
}

}  // namespace
}  // namespace dbs
