// The full operator story, end to end: estimate popularity from a trace,
// schedule, persist the program, reload it at "the broadcast tower",
// put it on air in the simulator, and confirm clients see the predicted
// waiting times. Exercises workload → core → model-IO → sim as one pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "core/drp_cds.h"
#include "model/allocation_io.h"
#include "model/cost.h"
#include "sim/simulator.h"
#include "workload/catalog_io.h"
#include "workload/estimate.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(OperatorStory, EstimateScheduleStoreLoadSimulate) {
  // --- ground truth the operator cannot see directly --------------------
  const Database truth = generate_database({.items = 60, .skewness = 1.1,
                                            .diversity = 2.0, .seed = 77});

  // --- 1. observe a request window and estimate popularity --------------
  const auto observed =
      generate_trace(truth, {.requests = 30000, .arrival_rate = 20.0, .seed = 78});
  const auto estimated = estimate_frequencies(observed, truth.size(), 1.0);

  // --- 2. build the catalogue from known sizes + estimated popularity ---
  std::vector<double> sizes;
  for (const Item& it : truth.items()) sizes.push_back(it.size);
  const Database catalogue(sizes, estimated);

  // Round-trip the catalogue through its CSV form, as an operator would.
  std::ostringstream catalog_text;
  store_catalog(catalog_text,
                Catalog{catalogue, std::vector<std::string>(catalogue.size())});
  std::istringstream catalog_in(catalog_text.str());
  const Catalog reloaded_catalog = load_catalog(catalog_in);
  ASSERT_EQ(reloaded_catalog.database.size(), catalogue.size());

  // --- 3. schedule and persist the allocation ---------------------------
  const ChannelId k = 5;
  const double bandwidth = 10.0;
  const DrpCdsResult scheduled = run_drp_cds(reloaded_catalog.database, k);
  std::ostringstream alloc_text;
  store_allocation(alloc_text, scheduled.allocation, bandwidth);

  // --- 4. reload at the tower and go on air -----------------------------
  std::istringstream alloc_in(alloc_text.str());
  const StoredAllocation on_air = load_allocation(alloc_in, reloaded_catalog.database);
  EXPECT_EQ(on_air.allocation.assignment(), scheduled.allocation.assignment());

  const BroadcastProgram program(on_air.allocation, on_air.bandwidth);
  // Clients keep following the *true* popularity, not the estimate.
  const auto live =
      generate_trace(truth, {.requests = 40000, .arrival_rate = 20.0, .seed = 79});
  const SimReport report = simulate(program, live);

  // --- 5. the measured wait matches the model, and the estimated-schedule
  //        program is near the one an oracle would have built ------------
  EXPECT_EQ(report.requests_served, live.size());
  // Predicted wait uses the estimate; realized wait uses true popularity.
  // With 30k observations they must agree within a few percent.
  const double predicted = program_waiting_time(on_air.allocation, bandwidth);
  EXPECT_NEAR(report.mean_wait(), predicted, 0.05 * predicted);

  const DrpCdsResult oracle = run_drp_cds(truth, k);
  const double oracle_wait = program_waiting_time(oracle.allocation, bandwidth);
  EXPECT_LE(report.mean_wait(), 1.10 * oracle_wait)
      << "estimation error must not cost more than ~10% of the oracle wait";
}

}  // namespace
}  // namespace dbs
