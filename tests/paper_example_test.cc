// Integration tests against the paper's worked example (Tables 2-4).
//
// One documented discrepancy: the paper's Table 3(d) splits the group with
// cost 7.02 in the fourth iteration although a group with cost 7.26 exists,
// contradicting the pseudocode's ReturnMax(MaxPQ) rule (§3.1). We implement
// the pseudocode, so our fourth split picks the 7.26 group and plain DRP
// lands at ≈24.22 instead of the paper's 24.09. The CDS trace of Table 4 is
// internally consistent and is reproduced exactly from the paper's own
// Table 4(a) starting point.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cds.h"
#include "core/drp.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/paper_example.h"

namespace dbs {
namespace {

// Builds the paper's Table 4(a) grouping (= Table 3(d) DRP output):
// g0 {d9,d2,d3}, g1 {d6,d5,d15}, g2 {d1,d12}, g3 {d10,d13,d4,d8},
// g4 {d14,d7,d11}; ids are paper indices minus one.
Allocation paper_table4a_allocation(const Database& db) {
  std::vector<ChannelId> assignment(15, 0);
  auto set_group = [&](std::initializer_list<int> paper_ids, ChannelId c) {
    for (int d : paper_ids) assignment[static_cast<std::size_t>(d - 1)] = c;
  };
  set_group({9, 2, 3}, 0);
  set_group({6, 5, 15}, 1);
  set_group({1, 12}, 2);
  set_group({10, 13, 4, 8}, 3);
  set_group({14, 7, 11}, 4);
  return Allocation(db, 5, std::move(assignment));
}

TEST(PaperExample, InitialCostIs135_60) {
  const Database db = paper_table2_database();
  const Allocation everything(db, 1);
  EXPECT_NEAR(everything.cost(), kPaperInitialCost, 0.005);
}

TEST(PaperExample, FirstDrpSplitMatchesTable3b) {
  const Database db = paper_table2_database();
  const DrpResult two = run_drp(db, 2);
  ASSERT_EQ(two.groups.size(), 2u);
  // Split between d12 and d10: 8 items left, 7 right.
  EXPECT_EQ(two.groups[0].end, 8u);
  // Exact values are 29.0441 and 28.6120; the paper prints 29.04 and 28.62
  // (its second figure looks like an upward rounding slip), so allow 0.01.
  EXPECT_NEAR(two.groups[0].cost, kPaperFirstSplitCostA, 0.01);
  EXPECT_NEAR(two.groups[1].cost, kPaperFirstSplitCostB, 0.01);
}

TEST(PaperExample, SecondDrpIterationMatchesTable3c) {
  const Database db = paper_table2_database();
  const DrpResult three = run_drp(db, 3);
  ASSERT_EQ(three.groups.size(), 3u);
  std::vector<double> costs;
  for (const DrpGroup& g : three.groups) costs.push_back(g.cost);
  std::sort(costs.begin(), costs.end());
  // Table 3(c): 7.02, 6.82, 28.62 (exact: 7.0227, 6.8204, 28.6120).
  EXPECT_NEAR(costs[0], 6.82, 0.01);
  EXPECT_NEAR(costs[1], 7.02, 0.01);
  EXPECT_NEAR(costs[2], 28.62, 0.01);
}

TEST(PaperExample, DrpFiveGroupsFollowPseudocode) {
  // Following ReturnMax strictly, the fourth iteration splits the 7.26 group
  // {d10,d13,d4,d8} into {d10,d13} and {d4,d8}; total cost ≈ 24.22 (the
  // paper's table shows 24.09 by splitting the 7.02 group instead — see the
  // file comment).
  const Database db = paper_table2_database();
  const DrpResult five = run_drp(db, 5);
  ASSERT_EQ(five.groups.size(), 5u);
  EXPECT_NEAR(five.allocation.cost(), 24.22, 0.01);
}

TEST(PaperExample, Table4aStartingCostIs24_09) {
  const Database db = paper_table2_database();
  const Allocation alloc = paper_table4a_allocation(db);
  EXPECT_NEAR(alloc.cost(), kPaperDrpCost, 0.01);
}

TEST(PaperExample, CdsFirstMoveIsD10ToGroup2WithGain0_95) {
  const Database db = paper_table2_database();
  const Allocation alloc = paper_table4a_allocation(db);
  const CdsMove move = best_move(alloc);
  EXPECT_EQ(move.item, 9u);   // d10
  EXPECT_EQ(move.from, 3u);   // paper group 4
  EXPECT_EQ(move.to, 1u);     // paper group 2
  EXPECT_NEAR(move.gain, kPaperCdsFirstGain, 0.005);
}

TEST(PaperExample, CdsSecondMoveIsD12WithGain0_45) {
  const Database db = paper_table2_database();
  Allocation alloc = paper_table4a_allocation(db);
  alloc.move(9, 1);  // apply the first move
  EXPECT_NEAR(alloc.cost(), kPaperCdsAfterFirst, 0.01);
  const CdsMove move = best_move(alloc);
  EXPECT_EQ(move.item, 11u);  // d12
  EXPECT_EQ(move.from, 2u);   // paper group 3
  EXPECT_EQ(move.to, 1u);     // paper group 2
  EXPECT_NEAR(move.gain, kPaperCdsSecondGain, 0.005);
}

TEST(PaperExample, CdsReachesLocalOptimum22_29) {
  const Database db = paper_table2_database();
  Allocation alloc = paper_table4a_allocation(db);
  const CdsStats stats = run_cds(alloc);
  EXPECT_NEAR(alloc.cost(), kPaperCdsFinalCost, 0.01);
  EXPECT_GE(stats.iterations, 2u);
  EXPECT_LE(best_move(alloc).gain, 1e-12);
}

TEST(PaperExample, CdsFinalGroupingMatchesTable4d) {
  const Database db = paper_table2_database();
  Allocation alloc = paper_table4a_allocation(db);
  run_cds(alloc);
  // Table 4(d): {d9,d2,d3,d6} {d5,d15,d10,d12,d14} {d1} {d13,d4,d8} {d7,d11}.
  auto group_of = [&](int paper_id) {
    return alloc.channel_of(static_cast<ItemId>(paper_id - 1));
  };
  EXPECT_EQ(alloc.count_of(group_of(9)), 4u);
  for (int d : {9, 2, 3, 6}) EXPECT_EQ(group_of(d), group_of(9)) << "d" << d;
  EXPECT_EQ(alloc.count_of(group_of(5)), 5u);
  for (int d : {5, 15, 10, 12, 14}) EXPECT_EQ(group_of(d), group_of(5)) << "d" << d;
  EXPECT_EQ(alloc.count_of(group_of(1)), 1u);
  EXPECT_EQ(alloc.count_of(group_of(13)), 3u);
  for (int d : {13, 4, 8}) EXPECT_EQ(group_of(d), group_of(13)) << "d" << d;
  EXPECT_EQ(alloc.count_of(group_of(7)), 2u);
  EXPECT_EQ(group_of(7), group_of(11));
}

TEST(PaperExample, DrpCdsEndsNearPaperOptimum) {
  // Even though our DRP diverges at the fourth split, CDS refinement lands
  // within a whisker of the paper's 22.29 local optimum.
  const Database db = paper_table2_database();
  const DrpCdsResult result = run_drp_cds(db, 5);
  EXPECT_LE(result.final_cost, 22.70);
  EXPECT_GE(result.final_cost, 21.50);
  EXPECT_LE(result.final_cost, result.drp_cost);
}

TEST(PaperExample, WaitingTimeAtTable5Bandwidth) {
  // b = 10 size units/s (Table 5). W_b = cost/2b + Σfz/b is easy to pin.
  const Database db = paper_table2_database();
  Allocation alloc = paper_table4a_allocation(db);
  run_cds(alloc);
  const double expected =
      alloc.cost() / 20.0 + download_component(db, 10.0);
  EXPECT_NEAR(program_waiting_time(alloc, 10.0), expected, 1e-12);
}

}  // namespace
}  // namespace dbs
