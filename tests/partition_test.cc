#include "core/partition.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(PrefixSums, MatchesDirectSums) {
  const Database db({2.0, 4.0, 8.0}, {0.5, 0.3, 0.2});
  const std::vector<ItemId> order = {2, 0, 1};
  const PrefixSums sums(db, order);
  EXPECT_DOUBLE_EQ(sums.freq_of(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(sums.size_of(0, 3), 14.0);
  EXPECT_DOUBLE_EQ(sums.freq_of(0, 1), 0.2);  // item 2 first
  EXPECT_DOUBLE_EQ(sums.size_of(1, 3), 6.0);  // items 0, 1
  EXPECT_DOUBLE_EQ(sums.cost_of(1, 3), 0.8 * 6.0);
}

TEST(PrefixSums, EmptySliceIsZero) {
  const Database db({1.0}, {1.0});
  const std::vector<ItemId> order = {0};
  const PrefixSums sums(db, order);
  EXPECT_DOUBLE_EQ(sums.cost_of(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sums.cost_of(1, 1), 0.0);
}

TEST(PrefixSums, DefaultConstructedIsEmpty) {
  const PrefixSums sums;
  EXPECT_EQ(sums.items(), 0u);
  EXPECT_DOUBLE_EQ(sums.cost_of(0, 0), 0.0);
}

TEST(PrefixSums, UpdateSuffixMatchesFullRebuild) {
  const Database db = generate_database({.items = 50, .diversity = 2.5, .seed = 77});
  std::vector<ItemId> order = db.ids_by_benefit_ratio_desc();
  PrefixSums incremental(db, order);

  // Permute only the tail, then repair from the first changed position: the
  // incremental arrays must be element-for-element identical to a rebuild
  // (same additions in the same order — not merely numerically close).
  std::reverse(order.begin() + 20, order.end());
  incremental.update_suffix(db, order, 20);
  const PrefixSums rebuilt(db, order);
  EXPECT_EQ(incremental.freq, rebuilt.freq);
  EXPECT_EQ(incremental.size, rebuilt.size);
}

TEST(PrefixSums, UpdateSuffixGrowsAndShrinksWithTheOrder) {
  const Database db = generate_database({.items = 30, .seed = 78});
  const std::vector<ItemId> order = db.ids_by_benefit_ratio_desc();
  const std::span<const ItemId> all(order);

  PrefixSums sums(db, all.first(10));
  sums.update_suffix(db, all.first(30), 10);  // grow: recompute [10, 30)
  const PrefixSums full(db, all.first(30));
  EXPECT_EQ(sums.freq, full.freq);
  EXPECT_EQ(sums.size, full.size);

  sums.update_suffix(db, all.first(5), 5);  // shrink: pure truncation
  const PrefixSums small(db, all.first(5));
  EXPECT_EQ(sums.freq, small.freq);
  EXPECT_EQ(sums.size, small.size);
}

TEST(PrefixSums, UpdateSuffixRejectsOutOfRangeArguments) {
  const Database db = generate_database({.items = 10, .seed = 79});
  const std::vector<ItemId> order = db.ids_by_benefit_ratio_desc();
  PrefixSums sums(db, order);
  EXPECT_THROW(sums.update_suffix(db, order, order.size() + 1), ContractViolation);
}

TEST(DatabaseBenefitPrefix, MatchesAdHocConstruction) {
  // The Database-cached PrefixSums over the benefit order must be exactly
  // what constructing one by hand yields — DRP consumes it directly.
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 80});
  const PrefixSums ad_hoc(db, db.benefit_order());
  EXPECT_EQ(db.benefit_prefix().freq, ad_hoc.freq);
  EXPECT_EQ(db.benefit_prefix().size, ad_hoc.size);
  EXPECT_EQ(db.benefit_prefix().items(), db.size());
}

TEST(BestSplit, TwoItemsSplitBetweenThem) {
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 2);
  EXPECT_EQ(r.split, 1u);
  EXPECT_DOUBLE_EQ(r.left_cost, 0.5);
  EXPECT_DOUBLE_EQ(r.right_cost, 0.5);
}

TEST(BestSplit, MatchesExhaustiveScan) {
  const Database db = generate_database({.items = 40, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 13});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 5, 35);
  double best = r.total();
  for (std::size_t p = 6; p < 35; ++p) {
    const double total = sums.cost_of(5, p) + sums.cost_of(p, 35);
    EXPECT_GE(total + 1e-12, best);
  }
  // And the reported split really achieves the reported costs.
  EXPECT_DOUBLE_EQ(sums.cost_of(5, r.split), r.left_cost);
  EXPECT_DOUBLE_EQ(sums.cost_of(r.split, 35), r.right_cost);
}

TEST(BestSplit, SplitStrictlyInsideSlice) {
  const Database db = generate_database({.items = 20, .seed = 14});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 3, 17);
  EXPECT_GT(r.split, 3u);
  EXPECT_LT(r.split, 17u);
}

TEST(BestSplit, SplittingNeverIncreasesCost) {
  // cost is superadditive under concatenation:
  // (Fl+Fr)(Zl+Zr) >= FlZl + FrZr, so any split is at least as good.
  const Database db = generate_database({.items = 60, .diversity = 3.0, .seed = 15});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 60);
  EXPECT_LE(r.total(), sums.cost_of(0, 60) + 1e-12);
}

TEST(BestSplit, TiesResolveToSmallestIndex) {
  // Four identical items: splits at 1, 2, 3 all give the same total
  // (symmetric); implementation must return the first.
  const Database db({1.0, 1.0, 1.0, 1.0}, {0.25, 0.25, 0.25, 0.25});
  const std::vector<ItemId> order = {0, 1, 2, 3};
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 4);
  // total at p: p items (p/4 freq * p size) + (4-p)/4*(4-p): p=1: .25+2.25=2.5;
  // p=2: 1+1=2; p=3: 2.25+.25=2.5 -> unique best p=2 here. Use 3 items for a
  // genuine tie: p=1: .111*1+.666*2? Use direct check instead.
  EXPECT_EQ(r.split, 2u);
}

TEST(BestSplit, GenuineTieGoesLeft) {
  // Two identical items around a pivot: cost(1)+cost(2,3) vs cost(0,2)+cost(3).
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  EXPECT_EQ(best_split(sums, 0, 2).split, 1u);
}

TEST(BestSplit, RejectsUnsplittableSlices) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  EXPECT_THROW(best_split(sums, 0, 1), ContractViolation);
  EXPECT_THROW(best_split(sums, 1, 1), ContractViolation);
  EXPECT_THROW(best_split(sums, 0, 3), ContractViolation);
}

}  // namespace
}  // namespace dbs
