#include "core/partition.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(PrefixSums, MatchesDirectSums) {
  const Database db({2.0, 4.0, 8.0}, {0.5, 0.3, 0.2});
  const std::vector<ItemId> order = {2, 0, 1};
  const PrefixSums sums(db, order);
  EXPECT_DOUBLE_EQ(sums.freq_of(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(sums.size_of(0, 3), 14.0);
  EXPECT_DOUBLE_EQ(sums.freq_of(0, 1), 0.2);  // item 2 first
  EXPECT_DOUBLE_EQ(sums.size_of(1, 3), 6.0);  // items 0, 1
  EXPECT_DOUBLE_EQ(sums.cost_of(1, 3), 0.8 * 6.0);
}

TEST(PrefixSums, EmptySliceIsZero) {
  const Database db({1.0}, {1.0});
  const std::vector<ItemId> order = {0};
  const PrefixSums sums(db, order);
  EXPECT_DOUBLE_EQ(sums.cost_of(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sums.cost_of(1, 1), 0.0);
}

TEST(BestSplit, TwoItemsSplitBetweenThem) {
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 2);
  EXPECT_EQ(r.split, 1u);
  EXPECT_DOUBLE_EQ(r.left_cost, 0.5);
  EXPECT_DOUBLE_EQ(r.right_cost, 0.5);
}

TEST(BestSplit, MatchesExhaustiveScan) {
  const Database db = generate_database({.items = 40, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 13});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 5, 35);
  double best = r.total();
  for (std::size_t p = 6; p < 35; ++p) {
    const double total = sums.cost_of(5, p) + sums.cost_of(p, 35);
    EXPECT_GE(total + 1e-12, best);
  }
  // And the reported split really achieves the reported costs.
  EXPECT_DOUBLE_EQ(sums.cost_of(5, r.split), r.left_cost);
  EXPECT_DOUBLE_EQ(sums.cost_of(r.split, 35), r.right_cost);
}

TEST(BestSplit, SplitStrictlyInsideSlice) {
  const Database db = generate_database({.items = 20, .seed = 14});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 3, 17);
  EXPECT_GT(r.split, 3u);
  EXPECT_LT(r.split, 17u);
}

TEST(BestSplit, SplittingNeverIncreasesCost) {
  // cost is superadditive under concatenation:
  // (Fl+Fr)(Zl+Zr) >= FlZl + FrZr, so any split is at least as good.
  const Database db = generate_database({.items = 60, .diversity = 3.0, .seed = 15});
  const auto order = db.ids_by_benefit_ratio_desc();
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 60);
  EXPECT_LE(r.total(), sums.cost_of(0, 60) + 1e-12);
}

TEST(BestSplit, TiesResolveToSmallestIndex) {
  // Four identical items: splits at 1, 2, 3 all give the same total
  // (symmetric); implementation must return the first.
  const Database db({1.0, 1.0, 1.0, 1.0}, {0.25, 0.25, 0.25, 0.25});
  const std::vector<ItemId> order = {0, 1, 2, 3};
  const PrefixSums sums(db, order);
  const SplitResult r = best_split(sums, 0, 4);
  // total at p: p items (p/4 freq * p size) + (4-p)/4*(4-p): p=1: .25+2.25=2.5;
  // p=2: 1+1=2; p=3: 2.25+.25=2.5 -> unique best p=2 here. Use 3 items for a
  // genuine tie: p=1: .111*1+.666*2? Use direct check instead.
  EXPECT_EQ(r.split, 2u);
}

TEST(BestSplit, GenuineTieGoesLeft) {
  // Two identical items around a pivot: cost(1)+cost(2,3) vs cost(0,2)+cost(3).
  const Database db({1.0, 1.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  EXPECT_EQ(best_split(sums, 0, 2).split, 1u);
}

TEST(BestSplit, RejectsUnsplittableSlices) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  const std::vector<ItemId> order = {0, 1};
  const PrefixSums sums(db, order);
  EXPECT_THROW(best_split(sums, 0, 1), ContractViolation);
  EXPECT_THROW(best_split(sums, 1, 1), ContractViolation);
  EXPECT_THROW(best_split(sums, 0, 3), ContractViolation);
}

}  // namespace
}  // namespace dbs
