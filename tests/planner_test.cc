#include "api/planner.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Planner, SweepCoversAllFeasibleK) {
  const Database db = generate_database({.items = 30, .seed = 1});
  const PlanResult r = plan_channel_count(db, 60.0, 8);
  EXPECT_EQ(r.sweep.size(), 8u);
  for (std::size_t i = 0; i < r.sweep.size(); ++i) {
    EXPECT_EQ(r.sweep[i].channels, i + 1);
    EXPECT_NEAR(r.sweep[i].per_channel_bandwidth, 60.0 / (i + 1), 1e-12);
  }
}

TEST(Planner, CapsAtDatabaseSize) {
  const Database db = generate_database({.items = 5, .seed = 2});
  const PlanResult r = plan_channel_count(db, 10.0, 20);
  EXPECT_EQ(r.sweep.size(), 5u);
}

TEST(Planner, BestIsTheSweepMinimum) {
  const Database db = generate_database({.items = 60, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 3});
  const PlanResult r = plan_channel_count(db, 40.0, 10);
  double min_wait = r.sweep.front().waiting_time;
  for (const PlanPoint& p : r.sweep) min_wait = std::min(min_wait, p.waiting_time);
  EXPECT_NEAR(r.best.waiting_time, min_wait, 1e-12);
  EXPECT_EQ(r.best.allocation.channels(), r.best_channels);
}

TEST(Planner, FixedTotalBandwidthHasInteriorOrBoundaryOptimum) {
  // Under a fixed budget more channels are NOT automatically better: the
  // chosen K must actually beat K=1 on skewed data, and every sweep value
  // must be a real waiting time.
  const Database db = generate_database({.items = 100, .skewness = 1.2,
                                         .diversity = 2.0, .seed = 4});
  const PlanResult r = plan_channel_count(db, 50.0, 10);
  EXPECT_GT(r.best_channels, 1u);
  EXPECT_LT(r.best.waiting_time, r.sweep.front().waiting_time);
  for (const PlanPoint& p : r.sweep) EXPECT_GT(p.waiting_time, 0.0);
}

TEST(Planner, SplittingTradeoffIsVisible) {
  // With a single equally-popular item profile the probe term gains little
  // from splitting while downloads slow by K — K=1 should win.
  const Database db(std::vector<double>(12, 10.0), std::vector<double>(12, 1.0));
  const PlanResult r = plan_channel_count(db, 12.0, 6);
  // cost(K)/2b + downloads: splitting shortens cycles but b = B/K slows
  // everything; verify the planner reports the true analytic values.
  for (const PlanPoint& p : r.sweep) {
    EXPECT_GT(p.waiting_time, 0.0);
  }
  EXPECT_EQ(r.best.allocation.channels(), r.best_channels);
}

TEST(Planner, RejectsBadInput) {
  const Database db = generate_database({.items = 4, .seed = 5});
  EXPECT_THROW(plan_channel_count(db, 0.0, 4), ContractViolation);
  EXPECT_THROW(plan_channel_count(db, 10.0, 0), ContractViolation);
}

TEST(Planner, TiesBreakTowardFewestChannels) {
  // Two items, only one ever requested: the hot item (size 1) broadcasts
  // alone either way, so W(K=1) = W(K=2) = 3.0 exactly (no rounding — every
  // quantity is integral), and the planner must keep the smaller K.
  const Database db(std::vector<double>{1.0, 3.0}, std::vector<double>{1.0, 0.0});
  const PlanResult r = plan_channel_count(db, 1.0, 2);
  ASSERT_EQ(r.sweep.size(), 2u);
  EXPECT_EQ(r.sweep[0].waiting_time, r.sweep[1].waiting_time);
  EXPECT_EQ(r.best_channels, 1u);
}

TEST(Planner, HugeChannelCapJustClampsToTheCatalogue) {
  const Database db = generate_database({.items = 6, .seed = 6});
  const PlanResult r =
      plan_channel_count(db, 10.0, std::numeric_limits<ChannelId>::max());
  EXPECT_EQ(r.sweep.size(), 6u);
}

}  // namespace
}  // namespace dbs
