#include "api/portfolio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "api/scheduler.h"
#include "baselines/brute_force.h"
#include "baselines/ordered_dp.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/drp_cds.h"
#include "core/kk_partition.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

// A budget no racer exhausts on the instance sizes used here, so race
// results depend only on the seeds and the determinism contract applies in
// full (bit-identical across runs and thread counts).
constexpr double kGenerousDeadlineMs = 60'000.0;

// Scaled-down GA so the race-quality tests stay fast under sanitizers; the
// deadline tests use the default budget on purpose.
GoptOptions small_gopt() {
  GoptOptions gopt;
  gopt.population = 60;
  gopt.generations = 120;
  gopt.stall_generations = 40;
  return gopt;
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.uniform(0.0, 10.0);
  return weights;
}

TEST(KkPartition, SpreadNeverExceedsLargestWeight) {
  // The differencing bound: a merge never increases either operand's spread,
  // so the final spread is at most the largest single weight.
  const struct { std::size_t n; ChannelId k; } shapes[] = {
      {1, 1}, {2, 2}, {7, 3}, {50, 4}, {50, 8}, {333, 16}, {40, 1}, {3, 8}};
  for (const auto& shape : shapes) {
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
      const std::vector<double> weights = random_weights(shape.n, seed);
      const KkPartition p = kk_partition(weights, shape.k);
      ASSERT_EQ(p.groups.size(), weights.size());
      ASSERT_EQ(p.sums.size(), shape.k);

      std::vector<double> recomputed(shape.k, 0.0);
      for (std::size_t j = 0; j < weights.size(); ++j) {
        ASSERT_LT(p.groups[j], shape.k);
        recomputed[p.groups[j]] += weights[j];
      }
      const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
      for (ChannelId g = 0; g < shape.k; ++g) {
        EXPECT_NEAR(p.sums[g], recomputed[g], 1e-6 * (1.0 + total));
      }

      const auto [lo, hi] = std::minmax_element(p.sums.begin(), p.sums.end());
      const double max_weight = *std::max_element(weights.begin(), weights.end());
      EXPECT_LE(*hi - *lo, max_weight + 1e-9)
          << "n=" << shape.n << " k=" << shape.k << " seed=" << seed;
    }
  }
}

TEST(KkPartition, IsDeterministic) {
  const std::vector<double> weights = random_weights(120, 99);
  const KkPartition a = kk_partition(weights, 7);
  const KkPartition b = kk_partition(weights, 7);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.sums, b.sums);
}

TEST(KkPartition, HandlesDegenerateShapes) {
  // k=1: everything in one group, sum = total.
  const std::vector<double> weights{3.0, 1.0, 2.0};
  const KkPartition one = kk_partition(weights, 1);
  EXPECT_EQ(one.groups, (std::vector<ChannelId>{0, 0, 0}));
  EXPECT_NEAR(one.sums[0], 6.0, 1e-12);

  // All-zero weights: any labelling is perfect; sums must all be zero.
  const KkPartition zero = kk_partition(std::vector<double>(5, 0.0), 3);
  for (double s : zero.sums) EXPECT_EQ(s, 0.0);

  // Single weight into one group.
  const KkPartition single = kk_partition(std::vector<double>{4.5}, 1);
  EXPECT_EQ(single.groups.size(), 1u);
  EXPECT_NEAR(single.sums[0], 4.5, 1e-12);
}

TEST(KkPartition, RejectsBadInput) {
  const std::vector<double> weights{1.0, 2.0};
  EXPECT_THROW(kk_partition(weights, 0), ContractViolation);
  EXPECT_THROW(kk_partition(std::vector<double>{}, 2), ContractViolation);
  EXPECT_THROW(kk_partition(std::vector<double>{1.0, -0.5}, 1), ContractViolation);
  EXPECT_THROW(
      kk_partition(std::vector<double>{1.0,
                                       std::numeric_limits<double>::infinity()},
                   1),
      ContractViolation);
}

TEST(KkSeed, ProducesAValidAllocation) {
  const Database db = generate_database({.items = 80, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 7});
  const Allocation alloc = kk_seed_allocation(db, 6);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
  EXPECT_EQ(alloc.channels(), 6u);
  EXPECT_THROW(kk_seed_allocation(db, 0), ContractViolation);
  EXPECT_THROW(kk_seed_allocation(db, 81), ContractViolation);
}

TEST(LowerBound, NeverExceedsTheExactOptimum) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const Database db = generate_database({.items = 10, .skewness = 1.0,
                                           .diversity = 2.0, .seed = seed});
    for (ChannelId k : {1u, 2u, 3u, 4u}) {
      const auto exact = brute_force_optimal(db, k);
      ASSERT_TRUE(exact.has_value());
      EXPECT_LE(broadcast_cost_lower_bound(db, k), exact->cost + 1e-9)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(QualityAnchor, KkCdsAndPortfolioStayNearOrderedDp) {
  // The KSY anchor (ISSUE 9): the KK seed refined by CDS, and a fortiori the
  // portfolio winner, must land within a fixed factor of the ordered-DP
  // optimum — the best any contiguous-split strategy can do — and no result
  // may undercut the Cauchy–Schwarz lower bound.
  constexpr double kFactor = 1.25;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const Database db = generate_database({.items = 40, .skewness = 0.8,
                                           .diversity = 2.0, .seed = seed});
    for (ChannelId k : {3u, 5u}) {
      const double anchor = ordered_dp_optimal(db, k).cost();
      const double floor = broadcast_cost_lower_bound(db, k);
      ASSERT_LE(floor, anchor + 1e-9);

      const RepairResult kk = repair_assignment(
          db, k, kk_seed_allocation(db, k).assignment());
      EXPECT_GE(kk.final_cost, floor - 1e-9);
      EXPECT_LE(kk.final_cost, kFactor * anchor)
          << "kk+cds seed=" << seed << " k=" << k;

      PortfolioOptions options;
      options.gopt = small_gopt();
      const PortfolioResult raced = plan(db, k, kGenerousDeadlineMs, options);
      EXPECT_GE(raced.cost, floor - 1e-9);
      EXPECT_LE(raced.cost, kFactor * anchor)
          << "portfolio seed=" << seed << " k=" << k;
    }
  }
}

TEST(Portfolio, WinnerIsTheRacerCostArgmin) {
  const Database db = generate_database({.items = 60, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 41});
  PortfolioOptions options;
  options.gopt = small_gopt();
  const PortfolioResult result = plan(db, 5, kGenerousDeadlineMs, options);

  std::string error;
  EXPECT_TRUE(result.allocation.validate(&error)) << error;
  EXPECT_NEAR(result.cost, result.allocation.cost(), 1e-12);
  ASSERT_EQ(result.racers.size(), 3u);

  // Strict argmin with ties to the lowest racer index.
  std::size_t expected = 0;
  for (std::size_t i = 1; i < result.racers.size(); ++i) {
    if (result.racers[i].cost < result.racers[expected].cost) expected = i;
  }
  EXPECT_EQ(static_cast<std::size_t>(result.winner), expected);
  EXPECT_NEAR(result.cost, result.racers[expected].cost, 1e-12);
  for (const RacerOutcome& r : result.racers) {
    EXPECT_TRUE(r.completed);  // generous deadline: every racer finishes
    EXPECT_GE(r.cost, result.cost - 1e-12);
  }
}

TEST(Portfolio, NeverLosesToDrpCdsAlone) {
  // Table 5 midpoints (N=120, K=6, theta=0.8, phi=2): DRP-CDS is one of the
  // racers, so the winner can never be costlier than running it alone.
  const Database db = generate_database({.items = 120, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 1000});
  const double alone = run_drp_cds(db, 6).final_cost;
  PortfolioOptions options;
  options.gopt = small_gopt();
  const PortfolioResult raced = plan(db, 6, kGenerousDeadlineMs, options);
  EXPECT_LE(raced.cost, alone + 1e-9);
}

TEST(Portfolio, DeterministicAcrossThreadCountsAndRuns) {
  const Database db = generate_database({.items = 60, .skewness = 0.8,
                                         .diversity = 1.5, .seed = 51});
  PortfolioOptions options;
  options.gopt = small_gopt();
  options.threads = 1;  // sequential on the calling thread
  const PortfolioResult serial = plan(db, 4, kGenerousDeadlineMs, options);
  options.threads = 3;  // one worker per racer
  for (int run = 0; run < 2; ++run) {
    const PortfolioResult raced = plan(db, 4, kGenerousDeadlineMs, options);
    EXPECT_EQ(raced.winner, serial.winner);
    EXPECT_EQ(raced.cost, serial.cost);  // bit-identical, not just close
    EXPECT_EQ(raced.allocation.assignment(), serial.allocation.assignment());
  }
}

TEST(Portfolio, RespectsTheDeadline) {
  // An instance where the default-budget GA alone needs seconds: the race
  // must come back within the deadline plus one cancellation granule, and
  // the GA racer must report it was cut short. The elapsed bound is loose
  // (20x) because sanitizer builds stretch the granule itself.
  const Database db = generate_database({.items = 20'000, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 61});
  constexpr double kDeadlineMs = 200.0;
  const PortfolioResult raced = plan(db, 16, kDeadlineMs);

  std::string error;
  EXPECT_TRUE(raced.allocation.validate(&error)) << error;
  EXPECT_LT(raced.elapsed_ms, 20.0 * kDeadlineMs);
  ASSERT_EQ(raced.racers.size(), 3u);
  EXPECT_FALSE(
      raced.racers[static_cast<std::size_t>(PortfolioRacer::kGopt)].completed);
}

TEST(Portfolio, RejectsBadInput) {
  const Database db = generate_database({.items = 8, .seed = 71});
  EXPECT_THROW(plan(db, 0, 100.0), ContractViolation);
  EXPECT_THROW(plan(db, 9, 100.0), ContractViolation);
  EXPECT_THROW(plan(db, 2, 0.0), ContractViolation);
  EXPECT_THROW(plan(db, 2, -5.0), ContractViolation);
}

TEST(Portfolio, RacerNamesAreStable) {
  EXPECT_EQ(portfolio_racer_name(PortfolioRacer::kDrpCds), "drp-cds");
  EXPECT_EQ(portfolio_racer_name(PortfolioRacer::kKkCds), "kk-cds");
  EXPECT_EQ(portfolio_racer_name(PortfolioRacer::kGopt), "gopt");
}

TEST(Portfolio, RunsThroughTheSchedulerFacade) {
  const Database db = generate_database({.items = 30, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 81});
  ScheduleRequest request;
  request.algorithm = Algorithm::kPortfolio;
  request.channels = 4;
  request.portfolio.gopt = small_gopt();
  request.portfolio_deadline_ms = kGenerousDeadlineMs;
  const ScheduleResult result = schedule(db, request);
  std::string error;
  EXPECT_TRUE(result.allocation.validate(&error)) << error;
  EXPECT_NEAR(result.cost, result.allocation.cost(), 1e-12);
  // The scheduler-level result matches a direct plan() call bit-for-bit.
  PortfolioOptions options;
  options.gopt = small_gopt();
  const PortfolioResult direct = plan(db, 4, kGenerousDeadlineMs, options);
  EXPECT_EQ(result.cost, direct.cost);
}

}  // namespace
}  // namespace dbs
