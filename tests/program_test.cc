#include "sim/program.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

Allocation two_channel_alloc(const Database& db) {
  std::vector<ChannelId> assignment(db.size());
  for (ItemId id = 0; id < db.size(); ++id) assignment[id] = id % 2;
  return Allocation(db, 2, std::move(assignment));
}

TEST(Program, SlotsCoverChannelItemsExactly) {
  const Database db = generate_database({.items = 21, .diversity = 1.0, .seed = 1});
  const Allocation alloc = two_channel_alloc(db);
  const BroadcastProgram program(alloc, 10.0);
  for (ChannelId c = 0; c < 2; ++c) {
    const ChannelSchedule& sched = program.schedule(c);
    EXPECT_EQ(sched.slots.size(), alloc.count_of(c));
    double offset = 0.0;
    for (const Slot& slot : sched.slots) {
      EXPECT_DOUBLE_EQ(slot.start, offset);
      EXPECT_DOUBLE_EQ(slot.duration, db.item(slot.item).size / 10.0);
      EXPECT_EQ(program.channel_of(slot.item), c);
      offset += slot.duration;
    }
    EXPECT_NEAR(sched.cycle_time, alloc.size_of(c) / 10.0, 1e-12);
  }
}

TEST(Program, DeliveryTimeForClientAtZero) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 10.0);
  // Slot 0: item 0, [0, 1); slot 1: item 1, [1, 3). Cycle = 3.
  EXPECT_DOUBLE_EQ(program.delivery_time(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(program.delivery_time(1, 0.0), 3.0);
}

TEST(Program, MidTransmissionClientWaitsFullCycle) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 10.0);
  // Item 0 transmits over [0,1). A client at t=0.5 missed the start and must
  // wait for the occurrence at t=3: delivery at 4.
  EXPECT_DOUBLE_EQ(program.delivery_time(0, 0.5), 4.0);
  // A client at exactly t=3 boards immediately.
  EXPECT_DOUBLE_EQ(program.delivery_time(0, 3.0), 4.0);
  // Just after the start at t=3.0 -> next cycle at 6.
  EXPECT_DOUBLE_EQ(program.delivery_time(0, 3.0001), 7.0);
}

TEST(Program, WaitingTimeIsDeliveryMinusArrival) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 10.0);
  EXPECT_DOUBLE_EQ(program.waiting_time(1, 0.5), 2.5);
}

TEST(Program, MeanWaitOverCycleMatchesEq1) {
  // Sample tune-in times uniformly over one cycle: the empirical mean wait
  // for item j must approach Z/(2b) + z_j/b.
  const Database db({4.0, 6.0, 10.0}, {0.3, 0.4, 0.3});
  const Allocation alloc(db, 1);
  const double b = 2.0;
  const BroadcastProgram program(alloc, b);
  const double cycle = program.schedule(0).cycle_time;
  for (ItemId id = 0; id < 3; ++id) {
    const int samples = 20000;
    double sum = 0.0;
    for (int i = 0; i < samples; ++i) {
      const double t = cycle * (static_cast<double>(i) + 0.5) / samples;
      sum += program.waiting_time(id, t);
    }
    const double expected = alloc.size_of(0) / (2.0 * b) + db.item(id).size / b;
    EXPECT_NEAR(sum / samples, expected, 0.01) << "item " << id;
  }
}

TEST(Program, SlotOrderingVariantsKeepCycleTime) {
  const Database db = generate_database({.items = 30, .diversity = 2.0, .seed = 2});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const BroadcastProgram by_id(alloc, 10.0, SlotOrdering::kById);
  const BroadcastProgram by_freq(alloc, 10.0, SlotOrdering::kByFreqDesc);
  const BroadcastProgram by_br(alloc, 10.0, SlotOrdering::kByBenefitRatioDesc);
  for (ChannelId c = 0; c < 4; ++c) {
    EXPECT_NEAR(by_id.schedule(c).cycle_time, by_freq.schedule(c).cycle_time, 1e-12);
    EXPECT_NEAR(by_id.schedule(c).cycle_time, by_br.schedule(c).cycle_time, 1e-12);
  }
}

TEST(Program, FreqOrderingPutsPopularFirst) {
  const Database db = generate_database({.items = 16, .seed = 3, .shuffle_ranks = false});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 10.0, SlotOrdering::kByFreqDesc);
  const auto& slots = program.schedule(0).slots;
  for (std::size_t i = 1; i < slots.size(); ++i) {
    EXPECT_GE(db.item(slots[i - 1].item).freq, db.item(slots[i].item).freq);
  }
}

TEST(Program, RejectsBadBandwidthAndQueries) {
  const Database db({1.0}, {1.0});
  const Allocation alloc(db, 1);
  EXPECT_THROW(BroadcastProgram(alloc, 0.0), ContractViolation);
  const BroadcastProgram program(alloc, 1.0);
  EXPECT_THROW(program.delivery_time(5, 0.0), ContractViolation);
  EXPECT_THROW(program.delivery_time(0, -1.0), ContractViolation);
  EXPECT_THROW(program.schedule(1), ContractViolation);
}

}  // namespace
}  // namespace dbs
