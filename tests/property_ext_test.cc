// Parameterized property sweeps for the extension modules, mirroring
// property_test.cc's grid discipline: every invariant must hold on every
// (N, K, θ, Φ, seed) cell.
#include <gtest/gtest.h>

#include <sstream>

#include "air/index.h"
#include "air/indexed_program.h"
#include "baselines/flat.h"
#include "core/drp_cds.h"
#include "core/swap.h"
#include "hetero/hetero.h"
#include "model/cost.h"
#include "ondemand/server.h"
#include "replication/multi_program.h"
#include "replication/replicate.h"
#include "workload/generator.h"

namespace dbs {
namespace {

struct ExtParam {
  std::size_t items;
  ChannelId channels;
  double skewness;
  double diversity;
  std::uint64_t seed;
};

class ExtGrid : public ::testing::TestWithParam<ExtParam> {
 protected:
  Database db_ = generate_database({.items = GetParam().items,
                                    .skewness = GetParam().skewness,
                                    .diversity = GetParam().diversity,
                                    .seed = GetParam().seed});
  ChannelId k_ = GetParam().channels;
  Allocation alloc_ = run_drp_cds(db_, k_).allocation;
  static constexpr double kBandwidth = 10.0;
};

TEST_P(ExtGrid, ReplicationNeverIncreasesAnalyticWait) {
  const ReplicationResult r = replicate_greedy(alloc_, kBandwidth,
                                               {.max_copies_per_item = 2,
                                                .max_total_copies = 40});
  EXPECT_LE(r.replicated_wait, r.base_wait + 1e-9);
  // Base wait of the unreplicated placement equals Eq. (2).
  EXPECT_NEAR(r.base_wait, program_waiting_time(alloc_, kBandwidth), 1e-9);
  // The produced placement is loadable and consistent.
  const MultiProgram multi(db_, r.placement, kBandwidth);
  EXPECT_NEAR(multi.expected_wait(), r.replicated_wait, 1e-9);
}

TEST_P(ExtGrid, MultiProgramDeliveryNeverBeforeRequest) {
  const MultiProgram multi(
      db_, placement_from_assignment(alloc_.assignment(), k_), kBandwidth);
  const auto trace = generate_trace(db_, {.requests = 300, .seed = GetParam().seed});
  for (const Request& r : trace) {
    const double done = multi.delivery_time(r.item, r.time);
    EXPECT_GT(done, r.time);
    // Never earlier than the download itself.
    EXPECT_GE(done - r.time, db_.item(r.item).size / kBandwidth - 1e-9);
  }
}

TEST_P(ExtGrid, OnDemandServesEverythingAndRespectsWorkConservation) {
  const auto trace = generate_trace(db_, {.requests = 1200, .arrival_rate = 8.0,
                                          .seed = GetParam().seed + 1});
  for (OnDemandPolicy policy :
       {OnDemandPolicy::kFcfs, OnDemandPolicy::kRxW, OnDemandPolicy::kLtsf}) {
    const OnDemandReport r = run_ondemand(
        db_, trace, {.policy = policy, .channels = k_, .bandwidth = kBandwidth});
    EXPECT_EQ(r.requests_served, trace.size());
    // Every wait includes at least the item's own service time.
    EXPECT_GT(r.waiting.min, 0.0);
    // Stretch = wait/service ≥ 1 by construction.
    EXPECT_GE(r.stretch.min, 1.0 - 1e-9);
    EXPECT_LE(r.broadcasts, trace.size());
  }
}

TEST_P(ExtGrid, HeteroSchedulerMatchesHomogeneousAtEqualBandwidths) {
  const std::vector<double> equal(k_, kBandwidth);
  const HeteroResult r = schedule_hetero(db_, equal);
  // A homogeneous-optimal local optimum: no generalized move improves.
  EXPECT_NEAR(r.wait, hetero_wait(r.allocation, equal), 1e-9);
  EXPECT_LE(r.wait, program_waiting_time(alloc_, kBandwidth) * 1.02 + 1e-9)
      << "hetero path must not regress the homogeneous case materially";
}

TEST_P(ExtGrid, IndexedProgramInvariants) {
  const IndexConfig cfg{.index_size = 1.0, .header_size = 0.05, .replication = 2};
  const IndexedProgram program(alloc_, kBandwidth, cfg);
  const auto trace = generate_trace(db_, {.requests = 400, .seed = GetParam().seed + 2});
  for (const Request& r : trace) {
    const auto outcome = program.replay_request(r.item, r.time);
    // Access covers at least header + index + download.
    const double floor = (cfg.header_size + cfg.index_size + db_.item(r.item).size) /
                         kBandwidth;
    EXPECT_GE(outcome.access, floor - 1e-9);
    EXPECT_GE(outcome.access, outcome.tuning - 1e-9);
  }
}

TEST_P(ExtGrid, DeepSearchDominatesFlatAndStaysValid) {
  Allocation deep = flat_round_robin(db_, k_);
  run_cds_with_swaps(deep);
  EXPECT_LE(deep.cost(), flat_round_robin(db_, k_).cost() + 1e-9);
  std::string error;
  EXPECT_TRUE(deep.validate(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    ExtensionGrid, ExtGrid,
    ::testing::Values(ExtParam{60, 4, 0.8, 2.0, 61}, ExtParam{120, 6, 0.8, 2.0, 62},
                      ExtParam{120, 6, 1.6, 1.0, 63}, ExtParam{120, 10, 0.4, 3.0, 64},
                      ExtParam{180, 8, 1.2, 0.0, 65}, ExtParam{40, 4, 0.8, 2.5, 66}),
    [](const ::testing::TestParamInfo<ExtParam>& info) {
      std::ostringstream os;
      os << "N" << info.param.items << "_K" << info.param.channels << "_seed"
         << info.param.seed;
      return os.str();
    });

}  // namespace
}  // namespace dbs
