// Parameterized property sweeps over the paper's whole parameter grid
// (Table 5): every invariant must hold for every (N, K, θ, Φ, seed) cell.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/flat.h"
#include "baselines/greedy.h"
#include "baselines/ordered_dp.h"
#include "baselines/vfk.h"
#include "core/cds.h"
#include "core/drp.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

struct GridParam {
  std::size_t items;
  ChannelId channels;
  double skewness;
  double diversity;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const GridParam& p) {
  return os << "N" << p.items << "_K" << p.channels << "_theta" << p.skewness
            << "_phi" << p.diversity << "_seed" << p.seed;
}

class GridProperty : public ::testing::TestWithParam<GridParam> {
 protected:
  Database db_ = generate_database({.items = GetParam().items,
                                    .skewness = GetParam().skewness,
                                    .diversity = GetParam().diversity,
                                    .seed = GetParam().seed});
  ChannelId k_ = GetParam().channels;
};

TEST_P(GridProperty, DrpIsAValidPartitionWithNoEmptyChannel) {
  const DrpResult r = run_drp(db_, k_);
  std::string error;
  ASSERT_TRUE(r.allocation.validate(&error)) << error;
  for (ChannelId c = 0; c < k_; ++c) EXPECT_GT(r.allocation.count_of(c), 0u);
}

TEST_P(GridProperty, CdsNeverIncreasesCostAndReachesLocalOptimum) {
  Allocation alloc = run_drp(db_, k_).allocation;
  const double before = alloc.cost();
  const CdsStats stats = run_cds(alloc);
  EXPECT_LE(alloc.cost(), before + 1e-12);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(best_move(alloc).gain, 1e-12);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
}

TEST_P(GridProperty, Eq4PredictsExactCostDeltaForSampledMoves) {
  Allocation alloc = run_drp(db_, k_).allocation;
  Rng rng(GetParam().seed * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const ItemId id = static_cast<ItemId>(rng.below(db_.size()));
    const ChannelId to = static_cast<ChannelId>(rng.below(k_));
    const double predicted = alloc.move_gain(id, to);
    const double before = alloc.cost_recomputed();
    alloc.move(id, to);
    const double after = alloc.cost_recomputed();
    EXPECT_NEAR(before - after, predicted, 1e-9);
  }
}

TEST_P(GridProperty, QualityChainHolds) {
  // drp-cds ≤ drp ≤ cost of one channel; ordered-dp ≤ drp; flat is beaten by
  // drp-cds on skewed data (θ ≥ 0.4 always holds in the grid).
  const double drp = run_drp(db_, k_).allocation.cost();
  const DrpCdsResult full = run_drp_cds(db_, k_);
  const double dp = ordered_dp_optimal(db_, k_).cost();
  EXPECT_LE(full.final_cost, drp + 1e-9);
  EXPECT_LE(dp, drp + 1e-9);
  EXPECT_LE(full.final_cost, flat_round_robin(db_, k_).cost() + 1e-9);
  EXPECT_LE(drp, db_.total_size() + 1e-9);  // K=1 upper bound (F=1, Z=total)
}

TEST_P(GridProperty, WaitingTimeDecomposition) {
  const Allocation alloc = run_drp_cds(db_, k_).allocation;
  const double b = 10.0;
  EXPECT_NEAR(program_waiting_time(alloc, b),
              alloc.cost() / (2.0 * b) + db_.weighted_size() / b, 1e-9);
  double weighted_channels = 0.0;
  for (ChannelId c = 0; c < k_; ++c) {
    weighted_channels += alloc.freq_of(c) * channel_waiting_time(alloc, c, b);
  }
  EXPECT_NEAR(program_waiting_time(alloc, b), weighted_channels, 1e-9);
}

TEST_P(GridProperty, AggregatesSumToDatabaseTotals) {
  for (const Allocation& alloc :
       {run_drp(db_, k_).allocation, run_vfk(db_, k_), greedy_insertion(db_, k_)}) {
    double f = 0.0, z = 0.0;
    std::size_t n = 0;
    for (ChannelId c = 0; c < k_; ++c) {
      f += alloc.freq_of(c);
      z += alloc.size_of(c);
      n += alloc.count_of(c);
    }
    EXPECT_NEAR(f, 1.0, 1e-9);
    EXPECT_NEAR(z, db_.total_size(), 1e-6);
    EXPECT_EQ(n, db_.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table5Grid, GridProperty,
    ::testing::Values(
        // N sweep at the defaults (K=6, θ=0.8, Φ=2).
        GridParam{60, 6, 0.8, 2.0, 11}, GridParam{100, 6, 0.8, 2.0, 12},
        GridParam{140, 6, 0.8, 2.0, 13}, GridParam{180, 6, 0.8, 2.0, 14},
        // K sweep.
        GridParam{120, 4, 0.8, 2.0, 21}, GridParam{120, 7, 0.8, 2.0, 22},
        GridParam{120, 10, 0.8, 2.0, 23},
        // θ sweep.
        GridParam{120, 6, 0.4, 2.0, 31}, GridParam{120, 6, 1.2, 2.0, 32},
        GridParam{120, 6, 1.6, 2.0, 33},
        // Φ sweep including the conventional environment Φ=0.
        GridParam{120, 6, 0.8, 0.0, 41}, GridParam{120, 6, 0.8, 1.0, 42},
        GridParam{120, 6, 0.8, 3.0, 43},
        // Corner cases.
        GridParam{60, 10, 1.6, 3.0, 51}, GridParam{180, 4, 0.4, 0.0, 52},
        GridParam{10, 10, 0.8, 2.0, 53}, GridParam{12, 1, 0.8, 2.0, 54}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::ostringstream os;
      os << info.param;
      std::string name = os.str();
      for (char& c : name) {
        if (c == '.') c = 'p';
      }
      return name;
    });

}  // namespace
}  // namespace dbs
