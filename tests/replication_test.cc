#include <gtest/gtest.h>

#include "baselines/flat.h"
#include "common/check.h"
#include "core/drp_cds.h"
#include "model/cost.h"
#include "replication/min_wait.h"
#include "replication/multi_program.h"
#include "replication/replicate.h"
#include "sim/program.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(MinWait, SingleChannelIsHalfCycle) {
  EXPECT_NEAR(expected_min_uniform({6.0}), 3.0, 1e-12);
  EXPECT_NEAR(expected_min_uniform({0.5}), 0.25, 1e-12);
}

TEST(MinWait, TwoEqualCyclesIsThird) {
  // E[min(U1,U2)] with both U[0,C): C/3.
  EXPECT_NEAR(expected_min_uniform({6.0, 6.0}), 2.0, 1e-12);
}

TEST(MinWait, ManyEqualCyclesIsCOverNPlus1) {
  // E[min of n iid U[0,C)] = C/(n+1).
  for (int n = 1; n <= 6; ++n) {
    std::vector<double> cycles(n, 10.0);
    EXPECT_NEAR(expected_min_uniform(cycles), 10.0 / (n + 1), 1e-10) << n;
  }
}

TEST(MinWait, MixedCyclesClosedForm) {
  // C1=2, C2=4: ∫0^2 (1-t/2)(1-t/4) dt = ∫ 1 - 3t/4 + t²/8 = 2 - 1.5 + 1/3.
  EXPECT_NEAR(expected_min_uniform({2.0, 4.0}), 2.0 - 1.5 + 1.0 / 3.0, 1e-12);
}

TEST(MinWait, MatchesMonteCarlo) {
  const std::vector<double> cycles = {3.0, 7.5, 11.0};
  Rng rng(5);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double m = 1e18;
    for (double c : cycles) m = std::min(m, rng.uniform(0.0, c));
    sum += m;
  }
  EXPECT_NEAR(expected_min_uniform(cycles), sum / n, 0.01);
}

TEST(MinWait, MoreCopiesNeverSlower) {
  double prev = expected_min_uniform({9.0});
  std::vector<double> cycles = {9.0};
  for (double extra : {12.0, 5.0, 30.0}) {
    cycles.push_back(extra);
    const double now = expected_min_uniform(cycles);
    EXPECT_LE(now, prev + 1e-12);
    prev = now;
  }
}

TEST(MinWait, RejectsBadInput) {
  EXPECT_THROW(expected_min_uniform({}), ContractViolation);
  EXPECT_THROW(expected_min_uniform({1.0, 0.0}), ContractViolation);
}

TEST(MultiProgram, UnreplicatedMatchesEq2AndBroadcastProgram) {
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 1});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const MultiProgram multi(
      db, placement_from_assignment(alloc.assignment(), 4), 10.0);
  EXPECT_NEAR(multi.expected_wait(), program_waiting_time(alloc, 10.0), 1e-9);

  // Per-request delivery agrees with the partition-based program.
  const BroadcastProgram single(alloc, 10.0);
  const auto trace = generate_trace(db, {.requests = 500, .seed = 2});
  for (const Request& r : trace) {
    EXPECT_NEAR(multi.delivery_time(r.item, r.time),
                single.delivery_time(r.item, r.time), 1e-9);
  }
}

TEST(MultiProgram, ReplicatedDeliveryIsMinOverCopies) {
  // Item 0 on both channels with different phases.
  const Database db({10.0, 20.0, 30.0}, {0.4, 0.3, 0.3});
  Placement placement = {{0, 1}, {0, 2}};
  const MultiProgram multi(db, placement, 10.0);
  // Channel 0 cycle: item0 [0,1), item1 [1,3) -> cycle 3.
  // Channel 1 cycle: item0 [0,1), item2 [1,4) -> cycle 4.
  // Client at t=0.5 wanting item 0: ch0 next start 3 -> done 4; ch1 next
  // start 4 -> done 5. Min = 4.
  EXPECT_NEAR(multi.delivery_time(0, 0.5), 4.0, 1e-12);
  // Client at t=3.2: ch0 start 6 -> 7; ch1 start 4 -> 5. Min = 5.
  EXPECT_NEAR(multi.delivery_time(0, 3.2), 5.0, 1e-12);
  EXPECT_EQ(multi.copies(0).size(), 2u);
}

TEST(MultiProgram, RejectsBadPlacements) {
  const Database db({1.0, 2.0}, {0.5, 0.5});
  EXPECT_THROW(MultiProgram(db, {{0, 0}, {1}}, 10.0), ContractViolation);  // dup
  EXPECT_THROW(MultiProgram(db, {{0}}, 10.0), ContractViolation);  // item 1 missing
  EXPECT_THROW(MultiProgram(db, {{0, 1}}, 0.0), ContractViolation);
  EXPECT_THROW(MultiProgram(db, {{0, 5}}, 10.0), ContractViolation);
}

TEST(Replication, NeverWorseThanBaseAnalytically) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Database db = generate_database({.items = 50, .skewness = 1.2,
                                           .diversity = 2.0, .seed = seed});
    const Allocation alloc = run_drp_cds(db, 5).allocation;
    const ReplicationResult r = replicate_greedy(alloc, 10.0);
    EXPECT_LE(r.replicated_wait, r.base_wait + 1e-9) << "seed " << seed;
    if (r.copies_added > 0) {
      EXPECT_LT(r.replicated_wait, r.base_wait) << "seed " << seed;
    }
  }
}

TEST(Replication, SubstantiallyImprovesFlatPrograms) {
  // Replication's classic role: compensating for a frequency-agnostic
  // program. From a size-balanced flat start it finds many profitable copies
  // and cuts the analytic wait by double-digit percentages.
  const Database db = generate_database({.items = 60, .skewness = 1.6,
                                         .diversity = 1.5, .seed = 6});
  const Allocation flat = flat_size_balanced(db, 6);
  const ReplicationResult r = replicate_greedy(
      flat, 10.0, {.max_copies_per_item = 3, .max_total_copies = 200});
  EXPECT_GT(r.copies_added, 3u);
  EXPECT_LT(r.replicated_wait, 0.9 * r.base_wait);
}

TEST(Replication, GainShrinksWhenStartIsAlreadyOptimized) {
  // A DRP-CDS allocation leaves little for replication to reclaim — the
  // finding the replication ablation bench quantifies.
  const Database db = generate_database({.items = 60, .skewness = 1.6,
                                         .diversity = 1.5, .seed = 6});
  const ReplicationOptions options{.max_copies_per_item = 3, .max_total_copies = 200};
  const ReplicationResult from_flat =
      replicate_greedy(flat_size_balanced(db, 6), 10.0, options);
  const ReplicationResult from_opt =
      replicate_greedy(run_drp_cds(db, 6).allocation, 10.0, options);
  const double flat_gain = from_flat.base_wait - from_flat.replicated_wait;
  const double opt_gain = from_opt.base_wait - from_opt.replicated_wait;
  EXPECT_LT(opt_gain, flat_gain);
  // And the optimized start still ends ahead overall.
  EXPECT_LT(from_opt.replicated_wait, from_flat.replicated_wait);
}

TEST(Replication, RespectsCopyBudgets) {
  const Database db = generate_database({.items = 40, .skewness = 1.6, .seed = 7});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  ReplicationOptions options;
  options.max_total_copies = 3;
  const ReplicationResult r = replicate_greedy(alloc, 10.0, options);
  EXPECT_LE(r.copies_added, 3u);
  // max_copies_per_item: every item appears at most twice by default.
  const MultiProgram multi(db, r.placement, 10.0);
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_LE(multi.copies(id).size(), 2u);
  }
}

TEST(Replication, AnalyticModelTracksTraceReplay) {
  // The independent-phase approximation should match replayed traces within
  // a few percent on irregular cycle lengths.
  const Database db = generate_database({.items = 50, .skewness = 1.4,
                                         .diversity = 2.0, .seed = 8});
  const Allocation alloc = run_drp_cds(db, 5).allocation;
  const ReplicationResult r = replicate_greedy(alloc, 10.0, {.max_copies_per_item = 3});
  const MultiProgram multi(db, r.placement, 10.0);
  const auto trace = generate_trace(db, {.requests = 60000, .arrival_rate = 20.0,
                                         .seed = 9});
  const Summary replay = multi.replay(trace);
  EXPECT_NEAR(replay.mean, r.replicated_wait, 0.06 * r.replicated_wait);
}

TEST(Replication, PlacementFromAssignmentRoundTrip) {
  const Database db = generate_database({.items = 20, .seed = 10});
  const Allocation alloc = run_drp_cds(db, 3).allocation;
  const Placement p = placement_from_assignment(alloc.assignment(), 3);
  std::size_t total = 0;
  for (ChannelId c = 0; c < 3; ++c) {
    for (ItemId id : p[c]) EXPECT_EQ(alloc.channel_of(id), c);
    total += p[c].size();
  }
  EXPECT_EQ(total, db.size());
}

}  // namespace
}  // namespace dbs
