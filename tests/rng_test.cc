#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dbs {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2)) << "step " << i;
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  // xoshiro with all-zero state would be degenerate; splitmix seeding must
  // prevent that even for seed 0.
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 60u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 4.5);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 4.5);
  }
}

TEST(Rng, UniformDegenerateInterval) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800) << "bucket severely underrepresented";
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  // The child stream should not be a shifted copy of the parent's.
  int matches = 0;
  for (int i = 0; i < 64; ++i) matches += (parent() == child());
  EXPECT_LT(matches, 3);
}

TEST(Rng, DiscardAdvancesState) {
  Rng a(10);
  Rng b(10);
  a.discard(5);
  for (int i = 0; i < 5; ++i) (void)b();
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace dbs
