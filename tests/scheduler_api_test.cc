#include "api/scheduler.h"

#include <gtest/gtest.h>

#include <iterator>

#include "common/check.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Registry, AllAlgorithmsHaveUniqueNames) {
  const auto& algos = all_algorithms();
  ASSERT_FALSE(algos.empty());
  for (std::size_t i = 0; i < algos.size(); ++i) {
    for (std::size_t j = i + 1; j < algos.size(); ++j) {
      EXPECT_NE(algos[i].name, algos[j].name);
      EXPECT_NE(algos[i].id, algos[j].id);
    }
  }
}

TEST(Registry, NameRoundTrip) {
  for (const AlgorithmInfo& info : all_algorithms()) {
    const auto parsed = algorithm_from_name(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.id);
    EXPECT_EQ(algorithm_name(info.id), info.name);
  }
}

TEST(Registry, UnknownNameIsNullopt) {
  EXPECT_FALSE(algorithm_from_name("definitely-not-an-algorithm").has_value());
  EXPECT_FALSE(algorithm_from_name("").has_value());
}

TEST(Registry, EveryEnumeratorIsRegistered) {
  // The full enumerator list, spelled out: adding an Algorithm without a
  // registry row used to make algorithm_name() silently answer "unknown";
  // now it must round-trip — and the registry may not hold strays either.
  const Algorithm all[] = {
      Algorithm::kFlat,      Algorithm::kFlatBalanced, Algorithm::kGreedy,
      Algorithm::kVfk,       Algorithm::kDrp,          Algorithm::kDrpCds,
      Algorithm::kOrderedDp, Algorithm::kGopt,         Algorithm::kAnneal,
      Algorithm::kBruteForce, Algorithm::kPortfolio,
  };
  EXPECT_EQ(all_algorithms().size(), std::size(all));
  for (Algorithm a : all) {
    const std::string_view name = algorithm_name(a);
    const auto parsed = algorithm_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, a);
  }
}

TEST(Registry, UnregisteredEnumeratorFailsLoudly) {
  EXPECT_THROW(algorithm_name(static_cast<Algorithm>(999)), ContractViolation);
}

TEST(Schedule, RunsEveryAlgorithmOnAModestInstance) {
  const Database db = generate_database({.items = 14, .skewness = 0.9,
                                         .diversity = 1.5, .seed = 1});
  for (const AlgorithmInfo& info : all_algorithms()) {
    ScheduleRequest request;
    request.algorithm = info.id;
    request.channels = 3;
    request.gopt.population = 40;
    request.gopt.generations = 80;
    request.portfolio.gopt = request.gopt;  // keep the kPortfolio row fast too
    const ScheduleResult result = schedule(db, request);
    std::string error;
    EXPECT_TRUE(result.allocation.validate(&error)) << info.name << ": " << error;
    EXPECT_NEAR(result.cost, result.allocation.cost(), 1e-12) << info.name;
    EXPECT_GE(result.elapsed_ms, 0.0);
  }
}

TEST(Schedule, WaitingTimeMatchesCostModel) {
  const Database db = generate_database({.items = 30, .seed = 2});
  ScheduleRequest request;
  request.algorithm = Algorithm::kDrpCds;
  request.channels = 4;
  request.bandwidth = 25.0;
  const ScheduleResult result = schedule(db, request);
  EXPECT_NEAR(result.waiting_time, program_waiting_time(result.allocation, 25.0),
              1e-12);
}

TEST(Schedule, QualityOrderingHolds) {
  // drp-cds <= drp; ordered-dp <= drp; everything >= brute-force.
  const Database db = generate_database({.items = 14, .skewness = 1.0,
                                         .diversity = 2.0, .seed = 3});
  auto cost_of = [&](Algorithm a) {
    ScheduleRequest r;
    r.algorithm = a;
    r.channels = 4;
    r.gopt.population = 60;
    r.gopt.generations = 150;
    return schedule(db, r).cost;
  };
  const double exact = cost_of(Algorithm::kBruteForce);
  const double drp = cost_of(Algorithm::kDrp);
  const double drpcds = cost_of(Algorithm::kDrpCds);
  const double dp = cost_of(Algorithm::kOrderedDp);
  EXPECT_LE(drpcds, drp + 1e-9);
  EXPECT_LE(dp, drp + 1e-9);
  for (double c : {drp, drpcds, dp, cost_of(Algorithm::kVfk),
                   cost_of(Algorithm::kFlat), cost_of(Algorithm::kGreedy)}) {
    EXPECT_GE(c, exact - 1e-9);
  }
}

TEST(Schedule, PropagatesContractViolations) {
  const Database db = generate_database({.items = 4, .seed = 4});
  ScheduleRequest request;
  request.channels = 10;  // more channels than items
  EXPECT_THROW(schedule(db, request), ContractViolation);
}

TEST(Schedule, DrpOptionsArePassedThrough) {
  const Database db = generate_database({.items = 40, .diversity = 2.0, .seed = 5});
  ScheduleRequest request;
  request.algorithm = Algorithm::kDrp;
  request.channels = 5;
  const double br_cost = schedule(db, request).cost;
  request.drp_cds.drp.ordering = ItemOrdering::kSizeAsc;
  const double size_cost = schedule(db, request).cost;
  // Different orderings must actually change the result on diverse data.
  EXPECT_NE(br_cost, size_cost);
}

}  // namespace
}  // namespace dbs
