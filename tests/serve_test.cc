#include "serve/server_loop.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/distributions.h"
#include "model/cost.h"
#include "obs/obs.h"  // for the DBS_OBS_ENABLED default
#include "workload/drift.h"
#include "workload/generator.h"

namespace dbs {
namespace {

std::vector<double> sample_sizes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sizes(n);
  for (double& z : sizes) z = sample_item_size(rng, 2.0);
  return sizes;
}

/// Draws a request window from a fixed popularity vector.
std::vector<Request> window_from(const std::vector<double>& freqs, std::size_t count,
                                 Rng& rng) {
  const AliasSampler sampler(freqs);
  std::vector<Request> window;
  window.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    window.push_back({static_cast<double>(i), static_cast<ItemId>(sampler.sample(rng))});
  }
  return window;
}

TEST(Drift, PreservesSizesAndNormalization) {
  const Database db = generate_database({.items = 30, .diversity = 2.0, .seed = 1});
  Rng rng(2);
  const Database drifted = drift_frequencies(db, rng);
  ASSERT_EQ(drifted.size(), db.size());
  double sum = 0.0;
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_DOUBLE_EQ(drifted.item(id).size, db.item(id).size);
    sum += drifted.item(id).freq;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Drift, ActuallyChangesFrequencies) {
  const Database db = generate_database({.items = 30, .seed = 3});
  Rng rng(4);
  const Database drifted = drift_frequencies(db, rng, {.transfers = 10, .intensity = 0.8});
  bool changed = false;
  for (ItemId id = 0; id < db.size(); ++id) {
    changed |= std::abs(drifted.item(id).freq - db.item(id).freq) > 1e-9;
  }
  EXPECT_TRUE(changed);
}

TEST(Drift, ZeroIntensityIsIdentity) {
  const Database db = generate_database({.items = 10, .seed = 5});
  Rng rng(6);
  const Database same = drift_frequencies(db, rng, {.transfers = 5, .intensity = 0.0});
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_NEAR(same.item(id).freq, db.item(id).freq, 1e-12);
  }
}

TEST(ServerLoop, StartsWithValidProgram) {
  const BroadcastServerLoop server(sample_sizes(40, 1), {.channels = 4});
  std::string error;
  EXPECT_TRUE(server.allocation().validate(&error)) << error;
  EXPECT_EQ(server.epochs(), 0u);
  EXPECT_EQ(server.database().size(), 40u);
}

TEST(ServerLoop, LearnsSkewAndCutsWaitingTime) {
  // Uniform prior; actual traffic is strongly skewed. After a few windows
  // the program must beat the initial uniform-estimate program.
  BroadcastServerLoop server(sample_sizes(60, 2), {.channels = 6});
  const double initial_wait = program_waiting_time(server.allocation(), 10.0);

  const auto true_freqs = zipf_probabilities(60, 1.4);
  Rng rng(7);
  EpochReport last;
  for (int epoch = 0; epoch < 8; ++epoch) {
    last = server.observe_window(window_from(true_freqs, 4000, rng));
  }
  EXPECT_EQ(server.epochs(), 8u);
  EXPECT_LT(last.waiting_time, initial_wait);
  // The live allocation matches the reported cost.
  EXPECT_NEAR(server.allocation().cost(),
              last.adopted_rebuild ? last.rebuilt_cost : last.repaired_cost, 1e-9);
}

TEST(ServerLoop, RepairUsuallySufficesUnderMildDrift) {
  BroadcastServerLoop server(sample_sizes(50, 3), {.channels = 5,
                                                   .rebuild_threshold = 0.01});
  auto freqs = zipf_probabilities(50, 1.0);
  Rng rng(8);
  std::size_t escalations = 0;
  // Warm up on stable traffic, then drift mildly.
  for (int epoch = 0; epoch < 4; ++epoch) {
    server.observe_window(window_from(freqs, 3000, rng));
  }
  for (int epoch = 0; epoch < 8; ++epoch) {
    // mild drift: rotate 2% of mass
    const double moved = 0.02 * freqs[0];
    freqs[0] -= moved;
    freqs[(epoch * 7 + 3) % 50] += moved;
    const EpochReport r = server.observe_window(window_from(freqs, 3000, rng));
    escalations += r.escalated ? 1 : 0;
    if (!r.escalated) {
      // Steady-state epochs never pay for a rebuild at all.
      EXPECT_EQ(r.escalation_reason, EscalationReason::kNone);
      EXPECT_EQ(r.rebuilt_cost, 0.0);
      EXPECT_EQ(r.rebuild_ms, 0.0);
      EXPECT_FALSE(r.adopted_rebuild);
      EXPECT_LT(r.cost_excess, 0.05);
    } else {
      // The adoption rule: a rebuild is only skipped when it fails to beat
      // the repaired allocation by the threshold. (Repair can genuinely
      // *beat* the from-scratch rebuild — both are local optima.)
      if (!r.adopted_rebuild) {
        EXPECT_GE(r.rebuilt_cost, r.repaired_cost * (1.0 - 0.01) - 1e-9);
      } else {
        EXPECT_LT(r.rebuilt_cost, r.repaired_cost * (1.0 - 0.01) + 1e-9);
      }
    }
  }
  EXPECT_LT(escalations, 8u)
      << "mild drift should mostly be repaired, not rebuilt";
}

TEST(ServerLoop, AllocationAlwaysValidAcrossEpochs) {
  BroadcastServerLoop server(sample_sizes(30, 4), {.channels = 3});
  const auto freqs = zipf_probabilities(30, 0.8);
  Rng rng(9);
  for (int epoch = 0; epoch < 5; ++epoch) {
    server.observe_window(window_from(freqs, 1000, rng));
    std::string error;
    EXPECT_TRUE(server.allocation().validate(&error)) << error;
    EXPECT_EQ(&server.allocation().database(), &server.database())
        << "allocation must reference the server's live database";
  }
}

TEST(ServerLoop, ReportsRepairAndRebuildWallTimes) {
  BroadcastServerLoop server(sample_sizes(50, 6), {.channels = 5});
  const auto freqs = zipf_probabilities(50, 1.2);
  Rng rng(10);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 2000, rng));
    // Stopwatch wall times are always non-negative; the rebuild timer only
    // runs (and the rebuild only does work) when the epoch escalated.
    EXPECT_GE(r.repair_ms, 0.0);
    if (r.escalated) {
      EXPECT_GT(r.rebuild_ms, 0.0);
    } else {
      EXPECT_EQ(r.rebuild_ms, 0.0);
    }
  }
}

TEST(ServerLoop, ReportsControlLoopState) {
  BroadcastServerLoop server(sample_sizes(40, 12), {.channels = 4});
  const auto freqs = zipf_probabilities(40, 1.0);
  Rng rng(13);
  double staleness = 0.0;
  for (int epoch = 1; epoch <= 5; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 1500, rng));
    EXPECT_EQ(r.epoch, static_cast<std::size_t>(epoch));
    // Snapshot versions are strictly monotone and track the epoch.
    EXPECT_EQ(r.version, static_cast<std::size_t>(epoch));
    EXPECT_EQ(server.snapshot()->version, r.version);
    EXPECT_NEAR(server.snapshot()->cost, server.allocation().cost(), 1e-12);
    // The reference is a positive cost and the excess is measured against it.
    EXPECT_GT(r.reference_cost, 0.0);
    EXPECT_NEAR(r.cost_excess, r.repaired_cost / r.reference_cost - 1.0, 1e-12);
    // Estimator staleness grows monotonically toward 1/(1-decay).
    EXPECT_GT(r.estimator_staleness, staleness);
    EXPECT_LE(r.estimator_staleness,
              1.0 / (1.0 - server.config().tracker_decay) + 1e-12);
    staleness = r.estimator_staleness;
    // A stall streak only accumulates on zero-move elevated epochs.
    if (r.repair_moves > 0) {
      EXPECT_EQ(r.stall_streak, 0u);
    }
  }
}

TEST(ServerLoop, NeverEscalateStaysOnRepairUnderFlashCrowd) {
  BroadcastServerLoop server(sample_sizes(40, 14),
                             {.channels = 4, .never_escalate = true});
  auto freqs = zipf_probabilities(40, 1.0);
  Rng rng(15);
  for (int epoch = 0; epoch < 3; ++epoch) {
    server.observe_window(window_from(freqs, 2000, rng));
  }
  // Flash crowd: half the traffic slams onto one previously cold item.
  for (double& f : freqs) f *= 0.5;
  freqs[39] += 0.5;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 2000, rng));
    EXPECT_FALSE(r.escalated);
    EXPECT_EQ(r.escalation_reason, EscalationReason::kNone);
    EXPECT_EQ(r.rebuilt_cost, 0.0);
    EXPECT_EQ(r.rebuild_ms, 0.0);
    EXPECT_FALSE(r.adopted_rebuild);
  }
}

TEST(ServerLoop, ZeroRebuildThresholdAdoptsAnyStrictlyBetterRebuild) {
  // Hair-trigger escalation (threshold 0) plus adoption threshold 0: every
  // epoch whose repair fails to improve on the reference must escalate, and
  // any strictly better rebuild must be adopted.
  BroadcastServerLoop server(sample_sizes(50, 16),
                             {.channels = 5,
                              .rebuild_threshold = 0.0,
                              .escalate_threshold = 0.0});
  const auto freqs = zipf_probabilities(50, 1.2);
  Rng rng(17);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 2000, rng));
    EXPECT_EQ(r.escalated, r.cost_excess >= 0.0);
    if (r.escalated) {
      EXPECT_EQ(r.adopted_rebuild, r.rebuilt_cost < r.repaired_cost);
      EXPECT_NEAR(server.allocation().cost(),
                  r.adopted_rebuild ? r.rebuilt_cost : r.repaired_cost, 1e-9);
    }
  }
}

TEST(ServerLoop, EscalatesViaPortfolioWhenBudgeted) {
  // With an escalation budget configured, a forced rebuild runs the
  // portfolio race (DESIGN.md §13) instead of the unbudgeted DRP-CDS. The
  // loop's control contract is unchanged: escalated epochs report a real
  // rebuild cost and wall time, and the published program stays valid with
  // its cost matching the adoption decision.
  BroadcastServerLoop server(sample_sizes(50, 18),
                             {.channels = 5,
                              .rebuild_threshold = 0.0,
                              .escalate_threshold = 0.0,
                              .escalation_deadline_ms = 300.0});
  const auto freqs = zipf_probabilities(50, 1.2);
  Rng rng(19);
  std::size_t escalations = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochReport r = server.observe_window(window_from(freqs, 2000, rng));
    if (r.escalated) {
      ++escalations;
      EXPECT_GT(r.rebuilt_cost, 0.0);
      EXPECT_GT(r.rebuild_ms, 0.0);
      EXPECT_EQ(r.adopted_rebuild, r.rebuilt_cost < r.repaired_cost);
    }
    std::string error;
    EXPECT_TRUE(server.allocation().validate(&error)) << error;
    EXPECT_NEAR(server.allocation().cost(),
                r.adopted_rebuild ? r.rebuilt_cost : r.repaired_cost, 1e-9);
  }
  // Hair-trigger threshold on steady traffic: repair cannot keep improving
  // forever, so at least one epoch must have taken the portfolio path.
  EXPECT_GT(escalations, 0u);
}

TEST(ServerLoop, EmbedsMetricsSnapshotWhenObsIsOn) {
  BroadcastServerLoop server(sample_sizes(30, 7), {.channels = 3});
  const auto freqs = zipf_probabilities(30, 1.0);
  Rng rng(11);
  const EpochReport r = server.observe_window(window_from(freqs, 500, rng));
#if DBS_OBS_ENABLED
  // The epoch itself ran instrumented CDS/DRP, so the embedded snapshot must
  // hold at least the serve.* counters with this epoch accounted for.
  ASSERT_FALSE(r.metrics.empty());
  bool found_epochs = false;
  for (const obs::CounterSample& c : r.metrics.counters) {
    if (c.name == "serve.epochs") {
      found_epochs = true;
      EXPECT_GE(c.value, 1u);
    }
  }
  EXPECT_TRUE(found_epochs) << "serve.epochs missing from the epoch snapshot";
#else
  EXPECT_TRUE(r.metrics.empty());
#endif
}

TEST(ServerLoop, RejectsBadConfig) {
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5), {.channels = 9}),
               ContractViolation);
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5),
                                   {.channels = 2, .bandwidth = 0.0}),
               ContractViolation);
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5),
                                   {.channels = 2, .tracker_decay = 0.0}),
               ContractViolation);
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5),
                                   {.channels = 2, .escalate_threshold = -0.1}),
               ContractViolation);
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5),
                                   {.channels = 2, .reference_decay = 1.5}),
               ContractViolation);
  EXPECT_THROW(BroadcastServerLoop(sample_sizes(5, 5),
                                   {.channels = 2, .escalation_deadline_ms = -1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace dbs
