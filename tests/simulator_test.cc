#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/drp_cds.h"
#include "model/cost.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Simulator, EmptyTraceYieldsEmptyReport) {
  const Database db({1.0}, {1.0});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 1.0);
  const SimReport report = simulate(program, {});
  EXPECT_EQ(report.requests_served, 0u);
}

TEST(Simulator, SingleRequestHandComputed) {
  const Database db({10.0, 20.0}, {0.5, 0.5});
  const Allocation alloc(db, 1);
  const BroadcastProgram program(alloc, 10.0);
  // Cycle: item0 [0,1), item1 [1,3). Client at 0.2 wants item 0: next start
  // at 3.0, done at 4.0, wait 3.8.
  const SimReport report = simulate(program, {{0.2, 0}});
  EXPECT_EQ(report.requests_served, 1u);
  EXPECT_NEAR(report.mean_wait(), 3.8, 1e-9);
  EXPECT_NEAR(report.sim_end_time, 4.0, 1e-9);
}

TEST(Simulator, EventEngineMatchesClosedFormReplay) {
  const Database db = generate_database({.items = 25, .skewness = 1.0,
                                         .diversity = 1.5, .seed = 1});
  const Allocation alloc = run_drp_cds(db, 3).allocation;
  const BroadcastProgram program(alloc, 10.0);
  const auto trace = generate_trace(db, {.requests = 2000, .arrival_rate = 5.0, .seed = 2});
  const SimReport des = simulate(program, trace);
  const SimReport replay = replay_analytic(program, trace);
  ASSERT_EQ(des.requests_served, replay.requests_served);
  EXPECT_NEAR(des.mean_wait(), replay.mean_wait(), 1e-9);
  EXPECT_NEAR(des.waiting.max, replay.waiting.max, 1e-9);
  for (ChannelId c = 0; c < 3; ++c) {
    EXPECT_NEAR(des.channel_mean_wait[c], replay.channel_mean_wait[c], 1e-9);
    EXPECT_EQ(des.channel_requests[c], replay.channel_requests[c]);
  }
}

TEST(Simulator, EmpiricalWaitConvergesToAnalyticWb) {
  // The headline validation: the DES's mean waiting time approaches Eq. (2).
  const Database db = generate_database({.items = 40, .skewness = 0.8,
                                         .diversity = 2.0, .seed = 3});
  const Allocation alloc = run_drp_cds(db, 4).allocation;
  const double b = 10.0;
  const BroadcastProgram program(alloc, b);
  const auto trace = generate_trace(db, {.requests = 60000, .arrival_rate = 20.0, .seed = 4});
  const SimReport report = simulate(program, trace);
  const double analytic = program_waiting_time(alloc, b);
  EXPECT_NEAR(report.mean_wait(), analytic, 0.05 * analytic)
      << "empirical " << report.mean_wait() << " vs analytic " << analytic;
}

TEST(Simulator, PerChannelWaitsMatchAnalyticChannelModel) {
  const Database db = generate_database({.items = 30, .skewness = 1.0,
                                         .diversity = 1.0, .seed = 5});
  const Allocation alloc = run_drp_cds(db, 3).allocation;
  const double b = 10.0;
  const BroadcastProgram program(alloc, b);
  const auto trace = generate_trace(db, {.requests = 80000, .arrival_rate = 40.0, .seed = 6});
  const SimReport report = simulate(program, trace);
  for (ChannelId c = 0; c < 3; ++c) {
    if (report.channel_requests[c] < 3000) continue;  // too noisy to assert
    const double analytic = channel_waiting_time(alloc, c, b);
    EXPECT_NEAR(report.channel_mean_wait[c], analytic, 0.08 * analytic)
        << "channel " << c;
  }
}

TEST(Simulator, SlotOrderingDoesNotChangeMeanWait) {
  // Eq. (2) is order-independent; the empirical means should agree across
  // slot orderings to within noise.
  const Database db = generate_database({.items = 20, .diversity = 1.0, .seed = 7});
  const Allocation alloc = run_drp_cds(db, 2).allocation;
  const auto trace = generate_trace(db, {.requests = 50000, .arrival_rate = 25.0, .seed = 8});
  const BroadcastProgram p1(alloc, 10.0, SlotOrdering::kById);
  const BroadcastProgram p2(alloc, 10.0, SlotOrdering::kByFreqDesc);
  const double w1 = simulate(p1, trace).mean_wait();
  const double w2 = simulate(p2, trace).mean_wait();
  EXPECT_NEAR(w1, w2, 0.05 * w1);
}

TEST(Simulator, BetterAllocationYieldsShorterEmpiricalWaits) {
  const Database db = generate_database({.items = 60, .skewness = 1.2,
                                         .diversity = 2.0, .seed = 9});
  const auto trace = generate_trace(db, {.requests = 30000, .arrival_rate = 15.0, .seed = 10});
  const Allocation good = run_drp_cds(db, 5).allocation;
  std::vector<ChannelId> rr(db.size());
  for (ItemId id = 0; id < db.size(); ++id) rr[id] = id % 5;
  const Allocation flat(db, 5, std::move(rr));
  const double w_good = simulate(BroadcastProgram(good, 10.0), trace).mean_wait();
  const double w_flat = simulate(BroadcastProgram(flat, 10.0), trace).mean_wait();
  EXPECT_LT(w_good, w_flat);
}

TEST(Simulator, AllRequestsServedEvenWithColdChannels) {
  // One channel holds a never-requested item; simulation must still finish.
  const Database db({1.0, 1.0, 50.0}, {0.5, 0.5, 0.0});
  const Allocation alloc(db, 2, {0, 0, 1});
  const BroadcastProgram program(alloc, 1.0);
  std::vector<Request> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({0.1 * (i + 1), static_cast<ItemId>(i % 2)});
  }
  const SimReport report = simulate(program, trace);
  EXPECT_EQ(report.requests_served, 100u);
}

}  // namespace
}  // namespace dbs
