#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/drp_cds.h"
#include "baselines/vfk.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(SizeModels, UniformExponentIsDefaultAndMatchesLegacySampler) {
  WorkloadConfig cfg{.items = 50, .seed = 1};
  ASSERT_EQ(cfg.size_model, SizeModel::kUniformExponent);
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sample_item_size(a, 2.0), sample_item_size_model(b, cfg));
  }
}

TEST(SizeModels, LognormalMeanExponentIsHalfDiversity) {
  WorkloadConfig cfg{.items = 1, .diversity = 2.0, .seed = 2};
  cfg.size_model = SizeModel::kLognormal;
  cfg.lognormal_sigma = 0.5;
  Rng rng(3);
  double mean_exp = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    mean_exp += std::log10(sample_item_size_model(rng, cfg));
  }
  EXPECT_NEAR(mean_exp / n, 1.0, 0.02);
}

TEST(SizeModels, LognormalStaysWithinClamp) {
  WorkloadConfig cfg{.items = 1, .diversity = 2.0, .seed = 4};
  cfg.size_model = SizeModel::kLognormal;
  cfg.lognormal_sigma = 3.0;  // fat tail: exercise the clamp
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double z = sample_item_size_model(rng, cfg);
    EXPECT_GE(z, 0.1 - 1e-12);
    EXPECT_LE(z, 1000.0 + 1e-9);
  }
}

TEST(SizeModels, BimodalSeparatesTextFromMedia) {
  WorkloadConfig cfg{.items = 1, .diversity = 2.0, .seed = 6};
  cfg.size_model = SizeModel::kBimodal;
  cfg.bimodal_media_share = 0.25;
  Rng rng(7);
  int media = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double z = sample_item_size_model(rng, cfg);
    const bool is_media = z >= std::pow(10.0, 1.5) - 1e-9;
    const bool is_text = z <= std::pow(10.0, 0.5) + 1e-9;
    ASSERT_TRUE(is_media || is_text) << "size " << z << " falls in the gap";
    media += is_media;
  }
  EXPECT_NEAR(static_cast<double>(media) / n, 0.25, 0.01);
}

TEST(SizeModels, GeneratorHonoursTheModel) {
  WorkloadConfig cfg{.items = 500, .diversity = 2.0, .seed = 8};
  cfg.size_model = SizeModel::kBimodal;
  const Database db = generate_database(cfg);
  for (const Item& it : db.items()) {
    EXPECT_TRUE(it.size <= std::pow(10.0, 0.5) + 1e-9 ||
                it.size >= std::pow(10.0, 1.5) - 1e-9);
  }
}

TEST(SizeModels, DrpCdsStillBeatsVfkUnderEveryModel) {
  // The paper's headline is robust to the size family, not an artifact of
  // the uniform-exponent model.
  for (SizeModel model :
       {SizeModel::kUniformExponent, SizeModel::kLognormal, SizeModel::kBimodal}) {
    double vfk_total = 0.0;
    double drp_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      WorkloadConfig cfg{.items = 100, .skewness = 0.8, .diversity = 2.5,
                         .seed = seed};
      cfg.size_model = model;
      const Database db = generate_database(cfg);
      vfk_total += run_vfk(db, 6).cost();
      drp_total += run_drp_cds(db, 6).final_cost;
    }
    EXPECT_GT(vfk_total, drp_total) << "model " << static_cast<int>(model);
  }
}

}  // namespace
}  // namespace dbs
