#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace dbs {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.37) * 10.0;
    all.add(v);
    (i < 23 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  // Sorted: 1 2 3 4. p50 position = 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> v = {5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.25), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), ContractViolation);
  EXPECT_THROW(percentile({1.0}, -0.1), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 1.1), ContractViolation);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, FieldsAreConsistent) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_FALSE(s.to_string().empty());
}

}  // namespace
}  // namespace dbs
