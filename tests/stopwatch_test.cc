// Dedicated coverage for common/stopwatch.h — the clock every wall-time
// number in the repo (Figures 6/7, perfsuite, EpochReport.repair_ms, the
// tracer) flows through.
#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace dbs {
namespace {

TEST(Stopwatch, StartsAtRoughlyZero) {
  const Stopwatch watch;
  // A fresh stopwatch has essentially no elapsed time; one second of slack
  // keeps this robust on arbitrarily loaded CI hosts.
  EXPECT_GE(watch.seconds(), 0.0);
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(Stopwatch, ElapsedTimeIsMonotonic) {
  const Stopwatch watch;
  double previous = watch.seconds();
  for (int i = 0; i < 1000; ++i) {
    const double now = watch.seconds();
    ASSERT_GE(now, previous) << "steady-clock elapsed time went backwards";
    previous = now;
  }
}

TEST(Stopwatch, MeasuresARealSleep) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // sleep_for may oversleep but never undersleeps the steady clock.
  EXPECT_GE(watch.millis(), 20.0);
}

TEST(Stopwatch, MillisAndSecondsAgree) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = watch.seconds();
  const double millis = watch.millis();
  // millis() is sampled after seconds(), so it can only be (slightly) larger.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis, seconds * 1e3 + 1000.0);
}

TEST(Stopwatch, ResetRestartsFromNow) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before_reset = watch.seconds();
  watch.reset();
  const double after_reset = watch.seconds();
  EXPECT_LT(after_reset, before_reset);
  EXPECT_GE(after_reset, 0.0);
}

TEST(Stopwatch, ResetDoesNotStopTheClock) {
  Stopwatch watch;
  watch.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.millis(), 10.0);
}

}  // namespace
}  // namespace dbs
