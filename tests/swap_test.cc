#include "core/swap.h"

#include <gtest/gtest.h>

#include "core/drp.h"
#include "core/drp_cds.h"
#include "workload/generator.h"

namespace dbs {
namespace {

TEST(Swap, GainMatchesRecomputedDelta) {
  const Database db = generate_database({.items = 30, .diversity = 2.0, .seed = 1});
  const Allocation alloc = run_drp(db, 4).allocation;
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const ItemId a = static_cast<ItemId>(rng.below(db.size()));
    const ItemId b = static_cast<ItemId>(rng.below(db.size()));
    const double predicted = swap_gain(alloc, a, b);
    Allocation copy = alloc;
    const ChannelId ca = copy.channel_of(a);
    const ChannelId cb = copy.channel_of(b);
    copy.move(a, cb);
    copy.move(b, ca);
    EXPECT_NEAR(alloc.cost() - copy.cost(), predicted, 1e-9)
        << "a=" << a << " b=" << b;
  }
}

TEST(Swap, SameChannelSwapIsZero) {
  const Database db = generate_database({.items = 10, .seed = 3});
  const Allocation alloc(db, 2, {0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(swap_gain(alloc, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(swap_gain(alloc, 2, 2), 0.0);
}

TEST(Swap, BestSwapAgreesWithExhaustiveScan) {
  const Database db = generate_database({.items = 25, .diversity = 2.0, .seed = 4});
  const Allocation alloc = run_drp(db, 3).allocation;
  const SwapMove best = best_swap(alloc);
  for (ItemId a = 0; a < db.size(); ++a) {
    for (ItemId b = a + 1; b < db.size(); ++b) {
      EXPECT_LE(swap_gain(alloc, a, b), best.gain + 1e-12);
    }
  }
}

TEST(Swap, DeepSearchNeverWorseThanCdsAlone) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Database db = generate_database({.items = 80, .skewness = 0.8,
                                           .diversity = 2.0, .seed = seed});
    Allocation cds_only = run_drp(db, 6).allocation;
    Allocation deep = cds_only;
    run_cds(cds_only);
    const DeepSearchStats stats = run_cds_with_swaps(deep);
    EXPECT_LE(deep.cost(), cds_only.cost() + 1e-9) << "seed " << seed;
    EXPECT_NEAR(stats.final_cost, deep.cost(), 1e-12);
  }
}

TEST(Swap, DeepSearchEndsDoublyLocallyOptimal) {
  const Database db = generate_database({.items = 60, .diversity = 2.5, .seed = 9});
  Allocation alloc = run_drp(db, 5).allocation;
  run_cds_with_swaps(alloc);
  EXPECT_LE(best_move(alloc).gain, 1e-12);
  EXPECT_LE(best_swap(alloc).gain, 1e-12);
  std::string error;
  EXPECT_TRUE(alloc.validate(&error)) << error;
}

TEST(Swap, EscapesASingleMoveLocalOptimum) {
  // Hand-built trap: channels {hot-small, cold-big} / {hot-small', cold-big'}
  // where the best single move is neutral-or-worse but the cross swap helps.
  // Construct: p = {A(f=.4,z=1), B(f=.1,z=10)}, q = {C(f=.35,z=2), D(f=.15,z=9)}.
  // Verify by construction that if CDS stalls somewhere above, swaps still
  // find any improving exchange — asserted generically over seeds: whenever
  // best_move gain <= 0 and best_swap gain > 0, the swap must reduce cost.
  std::size_t escapes = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Database db = generate_database({.items = 40, .skewness = 0.7,
                                           .diversity = 2.0, .seed = seed});
    Allocation alloc = run_drp(db, 4).allocation;
    run_cds(alloc);
    const SwapMove swap = best_swap(alloc);
    if (swap.gain > 1e-9) {
      const double before = alloc.cost();
      alloc.move(swap.a, swap.from_b);
      alloc.move(swap.b, swap.from_a);
      EXPECT_LT(alloc.cost(), before);
      ++escapes;
    }
  }
  // The swap neighborhood must be non-trivial: it fires on at least one of
  // the 40 CDS-optimal instances.
  EXPECT_GE(escapes, 1u);
}

}  // namespace
}  // namespace dbs
