// tsa-expect: clean
//
// Positive control: disciplined use of every annotation the bad cases
// violate. If this TU stops compiling, the harness flags (include path,
// -std, -Wthread-safety) are broken and the failures of the negative cases
// would be meaningless.
#include "common/sync.h"

namespace {

class GuardedCounter {
 public:
  // Self-locking entry point: scoped acquisition covers the guarded write.
  void bump() DBS_EXCLUDES(mutex_) {
    const dbs::MutexLock lock(mutex_);
    bump_locked();
  }

  // Caller-locked helper: the REQUIRES contract is satisfied by bump().
  void bump_locked() DBS_REQUIRES(mutex_) { value_ += 1; }

  int value() const DBS_EXCLUDES(mutex_) {
    const dbs::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable dbs::Mutex mutex_;
  int value_ DBS_GUARDED_BY(mutex_) = 0;
};

// Manual lock()/unlock() is also accepted when balanced.
dbs::Mutex manual_mutex;
int manual_value DBS_GUARDED_BY(manual_mutex) = 0;

void balanced_manual_pair() {
  manual_mutex.lock();
  manual_value += 1;
  manual_mutex.unlock();
}

}  // namespace

int main() {
  GuardedCounter counter;
  counter.bump();
  balanced_manual_pair();
  return counter.value();
}
