// tsa-expect: already held
//
// Annotation class: DBS_ACQUIRE on a DBS_CAPABILITY type. Re-acquiring a
// non-recursive mutex the thread already holds is a self-deadlock; the
// analysis must reject it ("acquiring mutex 'mu' that is already held").
#include "common/sync.h"

namespace {

dbs::Mutex mu;

void self_deadlock() {
  mu.lock();
  mu.lock();  // BAD: second acquire of a held non-recursive mutex
  mu.unlock();
  mu.unlock();
}

}  // namespace

int main() {
  self_deadlock();
  return 0;
}
