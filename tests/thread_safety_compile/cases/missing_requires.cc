// tsa-expect: requires holding mutex
//
// Annotation class: DBS_REQUIRES. Calling a caller-locked function without
// holding the advertised capability must be rejected ("calling function
// 'bump_locked' requires holding mutex 'mu' exclusively").
#include "common/sync.h"

namespace {

dbs::Mutex mu;
int counter DBS_GUARDED_BY(mu) = 0;

void bump_locked() DBS_REQUIRES(mu) { counter += 1; }

void bump() {
  bump_locked();  // BAD: caller never acquired mu
}

}  // namespace

int main() {
  bump();
  return 0;
}
