// tsa-expect: still held at the end of function
//
// Annotation class: DBS_RELEASE balance. A path that returns while still
// holding a manually acquired capability leaks the lock — every later
// contender deadlocks. The analysis must reject it ("mutex 'mu' is still
// held at the end of function"); dbs::MutexLock exists so this shape is
// impossible to write by accident.
#include "common/sync.h"

namespace {

dbs::Mutex mu;
int value DBS_GUARDED_BY(mu) = 0;

void leak_the_lock() {
  mu.lock();
  value += 1;
}  // BAD: returns with mu held, no unlock on any path

}  // namespace

int main() {
  leak_the_lock();
  return 0;
}
