// tsa-expect: requires holding mutex
//
// Annotation class: DBS_GUARDED_BY. Reading a guarded field without holding
// its mutex must be rejected ("reading variable 'value_' requires holding
// mutex 'mutex_'") — this is exactly the MetricsRegistry map-read bug class
// the migration to annotated primitives exists to prevent.
#include "common/sync.h"

namespace {

class GuardedCounter {
 public:
  int value() const { return value_; }  // BAD: no lock held

 private:
  mutable dbs::Mutex mutex_;
  int value_ DBS_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  const GuardedCounter counter;
  return counter.value();
}
