# Negative-compile harness for the thread-safety capability contracts
# (ISSUE 6 tentpole; same never-rots philosophy as obs_killswitch_test).
#
# Each cases/*.cc fixture declares its fate on its first line:
#
#   // tsa-expect: clean              must compile (positive control)
#   // tsa-expect: <substring>        must FAIL to compile, with a
#                                     -Wthread-safety* diagnostic whose text
#                                     contains <substring>
#
# The script syntax-checks every fixture with Clang under exactly the flags
# DBS_THREAD_SAFETY=ON adds (-Wthread-safety -Werror=thread-safety-analysis)
# and fails if any bad case compiles, fails for the wrong reason (e.g. a
# broken include path), or fires a diagnostic other than the expected one.
# This is what proves the analysis itself still fires — without it, a macro
# typo in common/sync.h that silently no-ops every annotation would leave
# the CI flavor green while checking nothing.
#
# Invoked by ctest as `cmake -D... -P run_cases.cmake` with:
#   DBS_TSA_COMPILER     a clang++ executable
#   DBS_TSA_INCLUDE_DIR  the src/ root (for "common/sync.h")
#   DBS_TSA_CASES_DIR    the cases/ directory
# The registering CMakeLists marks the test DISABLED when no clang++ exists,
# so GCC-only hosts skip instead of fail.

if(NOT DBS_TSA_COMPILER)
  message(FATAL_ERROR "thread_safety_compile: DBS_TSA_COMPILER not set "
                      "(the registering CMakeLists should have DISABLED this test)")
endif()

execute_process(COMMAND ${DBS_TSA_COMPILER} --version
                OUTPUT_VARIABLE _version ERROR_VARIABLE _version_err
                RESULT_VARIABLE _version_rv)
if(NOT _version_rv EQUAL 0 OR NOT _version MATCHES "clang")
  message(FATAL_ERROR "thread_safety_compile: '${DBS_TSA_COMPILER}' is not a "
                      "working clang++ (got: ${_version}${_version_err})")
endif()

file(GLOB _cases "${DBS_TSA_CASES_DIR}/*.cc")
list(SORT _cases)
list(LENGTH _cases _case_count)
if(_case_count EQUAL 0)
  message(FATAL_ERROR "thread_safety_compile: no cases in ${DBS_TSA_CASES_DIR}")
endif()

set(_failures 0)
foreach(_case IN LISTS _cases)
  get_filename_component(_name ${_case} NAME)
  file(STRINGS ${_case} _header LIMIT_COUNT 1)
  if(NOT _header MATCHES "tsa-expect: *(.+)$")
    message(SEND_ERROR "${_name}: first line lacks a '// tsa-expect:' header")
    math(EXPR _failures "${_failures} + 1")
    continue()
  endif()
  string(STRIP "${CMAKE_MATCH_1}" _expected)

  execute_process(
    COMMAND ${DBS_TSA_COMPILER} -std=c++20 -fsyntax-only
            -Wthread-safety -Werror=thread-safety-analysis
            -I ${DBS_TSA_INCLUDE_DIR} ${_case}
    RESULT_VARIABLE _rv
    OUTPUT_VARIABLE _out
    ERROR_VARIABLE _err)
  set(_diag "${_out}${_err}")

  if(_expected STREQUAL "clean")
    if(_rv EQUAL 0)
      message(STATUS "ok   ${_name}: compiles clean (positive control)")
    else()
      message(SEND_ERROR "${_name}: positive control failed to compile — the "
                         "harness flags are broken, every negative result is "
                         "suspect:\n${_diag}")
      math(EXPR _failures "${_failures} + 1")
    endif()
    continue()
  endif()

  if(_rv EQUAL 0)
    message(SEND_ERROR "${_name}: compiled clean but must be rejected — the "
                       "thread-safety analysis did not fire (expected "
                       "diagnostic containing '${_expected}')")
    math(EXPR _failures "${_failures} + 1")
    continue()
  endif()
  # It failed — but for the right reason? Require both the expected text and
  # a thread-safety diagnostic group marker, so a missing header or syntax
  # error cannot masquerade as the analysis firing.
  string(FIND "${_diag}" "${_expected}" _expected_at)
  string(FIND "${_diag}" "thread-safety" _group_at)
  if(_expected_at EQUAL -1 OR _group_at EQUAL -1)
    message(SEND_ERROR "${_name}: rejected, but not by the expected "
                       "-Wthread-safety diagnostic '${_expected}':\n${_diag}")
    math(EXPR _failures "${_failures} + 1")
  else()
    message(STATUS "ok   ${_name}: rejected with '${_expected}'")
  endif()
endforeach()

if(_failures GREATER 0)
  message(FATAL_ERROR "thread_safety_compile: ${_failures} of ${_case_count} "
                      "case(s) misbehaved")
endif()
message(STATUS "thread_safety_compile: all ${_case_count} cases behave")
