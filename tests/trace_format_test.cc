// Validates the tracer's output against the Chrome trace-event schema:
// every event object must carry "ph", "ts", "pid", "tid" and "name", and
// complete ("X") events must also carry "dur". Registered in ctest as
// `trace_format_test` (see tests/CMakeLists.txt); a regression here means
// chrome://tracing and Perfetto silently drop the whole file.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/drp_cds.h"
#include "obs/obs.h"  // for the DBS_OBS_ENABLED default
#include "obs/trace.h"
#include "workload/generator.h"

namespace dbs {
namespace {

/// Splits the "traceEvents" array into one raw JSON object string per event.
/// The tracer emits flat objects (no nested braces), so brace matching is a
/// simple scan.
std::vector<std::string> event_objects(const std::string& json) {
  std::vector<std::string> events;
  const std::size_t array_start = json.find('[');
  if (array_start == std::string::npos) return events;
  std::size_t pos = array_start;
  while (true) {
    const std::size_t open = json.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = json.find('}', open);
    if (close == std::string::npos) break;
    events.push_back(json.substr(open, close - open + 1));
    pos = close + 1;
  }
  return events;
}

bool has_key(const std::string& event, const std::string& key) {
  return event.find("\"" + key + "\":") != std::string::npos;
}

class TraceFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();
  }
  void TearDown() override {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
};

TEST_F(TraceFormatTest, DocumentIsATraceEventsObject) {
  { obs::ScopedSpan span("trace_test.span"); }
  const std::string json = obs::Tracer::global().to_json();
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(json.rfind("]}"), std::string::npos);
}

TEST_F(TraceFormatTest, EveryEventCarriesTheRequiredKeys) {
  // Drive real instrumented library code so the events under validation are
  // the ones production emits, not synthetic ones.
  const Database db = generate_database({.items = 60, .seed = 11});
  run_drp_cds(db, 5);
  { obs::ScopedSpan span("trace_test.explicit"); }
  obs::Tracer::global().instant("trace_test.instant");

  const std::string json = obs::Tracer::global().to_json();
  const std::vector<std::string> events = event_objects(json);
#if DBS_OBS_ENABLED
  // run_drp_cds emits at least core.drp.run and core.cds.run.
  ASSERT_GE(events.size(), 4u);
  EXPECT_NE(json.find("core.drp.run"), std::string::npos);
  EXPECT_NE(json.find("core.cds.run"), std::string::npos);
#else
  ASSERT_GE(events.size(), 2u);  // only the explicit span and instant
#endif
  for (const std::string& event : events) {
    EXPECT_TRUE(has_key(event, "ph")) << event;
    EXPECT_TRUE(has_key(event, "ts")) << event;
    EXPECT_TRUE(has_key(event, "pid")) << event;
    EXPECT_TRUE(has_key(event, "tid")) << event;
    EXPECT_TRUE(has_key(event, "name")) << event;
    if (event.find("\"ph\": \"X\"") != std::string::npos) {
      EXPECT_TRUE(has_key(event, "dur")) << event;
    }
  }
}

TEST_F(TraceFormatTest, TimestampsAreNonNegativeAndOrderedWithinAThread) {
  const Database db = generate_database({.items = 40, .seed = 12});
  run_drp_cds(db, 4);
  for (const obs::TraceEvent& event : obs::Tracer::global().events()) {
    EXPECT_GE(event.ts_us, 0.0);
    EXPECT_GE(event.dur_us, 0.0);
    EXPECT_GE(event.tid, 1u);
  }
}

TEST_F(TraceFormatTest, WritesLoadableFileToDisk) {
  { obs::ScopedSpan span("trace_test.file_span"); }
  const std::string path = ::testing::TempDir() + "trace_format_test.json";
  ASSERT_TRUE(obs::Tracer::global().write_json_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[1024];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, obs::Tracer::global().to_json());
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
}

}  // namespace
}  // namespace dbs
