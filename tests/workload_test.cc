#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/generator.h"
#include "workload/paper_example.h"
#include "workload/trace.h"

namespace dbs {
namespace {

TEST(Generator, ProducesRequestedItemCount) {
  const Database db = generate_database({.items = 75, .seed = 1});
  EXPECT_EQ(db.size(), 75u);
}

TEST(Generator, SameSeedSameDatabase) {
  const WorkloadConfig cfg{.items = 50, .skewness = 1.1, .diversity = 2.5, .seed = 77};
  const Database a = generate_database(cfg);
  const Database b = generate_database(cfg);
  for (ItemId id = 0; id < a.size(); ++id) {
    EXPECT_DOUBLE_EQ(a.item(id).size, b.item(id).size);
    EXPECT_DOUBLE_EQ(a.item(id).freq, b.item(id).freq);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Database a = generate_database({.items = 50, .seed = 1});
  const Database b = generate_database({.items = 50, .seed = 2});
  bool any_diff = false;
  for (ItemId id = 0; id < a.size(); ++id) {
    any_diff |= a.item(id).size != b.item(id).size;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, DiversityZeroMeansUnitSizes) {
  const Database db = generate_database({.items = 40, .diversity = 0.0, .seed = 3});
  for (const Item& it : db.items()) EXPECT_DOUBLE_EQ(it.size, 1.0);
}

TEST(Generator, SizesWithinDiversityRange) {
  const double phi = 3.0;
  const Database db = generate_database({.items = 300, .diversity = phi, .seed = 4});
  for (const Item& it : db.items()) {
    EXPECT_GE(it.size, 1.0);
    EXPECT_LE(it.size, std::pow(10.0, phi));
  }
}

TEST(Generator, SizeExponentRoughlyUniform) {
  // log10(size) should be ~U[0, Φ]: mean Φ/2.
  const double phi = 2.0;
  const Database db = generate_database({.items = 5000, .diversity = phi, .seed = 5});
  double mean_exp = 0.0;
  for (const Item& it : db.items()) mean_exp += std::log10(it.size);
  mean_exp /= static_cast<double>(db.size());
  EXPECT_NEAR(mean_exp, phi / 2.0, 0.05);
}

TEST(Generator, FrequenciesAreZipfWithoutShuffle) {
  const Database db = generate_database(
      {.items = 10, .skewness = 1.0, .diversity = 1.0, .seed = 6, .shuffle_ranks = false});
  // Item 0 is rank 1, item 9 is rank 10; ratio f_0/f_9 = 10 for theta = 1.
  EXPECT_NEAR(db.item(0).freq / db.item(9).freq, 10.0, 1e-9);
  for (ItemId id = 1; id < db.size(); ++id) {
    EXPECT_LE(db.item(id).freq, db.item(id - 1).freq);
  }
}

TEST(Generator, ShuffleKeepsMultiset) {
  const WorkloadConfig base{.items = 30, .skewness = 0.8, .diversity = 1.0,
                            .seed = 7, .shuffle_ranks = false};
  WorkloadConfig shuffled = base;
  shuffled.shuffle_ranks = true;
  const Database a = generate_database(base);
  const Database b = generate_database(shuffled);
  auto freqs = [](const Database& db) {
    std::vector<double> f;
    for (const Item& it : db.items()) f.push_back(it.freq);
    std::sort(f.begin(), f.end());
    return f;
  };
  const auto fa = freqs(a);
  const auto fb = freqs(b);
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_NEAR(fa[i], fb[i], 1e-12);
}

TEST(Generator, RejectsBadConfig) {
  EXPECT_THROW(generate_database({.items = 0}), ContractViolation);
  EXPECT_THROW(generate_database({.items = 5, .skewness = -1.0}), ContractViolation);
}

TEST(PaperExample, FifteenItemsSummingToOne) {
  const Database db = paper_table2_database();
  ASSERT_EQ(db.size(), 15u);
  double sum = 0.0;
  for (const Item& it : db.items()) sum += it.freq;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Frequencies already sum to 1 in Table 2, so values are unchanged.
  EXPECT_DOUBLE_EQ(db.item(0).freq, 0.2374);
  EXPECT_DOUBLE_EQ(db.item(10).size, 30.62);
}

TEST(PaperExample, TotalSizeIs135_60) {
  EXPECT_NEAR(paper_table2_database().total_size(), 135.60, 1e-9);
}

TEST(PaperExample, BenefitRatioOrderMatchesTable3) {
  const Database db = paper_table2_database();
  EXPECT_EQ(db.ids_by_benefit_ratio_desc(), paper_table3_br_order());
}

TEST(Trace, GeneratesRequestedCountInOrder) {
  const Database db = generate_database({.items = 20, .seed = 8});
  const auto trace = generate_trace(db, {.requests = 500, .arrival_rate = 5.0, .seed = 1});
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].time, trace[i - 1].time);
  }
}

TEST(Trace, InterArrivalMeanMatchesRate) {
  const Database db = generate_database({.items = 10, .seed = 9});
  const double rate = 8.0;
  const auto trace = generate_trace(db, {.requests = 20000, .arrival_rate = rate, .seed = 2});
  const double mean_gap = trace.back().time / static_cast<double>(trace.size());
  EXPECT_NEAR(mean_gap, 1.0 / rate, 0.01);
}

TEST(Trace, PopularityTracksFrequencies) {
  const Database db = generate_database(
      {.items = 12, .skewness = 1.2, .seed = 10, .shuffle_ranks = false});
  const auto trace = generate_trace(db, {.requests = 100000, .seed = 3});
  const auto hist = trace_popularity(trace, db.size());
  for (ItemId id = 0; id < db.size(); ++id) {
    EXPECT_NEAR(hist[id], db.item(id).freq, 0.01) << "item " << id;
  }
}

TEST(Trace, PopularityOfEmptyTraceIsZero) {
  const auto hist = trace_popularity({}, 4);
  for (double h : hist) EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(Trace, RejectsNonPositiveRate) {
  const Database db = generate_database({.items = 5, .seed = 1});
  EXPECT_THROW(generate_trace(db, {.requests = 10, .arrival_rate = 0.0}),
               ContractViolation);
}

}  // namespace
}  // namespace dbs
