#!/usr/bin/env python3
"""dbs_lint: repo-specific contract linter for the dbs broadcast scheduler.

Enforces project invariants that clang-tidy cannot express:

  contract-audit     Every public entry point (a function defined in a
                     src/**/*.cc whose name is declared in a header of the
                     same module) that consumes a user-supplied Database /
                     catalogue must validate its inputs with DBS_CHECK /
                     DBS_CHECK_MSG, or carry an explicit
                     `// dbs-lint: contract delegated` annotation naming the
                     callee that performs the check. This keeps the contract
                     audit grep-able: `grep -rn "dbs-lint: contract"` lists
                     every delegation.
  include-cc         No `#include` of a `.cc` file anywhere (src, tests,
                     bench, examples). Including implementation files breaks
                     the one-definition rule silently.
  check-iwyu         Any file that uses DBS_CHECK / DBS_CHECK_MSG /
                     DBS_ASSERT must itself include "common/check.h" —
                     macro availability must never ride on transitive
                     includes.
  determinism        src/ must not call std::rand / rand / srand /
                     std::random_device or read wall-clock `time(` — all
                     randomness flows through the seeded dbs::Rng layer so
                     every experiment replays bit-for-bit.
  detail-isolation   tests/ and bench/ must not name `detail::` symbols;
                     the detail namespaces are internal and not part of the
                     tested surface.
  api-docs           Every namespace-scope declaration in a src/api/,
                     src/model/ or src/core/ header must carry a `///` doc
                     comment on the line above, and function declarations
                     must additionally contain a `\\brief` tag — src/api is
                     the facade users read first, and model/core are the
                     layers docs/ARCHITECTURE.md narrates, so an
                     undocumented entry point in any of them is a defect.
  obs-metric-names   Every literal name handed to the observability layer
                     (DBS_OBS_* macros, MetricsRegistry counter/gauge/
                     histogram registration) must match the
                     snake_case.dotted.namespace contract — at least two
                     dot-separated components of [a-z][a-z0-9_]*. The
                     registry DBS_CHECKs this at runtime; the lint catches
                     it before anything runs.
  raw-sync-primitive Raw standard sync primitives (std::mutex and family,
                     std::lock_guard / std::unique_lock / std::scoped_lock,
                     std::condition_variable) are banned everywhere except
                     src/common/sync.h — all locking goes through the
                     capability-annotated dbs::Mutex / dbs::MutexLock so
                     Clang's thread-safety analysis (DBS_THREAD_SAFETY=ON)
                     sees every critical section. Growing the vocabulary
                     (shared/timed mutexes, condvars) means growing sync.h,
                     not bypassing it.
  guarded-by-audit   In any TU that includes common/sync.h, a `mutable`
                     non-atomic field must either be the Mutex itself or
                     carry a DBS_GUARDED_BY annotation — `mutable` is
                     exactly the qualifier that lets const entry points
                     mutate shared state behind the caller's back, so its
                     protection must be spelled out in the type. This keeps
                     the Python linter and the compiler analysis pointed at
                     the same contract.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.

Run on the repo:      tools/dbs_lint.py --root .
Machine-readable:     tools/dbs_lint.py --root . --json   (schema dbs-lint-v1)
Run the golden cases: tools/dbs_lint.py --selftest
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SRC_DIRS = ("src",)
TEST_DIRS = ("tests", "bench")
ALL_DIRS = ("src", "tests", "bench", "examples")

DELEGATION_MARK = "dbs-lint: contract delegated"
SUPPRESS_MARK = "dbs-lint: allow"  # `// dbs-lint: allow(<rule>)` on the line


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def iter_files(root: Path, dirs, suffixes=(".h", ".cc", ".cpp")):
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets.

    Keeps newlines so line numbers computed against the stripped text match
    the original file.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isdigit() or text[i - 1] == "'"):
            # C++14 digit separator (200'000), not a char literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def suppressed(lines, lineno: int, rule: str) -> bool:
    """True if the 1-based line (or the one above) carries an allow marker."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines) and SUPPRESS_MARK in lines[ln - 1]:
            allowed = lines[ln - 1].split(SUPPRESS_MARK, 1)[1]
            if rule in allowed or "(*)" in allowed:
                return True
    return False


# --------------------------------------------------------------------------
# Rule: include-cc
# --------------------------------------------------------------------------

INCLUDE_CC_RE = re.compile(r'^\s*#\s*include\s+[<"][^<">]+\.cc[">]', re.M)


def rule_include_cc(path: Path, text: str, findings):
    for m in INCLUDE_CC_RE.finditer(text):
        findings.append(
            Finding("include-cc", path, line_of(text, m.start()),
                    "#include of a .cc implementation file"))


# --------------------------------------------------------------------------
# Rule: check-iwyu
# --------------------------------------------------------------------------

CHECK_MACRO_RE = re.compile(r"\bDBS_(CHECK|CHECK_MSG|ASSERT)\s*\(")
CHECK_INCLUDE_RE = re.compile(r'#\s*include\s+"common/check\.h"')


def rule_check_iwyu(path: Path, text: str, stripped: str, findings):
    if path.name == "check.h":
        return
    m = CHECK_MACRO_RE.search(stripped)
    if m and not CHECK_INCLUDE_RE.search(text):
        findings.append(
            Finding("check-iwyu", path, line_of(stripped, m.start()),
                    'uses DBS_CHECK/DBS_ASSERT but does not itself '
                    '#include "common/check.h"'))


# --------------------------------------------------------------------------
# Rule: determinism
# --------------------------------------------------------------------------

NONDETERMINISM_RES = (
    (re.compile(r"(?<![A-Za-z0-9_:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![A-Za-z0-9_.>])time\s*\("), "wall-clock time()"),
)


def rule_determinism(path: Path, stripped: str, lines, findings):
    for regex, what in NONDETERMINISM_RES:
        for m in regex.finditer(stripped):
            ln = line_of(stripped, m.start())
            if suppressed(lines, ln, "determinism"):
                continue
            findings.append(
                Finding("determinism", path, ln,
                        f"{what} breaks replayability; draw from dbs::Rng "
                        "(src/common/rng.h) instead"))


# --------------------------------------------------------------------------
# Rule: detail-isolation
# --------------------------------------------------------------------------

DETAIL_RE = re.compile(r"\bdetail\s*::")


def rule_detail_isolation(path: Path, stripped: str, lines, findings):
    for m in DETAIL_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        if suppressed(lines, ln, "detail-isolation"):
            continue
        findings.append(
            Finding("detail-isolation", path, ln,
                    "tests/bench must not reach into detail:: internals"))


# --------------------------------------------------------------------------
# Rule: api-docs
# --------------------------------------------------------------------------

# Header directories whose public declarations must be documented: the user
# facade plus the two layers docs/ARCHITECTURE.md walks through.
API_DOC_DIRS = (("src", "api"), ("src", "model"), ("src", "core"))

PREPROCESSOR_RE = re.compile(r"^\s*#.*$", re.M)
TYPE_DECL_RE = re.compile(r"^(?:template\s*<[^;{}]*>\s*)?(?:class|struct|enum)\b")
SKIP_DECL_RE = re.compile(r"^(?:using\b|typedef\b|extern\b|static_assert\b|friend\b)")
# A bodiless `class X;` introduces no API surface — don't demand docs on it.
FORWARD_DECL_RE = re.compile(r"^(?:class|struct|enum(?:\s+(?:class|struct))?)\s+[A-Za-z_]\w*$")
BRIEF_RE = re.compile(r"[\\@]brief\b")


def namespace_scope_declarations(stripped: str):
    """Yields (offset, declaration-text, is_function) for each declaration at
    namespace scope. Namespace braces are depth-neutral, so declarations
    inside `namespace a::b { ... }` count as namespace scope while class
    bodies and function bodies are skipped wholesale."""
    text = PREPROCESSOR_RE.sub(lambda m: " " * len(m.group(0)), stripped)
    n = len(text)
    i = 0
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            return
        if text[i] in ";}":  # stray terminators (e.g. closing a namespace)
            i += 1
            continue
        # One declaration: runs to the first `;` or `{` outside parentheses.
        start = i
        parens = 0
        while i < n and not (parens == 0 and text[i] in ";{"):
            if text[i] == "(":
                parens += 1
            elif text[i] == ")":
                parens -= 1
            i += 1
        decl = " ".join(text[start:i].split())
        if i >= n:
            return
        if text[i] == "{":
            if decl.startswith("namespace") or not decl:
                i += 1  # depth-neutral: recurse into the namespace body
                continue
            body_end = find_matching_brace(text, i)
            is_type = bool(TYPE_DECL_RE.match(decl))
            if decl and not SKIP_DECL_RE.match(decl):
                yield start, decl, not is_type and "(" in decl
            i = body_end + 1
            continue
        # Terminated by `;`: plain declaration.
        if decl and not SKIP_DECL_RE.match(decl) and not FORWARD_DECL_RE.match(decl):
            is_type = bool(TYPE_DECL_RE.match(decl))
            yield start, decl, not is_type and "(" in decl
        i += 1


def doc_block_above(lines, decl_line: int):
    """Returns the contiguous `///` comment block ending directly above the
    1-based `decl_line`, or None when the preceding line is not a doc line."""
    block = []
    ln = decl_line - 1
    while ln >= 1 and lines[ln - 1].lstrip().startswith("///"):
        block.append(lines[ln - 1])
        ln -= 1
    return block or None


def rule_api_docs(path: Path, stripped: str, lines, findings):
    for offset, decl, is_function in namespace_scope_declarations(stripped):
        ln = line_of(stripped, offset)
        if suppressed(lines, ln, "api-docs"):
            continue
        label = decl if len(decl) <= 48 else decl[:45] + "..."
        block = doc_block_above(lines, ln)
        if block is None:
            findings.append(
                Finding("api-docs", path, ln,
                        f"public declaration '{label}' lacks a /// doc "
                        "comment on the line above"))
        elif is_function and not any(BRIEF_RE.search(line) for line in block):
            findings.append(
                Finding("api-docs", path, ln,
                        f"doc comment of public function '{label}' lacks a "
                        "\\brief tag"))


# --------------------------------------------------------------------------
# Rule: obs-metric-names
# --------------------------------------------------------------------------

METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")

# Literal-name call sites of the observability layer: the DBS_OBS_* macro
# family (src/obs/obs.h) and direct registry registration. Matched against
# the original text (the literal is blanked in the stripped copy) and then
# position-checked against the stripped text so commented-out call sites
# don't count.
OBS_CALLSITE_RE = re.compile(
    r'(?:\bDBS_OBS_(?:COUNTER_INC|COUNTER_ADD|GAUGE_SET|HISTOGRAM_OBSERVE|'
    r'SPAN)|\.\s*(?:counter|gauge|histogram))\s*\(\s*"([^"]*)"')


def rule_obs_metric_names(path: Path, text: str, stripped: str, lines,
                          findings):
    for m in OBS_CALLSITE_RE.finditer(text):
        if not OBS_CALLSITE_RE.match(stripped, m.start()):
            continue  # inside a comment or string literal
        name = m.group(1)
        if METRIC_NAME_RE.match(name):
            continue
        ln = line_of(text, m.start())
        if suppressed(lines, ln, "obs-metric-names"):
            continue
        findings.append(
            Finding("obs-metric-names", path, ln,
                    f"metric/span name '{name}' violates the "
                    "snake_case.dotted.namespace contract "
                    "(>= 2 dot-separated [a-z][a-z0-9_]* components)"))


# --------------------------------------------------------------------------
# Rule: raw-sync-primitive
# --------------------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")


def is_sync_header(rel: Path) -> bool:
    """True for the one file allowed to touch raw primitives."""
    return rel.parts[-3:] == ("src", "common", "sync.h") or \
        rel.parts == ("common", "sync.h")


def rule_raw_sync_primitive(path: Path, rel: Path, stripped: str, lines,
                            findings):
    if is_sync_header(rel):
        return
    for m in RAW_SYNC_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        if suppressed(lines, ln, "raw-sync-primitive"):
            continue
        findings.append(
            Finding("raw-sync-primitive", path, ln,
                    f"raw std::{m.group(1)} outside src/common/sync.h; use "
                    "the capability-annotated dbs::Mutex / dbs::MutexLock "
                    "(or extend sync.h) so the thread-safety analysis sees "
                    "this critical section"))


# --------------------------------------------------------------------------
# Rule: guarded-by-audit
# --------------------------------------------------------------------------

SYNC_INCLUDE_RE = re.compile(r'#\s*include\s+"common/sync\.h"')
MUTABLE_FIELD_RE = re.compile(r"^\s*mutable\b[^;(){}]*;", re.M)
GUARDED_FIELD_OK_RE = re.compile(
    r"std::atomic\b|\bMutex\b|DBS_GUARDED_BY|DBS_PT_GUARDED_BY")


def rule_guarded_by_audit(path: Path, rel: Path, text: str, stripped: str,
                          lines, findings):
    if is_sync_header(rel):
        return
    if not SYNC_INCLUDE_RE.search(text):
        return  # TU has not opted into the annotated-sync world
    for m in MUTABLE_FIELD_RE.finditer(stripped):
        decl = m.group(0)
        if GUARDED_FIELD_OK_RE.search(decl):
            continue
        ln = line_of(stripped, m.start())
        if suppressed(lines, ln, "guarded-by-audit"):
            continue
        label = " ".join(decl.split())
        if len(label) > 48:
            label = label[:45] + "..."
        findings.append(
            Finding("guarded-by-audit", path, ln,
                    f"mutable non-atomic field '{label}' in a sync.h TU "
                    "carries no DBS_GUARDED_BY — name its lock, make it "
                    "std::atomic, or justify a suppression"))


# --------------------------------------------------------------------------
# Rule: contract-audit
# --------------------------------------------------------------------------

# A function definition whose parameter list mentions a user-facing
# catalogue type. Matched on the stripped text so strings/comments cannot
# confuse the brace scanner.
ENTRY_SIG_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*?\b([A-Za-z_]\w*)\s*"  # return type + name
    r"\(([^;{}]*?\bDatabase\s*&[^;{}]*?)\)"          # params containing Database&
    r"\s*(?:const)?\s*(?::[^{;]*)?\{",               # ctor-inits, then body
    re.M | re.S)

CONTRACT_RE = re.compile(r"\bDBS_CHECK(_MSG)?\s*\(")


def find_matching_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def public_names_for(path: Path) -> set:
    """Identifiers declared in headers of the same module directory."""
    names = set()
    for header in path.parent.glob("*.h"):
        text = strip_comments_and_strings(
            header.read_text(encoding="utf-8", errors="replace"))
        names.update(re.findall(r"\b([A-Za-z_]\w*)\s*\(", text))
        names.update(re.findall(r"\b(?:class|struct)\s+([A-Za-z_]\w*)", text))
    return names


def rule_contract_audit(path: Path, text: str, stripped: str, lines, findings):
    if path.suffix not in (".cc", ".cpp"):
        return
    public = public_names_for(path)
    for m in ENTRY_SIG_RE.finditer(stripped):
        name = m.group(1).split("::")[-1]
        if name not in public:
            continue  # file-local helper, not a public entry point
        open_idx = m.end() - 1
        close_idx = find_matching_brace(stripped, open_idx)
        # The checked region covers the ctor-init list too: delegating
        # constructors and members constructed from the Database count when
        # the callee performs the DBS_CHECK and the delegation is annotated.
        region = stripped[m.start():close_idx]
        region_src = text[m.start():close_idx]
        ln = line_of(stripped, m.start())
        if suppressed(lines, ln, "contract-audit"):
            continue
        if CONTRACT_RE.search(region):
            continue
        if DELEGATION_MARK in region_src:
            continue
        findings.append(
            Finding("contract-audit", path, ln,
                    f"public entry point '{name}' consumes a Database but "
                    "neither DBS_CHECKs its inputs nor carries a "
                    f"'// {DELEGATION_MARK} to <callee>' annotation"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_file(path: Path, rel: Path, findings):
    text = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(text)
    lines = text.splitlines()
    top = rel.parts[0] if rel.parts else ""

    rule_include_cc(path, text, findings)
    rule_check_iwyu(path, text, stripped, findings)
    rule_obs_metric_names(path, text, stripped, lines, findings)
    rule_raw_sync_primitive(path, rel, stripped, lines, findings)
    rule_guarded_by_audit(path, rel, text, stripped, lines, findings)
    if top in SRC_DIRS:
        rule_determinism(path, stripped, lines, findings)
        rule_contract_audit(path, text, stripped, lines, findings)
        if rel.parts[:2] in API_DOC_DIRS and path.suffix == ".h":
            rule_api_docs(path, stripped, lines, findings)
    if top in TEST_DIRS:
        rule_detail_isolation(path, stripped, lines, findings)


def run(root: Path) -> list:
    findings = []
    for path in iter_files(root, ALL_DIRS):
        lint_file(path, path.relative_to(root), findings)
    return findings


# --------------------------------------------------------------------------
# Golden-case selftest
# --------------------------------------------------------------------------

def selftest() -> int:
    """Runs the linter over tools/lint_cases/ and checks each fixture file
    produces exactly the rule hits named in its `// expect: rule[,rule]` first
    line (or none for `// expect: clean`)."""
    cases_dir = Path(__file__).resolve().parent / "lint_cases"
    if not cases_dir.is_dir():
        print(f"selftest: missing {cases_dir}", file=sys.stderr)
        return 2
    failures = 0
    for case in sorted(cases_dir.rglob("*")):
        if case.suffix not in (".h", ".cc", ".cpp") or not case.is_file():
            continue
        first = case.read_text(encoding="utf-8").splitlines()[0]
        m = re.match(r"//\s*expect:\s*(.*)", first)
        if not m:
            print(f"selftest: {case} lacks a '// expect:' header")
            failures += 1
            continue
        expected = set()
        if m.group(1).strip() != "clean":
            expected = {r.strip() for r in m.group(1).split(",")}
        findings = []
        rel = case.relative_to(cases_dir)
        lint_file(case, rel, findings)
        got = {f.rule for f in findings}
        if got != expected:
            print(f"selftest FAIL {rel}: expected {sorted(expected)}, "
                  f"got {sorted(got)}")
            for f in findings:
                print(f"    {f}")
            failures += 1
        else:
            print(f"selftest ok   {rel}: {sorted(got) or ['clean']}")
    if failures:
        print(f"selftest: {failures} case(s) failed", file=sys.stderr)
        return 1
    print("selftest: all golden cases behave")
    return 0


def findings_to_json(findings, root: Path) -> str:
    """Renders findings as the stable dbs-lint-v1 document: one object per
    finding with repo-relative `path`, 1-based `line`, `rule` and `message` —
    the shape the CI annotation step and any other tooling consumes."""
    objects = []
    for f in findings:
        try:
            rel = f.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = f.path
        objects.append({
            "rule": f.rule,
            "path": rel.as_posix(),
            "line": f.line,
            "message": f.message,
        })
    return json.dumps({"schema": "dbs-lint-v1", "findings": objects}, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the golden lint cases instead of the repo")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as dbs-lint-v1 JSON on stdout "
                             "(exit status unchanged: 1 iff any finding)")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()

    root = args.root or Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"dbs_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    findings = run(root)
    if args.json:
        print(findings_to_json(findings, root))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"dbs_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("dbs_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
