// expect: clean
// Golden case: a fully documented src/api header — every namespace-scope
// declaration has a /// comment and every function doc carries \brief.
#pragma once

namespace dbs {

/// A documented public type.
struct Example {
  int value = 0;  ///< member docs are house style but not lint-enforced
};

/// \brief Enumerates documented modes.
enum class Mode {
  kFast,
  kSlow,
};

/// \brief Computes a thing from `e`.
/// `e` must be outlive the call; returns its value unchanged.
int compute(const Example& e);

/// \brief Overload resolution must not confuse the scanner.
/// Multi-line declarations are matched from their first line.
int compute(const Example& e,
            Mode mode);

// A namespace-scope declaration may opt out explicitly when the doc lives
// elsewhere.  dbs-lint: allow(api-docs)
int documented_elsewhere(int raw);

namespace nested {

/// \brief Declarations inside nested namespaces are still namespace scope.
void touch();

}  // namespace nested

}  // namespace dbs
