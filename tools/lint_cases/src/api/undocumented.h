// expect: api-docs
// Golden case: three api-docs violations — an undocumented type, an
// undocumented function, and a function doc without a \brief tag. Class
// members and function bodies must NOT be flagged (only namespace scope).
#pragma once

namespace dbs {

struct Undocumented {
  int value = 0;
  int member_function();  // class member: not namespace scope, never flagged
};

int compute_undocumented(int raw);

/// Has a doc comment, but no brief tag anywhere in the block.
int compute_unbriefed(int raw);

}  // namespace dbs
