// expect: api-docs
// Golden case: a portfolio-shaped facade header (enum + options struct +
// racing entry point, mirroring src/api/portfolio.h) where the enum and the
// struct lack doc comments entirely and the entry point's doc has no \brief
// tag. Guards the PR 9 surface: the api-docs rule must keep covering new
// src/api headers, not just the ones that existed when it was written.
#pragma once

namespace dbs {

enum class RacerKind {
  kHeuristic,
  kSeeded,
  kEvolutionary,
};

struct RaceOptions {
  int threads = 0;
  double deadline_ms = 250.0;
};

/// Races the planners and returns the cheapest allocation found — but this
/// doc block never states a brief tag, which the rule must flag.
int run_race(const RaceOptions& options);

}  // namespace dbs
