// expect: clean
// Header for the contract-audit fixtures: declares which names are public.
#pragma once

namespace dbs {

class Database;
using ChannelId = unsigned;

double unchecked_entry(const Database& db, ChannelId channels);
double checked_entry(const Database& db, ChannelId channels);
double delegated_entry(const Database& db, ChannelId channels);

}  // namespace dbs
