// expect: clean
// The compliant shapes: a DBS_CHECK in the body, or an explicit delegation
// annotation naming the callee that performs the validation.
#include "badmod.h"

#include "common/check.h"

namespace dbs {

double checked_entry(const Database& db, ChannelId channels) {
  DBS_CHECK(channels >= 1);
  (void)db;
  return 0.0;
}

double delegated_entry(const Database& db, ChannelId channels) {
  // dbs-lint: contract delegated to checked_entry
  return checked_entry(db, channels);
}

// File-local helper: takes a Database but is not declared in any header of
// this module, so the audit does not apply.
static double local_helper(const Database& db) {
  (void)db;
  return 1.0;
}

double also_clean(const Database& db, ChannelId channels) {
  return local_helper(db) + checked_entry(db, channels);
}

}  // namespace dbs
