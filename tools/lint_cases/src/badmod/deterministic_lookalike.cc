// expect: clean
// Identifiers that merely *contain* the forbidden tokens must not fire:
// waiting_time(), item_waiting_time(), uptime(), a local named grand(),
// and "rand(" / "time(" inside strings or comments.
#include "badmod.h"

namespace dbs {

double waiting_time(double z) { return z; }
double item_waiting_time(double z) { return waiting_time(z); }
double uptime(double z) { return z; }

double grand(double x) { return x; }

double lookalikes() {
  const char* note = "calls rand( and time( in a string";  // and a comment: time(
  (void)note;
  return grand(1.0) + item_waiting_time(2.0) + uptime(3.0);
}

}  // namespace dbs
