// expect: contract-audit
// Regression case: a C++14 digit separator (200'000) before a violation must
// not derail the string-stripper into treating the rest of the file as a
// char literal — the unchecked public entry point below must still be seen.
#include "badmod.h"

namespace dbs {

constexpr unsigned long kBudget = 200'000;

double unchecked_entry(const Database& db, ChannelId channels) {
  (void)db;
  return static_cast<double>(kBudget) * channels;
}

}  // namespace dbs
