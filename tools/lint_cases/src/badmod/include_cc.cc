// expect: include-cc
// Including an implementation file silently duplicates definitions.
#include "badmod.h"
#include "checked_entry.cc"

namespace dbs {}
