// expect: check-iwyu
// Uses the contract macros but relies on a transitive include to get them.
#include "badmod.h"

namespace dbs {

double uses_macro_without_include(double x) {
  DBS_ASSERT(x >= 0.0);
  return x;
}

}  // namespace dbs
