// expect: determinism
// Every forbidden randomness/clock source in one file: std::rand, bare
// rand/srand, std::random_device, and wall-clock time().
#include "badmod.h"

#include <cstdlib>
#include <ctime>
#include <random>

namespace dbs {

double nondeterministic_sample() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  double a = static_cast<double>(std::rand());
  double b = static_cast<double>(rand());
  return a + b + static_cast<double>(rd());
}

}  // namespace dbs
