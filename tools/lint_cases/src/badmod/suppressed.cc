// expect: clean
// A justified exception: the allow-marker on the preceding line silences the
// determinism rule for exactly that call site (and stays grep-able).
#include "badmod.h"

#include <ctime>

namespace dbs {

long wall_clock_for_log_header() {
  // dbs-lint: allow(determinism) — log header timestamp, not simulation state
  return static_cast<long>(time(nullptr));
}

}  // namespace dbs
