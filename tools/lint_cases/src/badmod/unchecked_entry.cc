// expect: contract-audit
// A public entry point that consumes a Database without any DBS_CHECK and
// without a delegation annotation: the contract audit must flag it.
#include "badmod.h"

#include "common/check.h"

namespace dbs {

double unchecked_entry(const Database& db, ChannelId channels) {
  double total = 0.0;
  for (ChannelId c = 0; c < channels; ++c) total += static_cast<double>(c);
  (void)db;
  return total;
}

}  // namespace dbs
