// expect: clean
// Mirror of the real src/common/sync.h location: the one file allowed to
// name raw primitives, because it is where the annotated wrappers live.
// The rule exempts it by path, not by suppression markers.
#pragma once

#include <mutex>

namespace dbs {

class Mutex {
 private:
  std::mutex mutex_;
};

}  // namespace dbs
