// expect: api-docs
// Golden case: src/core headers are in api-docs scope too, and a function
// doc comment without a \brief tag is still a finding there.
#pragma once

namespace dbs {

/// Looks documented, but the block never spells \ brief (the space keeps
/// this sentence itself from satisfying the scanner).
int refine(int allocation);

}  // namespace dbs
