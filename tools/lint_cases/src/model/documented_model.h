// expect: clean
// Golden case: api-docs now covers src/model headers (PR 7). A documented
// model header is clean, and a bodiless forward declaration introduces no
// API surface so it needs no doc comment.
#pragma once

namespace dbs {

class Database;

/// Columnar prefix aggregates over an ordered item sequence.
struct SumsExample {
  double total = 0.0;

  /// \brief Aggregate over the slice [a, b).
  double slice(int a, int b) const;
};

/// \brief Rebuilds `sums` from `db` (stand-in signature for the fixture).
void rebuild(const Database& db, SumsExample& sums);

}  // namespace dbs
