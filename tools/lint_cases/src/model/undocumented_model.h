// expect: api-docs
// Golden case: an undocumented declaration in a src/model header is now a
// finding — the model layer is narrated by docs/ARCHITECTURE.md §3, so its
// public surface must carry doc comments like src/api always had to.
#pragma once

namespace dbs {

struct UndocumentedColumns {
  double freq = 0.0;
  double size = 0.0;
};

}  // namespace dbs
