// expect: obs-metric-names
// Every literal handed to the observability layer must follow the
// snake_case.dotted.namespace contract; each call below violates it
// differently (single component, uppercase, empty component, trailing dot).
#include "obs/obs.h"
#include "obs/metrics.h"

namespace dbs {

void bad_metric_names() {
  DBS_OBS_COUNTER_INC("flat");
  DBS_OBS_COUNTER_ADD("Core.cds.runs", 3);
  DBS_OBS_GAUGE_SET("core..best_k", 4.0);
  DBS_OBS_HISTOGRAM_OBSERVE("serve.repair_ms.", 0.5);
  DBS_OBS_SPAN("serve.Epoch");
  obs::MetricsRegistry::global().counter("kebab-case.runs").inc();
}

}  // namespace dbs
