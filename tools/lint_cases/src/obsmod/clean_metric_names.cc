// expect: clean
// Well-formed observability names: >= 2 dot-separated snake_case components.
// Commented-out call sites and suppressed violations must not fire either.
#include "obs/obs.h"
#include "obs/metrics.h"

namespace dbs {

void clean_metric_names() {
  DBS_OBS_COUNTER_INC("core.cds.runs");
  DBS_OBS_COUNTER_ADD("core.cds.moves_evaluated", 12);
  DBS_OBS_GAUGE_SET("api.planner.best_k", 4.0);
  DBS_OBS_HISTOGRAM_OBSERVE("serve.repair_ms", 0.5);
  DBS_OBS_SPAN("serve.epoch.rebuild");
  obs::MetricsRegistry::global().counter("serve.epochs").inc();
  // Not a call site, just prose: DBS_OBS_COUNTER_INC("NotAName")
  // dbs-lint: allow(obs-metric-names) — deliberate violation, suppressed
  DBS_OBS_GAUGE_SET("Suppressed", 1.0);
}

}  // namespace dbs
