// expect: guarded-by-audit
// A TU that opted into the annotated-sync world (includes common/sync.h)
// but declares a mutable, non-atomic field with no DBS_GUARDED_BY: the
// exact shape that lets a const accessor mutate shared state behind the
// caller's back with nothing checking the lock discipline.
#include "common/sync.h"

namespace syncmod {

class Memoizer {
 public:
  double get(int key) const;

 private:
  mutable dbs::Mutex mutex_;
  mutable double last_result_ = 0.0;
  mutable int last_key_ = -1;
};

}  // namespace syncmod
