// expect: clean
// guarded-by-audit only audits TUs that include common/sync.h: a
// single-threaded memo cache with no locking vocabulary in scope is out of
// the rule's jurisdiction (raw-sync-primitive still guards the other door).
namespace syncmod {

class Memoizer {
 public:
  double get(int key) const;

 private:
  mutable double last_result_ = 0.0;
  mutable int last_key_ = -1;
};

}  // namespace syncmod
