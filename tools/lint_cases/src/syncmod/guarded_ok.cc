// expect: clean
// The three legitimate shapes for mutable state in a sync.h TU: the Mutex
// itself, a lock-free std::atomic, and a guarded field that names its lock.
#include "common/sync.h"

namespace syncmod {

class Memoizer {
 public:
  double get(int key) const;

 private:
  mutable dbs::Mutex mutex_;
  mutable std::atomic<int> hits_;
  mutable double last_result_ DBS_GUARDED_BY(mutex_);
  mutable int last_key_ DBS_GUARDED_BY(mutex_);
};

}  // namespace syncmod
