// expect: raw-sync-primitive
// A raw std::mutex field plus a std::lock_guard critical section outside
// src/common/sync.h: both must be flagged — the thread-safety analysis can
// only check locks that go through the annotated dbs::Mutex wrappers.
#include <mutex>

namespace syncmod {

class Cache {
 public:
  void put(int value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = value;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace syncmod
