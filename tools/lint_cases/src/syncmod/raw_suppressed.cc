// expect: clean
// The standard suppression escape hatch applies to raw-sync-primitive like
// any other rule — an FFI boundary handing a std::mutex to a C callback,
// say — but each site must carry the marker.
namespace syncmod {

struct LegacyBridge {
  // dbs-lint: allow(raw-sync-primitive) — handed to a C API by address
  std::mutex raw_handle;
};

}  // namespace syncmod
