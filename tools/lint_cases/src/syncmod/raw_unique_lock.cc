// expect: raw-sync-primitive
// std::unique_lock and std::condition_variable are part of the banned raw
// vocabulary too: waiting needs first-class support in common/sync.h, not a
// side door around the capability annotations.
#include <condition_variable>
#include <mutex>

namespace syncmod {

class Queue {
 public:
  void wait_nonempty() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return size_ > 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  int size_ = 0;
};

}  // namespace syncmod
