// expect: clean
// A well-behaved test: uses only the public surface and the contract macros
// with their include present.
#include "common/check.h"

namespace dbs_test {

void exercise_public_surface() {
  DBS_CHECK(1 + 1 == 2);
}

}  // namespace dbs_test
