// expect: detail-isolation
// A test reaching into the library's detail:: internals.
#include "common/check.h"

namespace dbs_test {

void poke_internals() {
  ::dbs::detail::fail_check("x", "f.cc", 1, "reaching into internals");
}

}  // namespace dbs_test
