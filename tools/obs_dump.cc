// obs_dump — pretty-prints a dbs-metrics-v1 JSON file (the format
// `perfsuite --metrics-out` and obs::write_json_file emit) as aligned
// tables: counters, gauges, then histograms with count/sum/mean and the
// occupied buckets.
//
//   obs_dump METRICS.json        pretty-print a metrics dump
//   obs_dump --selfcheck         round-trip built-in instruments through a
//                                temp file (registered as a ctest)
//
// The parser below handles exactly the subset of JSON our exporter writes
// (objects, arrays, strings, numbers); it is not a general JSON library and
// deliberately lives here rather than in src/ — nothing in the library
// proper ever needs to *read* JSON.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"

namespace {

using dbs::obs::CounterSample;
using dbs::obs::GaugeSample;
using dbs::obs::HistogramSample;
using dbs::obs::MetricsSnapshot;

/// Minimal cursor over the dbs-metrics-v1 subset of JSON.
class MetricsParser {
 public:
  explicit MetricsParser(std::string text) : text_(std::move(text)) {}

  /// Parses the document into `out`; returns false (with a message on
  /// stderr) on any structural surprise.
  bool parse(MetricsSnapshot& out) {
    skip_ws();
    if (!consume('{')) return fail("expected top-level object");
    bool saw_schema = false;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      std::string key;
      if (!parse_string(key) || !expect_colon()) return false;
      if (key == "schema") {
        std::string schema;
        if (!parse_string(schema)) return false;
        if (schema != "dbs-metrics-v1") return fail("unknown schema " + schema);
        saw_schema = true;
      } else if (key == "counters") {
        if (!parse_counters(out.counters)) return false;
      } else if (key == "gauges") {
        if (!parse_gauges(out.gauges)) return false;
      } else if (key == "histograms") {
        if (!parse_histograms(out.histograms)) return false;
      } else {
        return fail("unknown key " + key);
      }
      skip_ws();
      consume(',');
    }
    if (!saw_schema) return fail("missing \"schema\" key");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    std::fprintf(stderr, "obs_dump: parse error at byte %zu: %s\n", pos_,
                 why.c_str());
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (!consume(c)) return fail(std::string("expected '") + c + "'");
    return true;
  }

  bool expect_colon() { return expect(':'); }

  bool parse_string(std::string& out) {
    skip_ws();
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    return consume('"') || fail("unterminated string");
  }

  bool parse_number(double& out) {
    skip_ws();
    // The exporter writes histogram overflow bounds as the string "inf".
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string word;
      if (!parse_string(word)) return false;
      if (word != "inf") return fail("unexpected string where number expected");
      out = std::numeric_limits<double>::infinity();
      return true;
    }
    char* end = nullptr;
    out = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return fail("expected number");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  /// Parses `[ item, item, ... ]` with `item` supplied by the callback.
  template <typename ParseItem>
  bool parse_array(ParseItem&& item) {
    if (!expect('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!item()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  /// Parses `{ "key": value, ... }` with `field` handling each key.
  template <typename ParseField>
  bool parse_object(ParseField&& field) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (consume('}')) return true;
      std::string key;
      if (!parse_string(key) || !expect_colon()) return false;
      if (!field(key)) return false;
      skip_ws();
      consume(',');
    }
  }

  bool parse_counters(std::vector<CounterSample>& out) {
    return parse_array([&] {
      CounterSample sample;
      double value = 0.0;
      const bool ok = parse_object([&](const std::string& key) {
        if (key == "name") return parse_string(sample.name);
        if (key == "value") return parse_number(value);
        return fail("unknown counter key " + key);
      });
      sample.value = static_cast<std::uint64_t>(value);
      out.push_back(std::move(sample));
      return ok;
    });
  }

  bool parse_gauges(std::vector<GaugeSample>& out) {
    return parse_array([&] {
      GaugeSample sample;
      const bool ok = parse_object([&](const std::string& key) {
        if (key == "name") return parse_string(sample.name);
        if (key == "value") return parse_number(sample.value);
        return fail("unknown gauge key " + key);
      });
      out.push_back(std::move(sample));
      return ok;
    });
  }

  bool parse_histograms(std::vector<HistogramSample>& out) {
    return parse_array([&] {
      HistogramSample sample;
      double count = 0.0;
      const bool ok = parse_object([&](const std::string& key) {
        if (key == "name") return parse_string(sample.name);
        if (key == "count") return parse_number(count);
        if (key == "sum") return parse_number(sample.sum);
        if (key == "buckets") {
          return parse_array([&] {
            double le = 0.0, bucket_count = 0.0;
            const bool bucket_ok = parse_object([&](const std::string& bkey) {
              if (bkey == "le") return parse_number(le);
              if (bkey == "count") return parse_number(bucket_count);
              return fail("unknown bucket key " + bkey);
            });
            sample.bounds.push_back(le);
            sample.counts.push_back(static_cast<std::uint64_t>(bucket_count));
            return bucket_ok;
          });
        }
        return fail("unknown histogram key " + key);
      });
      sample.count = static_cast<std::uint64_t>(count);
      out.push_back(std::move(sample));
      return ok;
    });
  }

  std::string text_;
  std::size_t pos_ = 0;
};

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return true;
}

void print_snapshot(const MetricsSnapshot& snapshot) {
  if (!snapshot.counters.empty()) {
    dbs::AsciiTable table({"counter", "value"});
    for (const CounterSample& c : snapshot.counters) {
      table.add_row(c.name, {static_cast<double>(c.value)}, 0);
    }
    std::fputs(table.render().c_str(), stdout);
  }
  if (!snapshot.gauges.empty()) {
    dbs::AsciiTable table({"gauge", "value"});
    for (const GaugeSample& g : snapshot.gauges) {
      table.add_row(g.name, {g.value}, 3);
    }
    std::fputs(table.render().c_str(), stdout);
  }
  if (!snapshot.histograms.empty()) {
    dbs::AsciiTable table({"histogram", "count", "sum", "mean"});
    for (const HistogramSample& h : snapshot.histograms) {
      table.add_row(h.name,
                    {static_cast<double>(h.count), h.sum,
                     h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0},
                    3);
    }
    std::fputs(table.render().c_str(), stdout);
    for (const HistogramSample& h : snapshot.histograms) {
      std::printf("%s buckets:", h.name.c_str());
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        std::printf("  le=%g:%llu", h.bounds[i],
                    static_cast<unsigned long long>(h.counts[i]));
      }
      std::printf("\n");
    }
  }
  if (snapshot.empty()) std::puts("(no instruments in this dump)");
}

/// Round-trips live instruments through the JSON exporter and this parser,
/// exiting nonzero on any mismatch. Keeps the reader honest about the
/// writer's format without needing a checked-in fixture file.
int selfcheck() {
  dbs::obs::MetricsRegistry& registry = dbs::obs::MetricsRegistry::global();
  registry.counter("selfcheck.counter").add(42);
  registry.gauge("selfcheck.gauge").set(2.5);
  dbs::obs::Histogram& histogram = registry.histogram("selfcheck.histogram");
  histogram.observe(0.5);
  histogram.observe(3.0);
  histogram.observe(1e9);  // overflow bucket

  const std::string json = dbs::obs::to_json(registry.snapshot());
  MetricsSnapshot parsed;
  if (!MetricsParser(json).parse(parsed)) return 1;
  if (parsed.counters.size() != 1 || parsed.counters[0].value != 42 ||
      parsed.counters[0].name != "selfcheck.counter") {
    std::fprintf(stderr, "obs_dump selfcheck: counter round-trip mismatch\n");
    return 1;
  }
  if (parsed.gauges.size() != 1 || parsed.gauges[0].value != 2.5) {
    std::fprintf(stderr, "obs_dump selfcheck: gauge round-trip mismatch\n");
    return 1;
  }
  if (parsed.histograms.size() != 1 || parsed.histograms[0].count != 3 ||
      parsed.histograms[0].counts.size() != 3) {
    std::fprintf(stderr, "obs_dump selfcheck: histogram round-trip mismatch\n");
    return 1;
  }
  print_snapshot(parsed);
  std::puts("obs_dump selfcheck: round-trip ok");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--selfcheck") return selfcheck();
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s METRICS.json | --selfcheck\n", argv[0]);
    return 2;
  }
  std::string text;
  if (!read_file(argv[1], text)) {
    std::fprintf(stderr, "obs_dump: cannot read %s\n", argv[1]);
    return 1;
  }
  MetricsSnapshot snapshot;
  if (!MetricsParser(std::move(text)).parse(snapshot)) return 1;
  print_snapshot(snapshot);
  return 0;
}
