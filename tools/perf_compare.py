#!/usr/bin/env python3
"""perf_compare: diff two perfsuite BENCH_*.json files and gate regressions.

Usage:
    tools/perf_compare.py OLD NEW [options]
    tools/perf_compare.py --selftest

OLD and NEW are files written by `build/bench/perfsuite`. OLD may also be a
directory (typically `bench/baselines/`): the file named by its `LATEST`
pointer is used, and a missing pointer exits 77 so a ctest gate registered
with SKIP_RETURN_CODE 77 reports "skipped" instead of failing on a branch
that predates the first committed baseline.

Checks, in order:

  schema      Both files must parse as JSON and carry the dbs-bench-v1
              schema with the expected keys. Violations exit 2.
  coverage    Every config in OLD must exist in NEW (same `name`) with the
              same workload parameters. Missing configs fail unless
              --subset is given (used by `perfsuite --gate`, which skips
              heavy configs); parameter drift always fails because numbers
              measured on different workloads are not comparable.
  cost        Per-trial costs (and waiting times) are seeded, hence
              deterministic: they are compared element-wise over the common
              trial prefix with relative tolerance 1e-9. Any drift fails —
              an intentional algorithm change must regenerate the baseline
              (see docs/BENCHMARKING.md).
  time        Median wall time per config: NEW > OLD * (1 + --max-regression)
              fails. Only runs when both files report the same host
              fingerprint (cpu_model + build_flavor) or --force-time is
              given — cross-host or sanitizer-build wall times are not
              comparable. Configs whose OLD median is below --min-ms are
              treated as noise and never gated. When both files carry
              per-trial calibration spins (`calib_ms`, written by current
              perfsuite builds), the gated quantity is the *minimum*
              wall/calibration ratio over the common trial prefix instead
              of the raw wall median: the spin does fixed work, so
              host-wide clock swings (shared/burstable machines vary 2x
              minute to minute) cancel out of the ratio, and the minimum
              discards one-sided scheduling noise that hits a trial
              without hitting its bracketing spins.

Exit status: 0 clean (or time-gate skipped), 1 regression found,
2 malformed input, 77 no baseline available.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "dbs-bench-v1"
PARAM_KEYS = ("algorithm", "items", "channels", "skewness", "diversity",
              "bandwidth", "base_seed")
COST_TOLERANCE = 1e-9


class Malformed(Exception):
    pass


def load_bench(path: Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise Malformed(f"{path}: not readable JSON: {err}") from err
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise Malformed(f"{path}: missing or unexpected schema "
                        f"(want {SCHEMA!r}, got {data.get('schema')!r})")
    configs = data.get("configs")
    if not isinstance(configs, list) or not configs:
        raise Malformed(f"{path}: no configs recorded")
    for config in configs:
        for key in ("name", "wall_ms", "cost", *PARAM_KEYS):
            if key not in config:
                raise Malformed(
                    f"{path}: config {config.get('name', '?')!r} lacks {key!r}")
        for metric in ("wall_ms", "cost"):
            block = config[metric]
            if not isinstance(block, dict) or "median" not in block \
                    or not isinstance(block.get("per_trial"), list) \
                    or not block["per_trial"]:
                raise Malformed(f"{path}: config {config['name']!r} has a "
                                f"malformed {metric!r} block")
    return data


def resolve_baseline(arg: Path) -> Path:
    """A directory argument is resolved through its LATEST pointer file."""
    if not arg.is_dir():
        return arg
    pointer = arg / "LATEST"
    if not pointer.is_file():
        print(f"perf_compare: no {pointer} — no baseline to gate against; "
              "skipping", file=sys.stderr)
        sys.exit(77)
    name = pointer.read_text(encoding="utf-8").strip()
    baseline = arg / name
    if not baseline.is_file():
        raise Malformed(f"{pointer} names {name!r} but {baseline} is missing")
    return baseline


def host_fingerprint(data: dict) -> tuple:
    host = data.get("host", {})
    return (host.get("cpu_model", "?"), host.get("build_flavor", "?"))


def normalized_wall_floor(config: dict, trials: int):
    """Minimum wall/calibration ratio over the first `trials` trials, or
    None when the config has no usable `calib_ms` block.

    The minimum, not the median: timing noise is one-sided (preemptions and
    slow windows only ever add time), so the smallest observed ratio is the
    best estimate of the config's intrinsic cost in spin units. The prefix
    restriction matters because trials are distinct seeded workloads with
    different intrinsic work — a 3-trial gate file and a 9-trial baseline
    are only comparable over the trials they share, exactly like the cost
    determinism check.

    Files written before calibration existed (or hand-built fixtures) lack
    `calib_ms`; returning None falls back to raw wall medians so old
    baselines keep gating.
    """
    calib = config.get("calib_ms")
    if not isinstance(calib, dict):
        return None
    walls = config["wall_ms"]["per_trial"]
    spins = calib.get("per_trial")
    if not isinstance(spins, list) or len(spins) != len(walls) \
            or any(not isinstance(s, (int, float)) or s <= 0 for s in spins):
        return None
    return min(w / s for w, s in zip(walls[:trials], spins[:trials]))


def relative_delta(old: float, new: float) -> float:
    if old == new:
        return 0.0
    scale = max(abs(old), abs(new), 1e-300)
    return abs(new - old) / scale


def compare(old: dict, new: dict, *, max_regression: float, min_ms: float,
            subset: bool, force_time: bool, out=sys.stdout) -> int:
    failures = 0
    new_by_name = {c["name"]: c for c in new["configs"]}

    time_comparable = force_time or host_fingerprint(old) == host_fingerprint(new)
    if not time_comparable:
        print(f"perf_compare: host fingerprints differ "
              f"({host_fingerprint(old)} vs {host_fingerprint(new)}); "
              "wall-time gate skipped, cost gate still enforced", file=out)

    for old_config in old["configs"]:
        name = old_config["name"]
        new_config = new_by_name.get(name)
        if new_config is None:
            if subset:
                print(f"  {name}: absent in NEW (allowed by --subset)", file=out)
                continue
            print(f"FAIL {name}: config missing from NEW", file=out)
            failures += 1
            continue

        drifted = [k for k in PARAM_KEYS if old_config[k] != new_config[k]]
        if drifted:
            print(f"FAIL {name}: workload parameters drifted ({', '.join(drifted)})"
                  " — numbers are not comparable", file=out)
            failures += 1
            continue

        # Determinism gate: seeded costs must match trial-for-trial.
        config_ok = True
        for metric in ("cost", "wait"):
            if metric not in old_config or metric not in new_config:
                continue
            old_trials = old_config[metric]["per_trial"]
            new_trials = new_config[metric]["per_trial"]
            shared = min(len(old_trials), len(new_trials))
            for t in range(shared):
                delta = relative_delta(old_trials[t], new_trials[t])
                if delta > COST_TOLERANCE:
                    print(f"FAIL {name}: {metric} drifted at trial {t} "
                          f"({old_trials[t]:.17g} -> {new_trials[t]:.17g}, "
                          f"rel {delta:.2e}) — same seed must give the same "
                          "result; regenerate the baseline if intentional",
                          file=out)
                    failures += 1
                    config_ok = False
                    break
            if not config_ok:
                break
        if not config_ok:
            continue

        old_median = float(old_config["wall_ms"]["median"])
        new_median = float(new_config["wall_ms"]["median"])
        if not time_comparable:
            print(f"  ok {name}: cost deterministic "
                  f"(wall {old_median:.3f} -> {new_median:.3f} ms, not gated)",
                  file=out)
            continue
        if old_median < min_ms:
            print(f"  ok {name}: below noise floor "
                  f"({old_median:.3f} ms < {min_ms:.3f} ms, wall not gated)",
                  file=out)
            continue
        shared_trials = min(len(old_config["wall_ms"]["per_trial"]),
                            len(new_config["wall_ms"]["per_trial"]))
        old_norm = normalized_wall_floor(old_config, shared_trials)
        new_norm = normalized_wall_floor(new_config, shared_trials)
        if old_norm is not None and new_norm is not None:
            # Clock-normalized gate: the ratio of work to a fixed spin is
            # immune to host-wide speed swings between the two runs.
            ratio = new_norm / old_norm if old_norm > 0 else float("inf")
            shown = (f"{old_norm:.2f} -> {new_norm:.2f} x calib "
                     f"(raw {old_median:.3f} -> {new_median:.3f} ms)")
        else:
            ratio = new_median / old_median if old_median > 0 else float("inf")
            shown = f"{old_median:.3f} -> {new_median:.3f} ms"
        if ratio > 1.0 + max_regression:
            print(f"FAIL {name}: wall-time regression {shown} "
                  f"(+{(ratio - 1.0) * 100.0:.1f}% > {max_regression * 100.0:.0f}%)",
                  file=out)
            failures += 1
        elif ratio < 1.0 - max_regression:
            print(f"  ok {name}: improvement {shown} "
                  f"({(1.0 - ratio) * 100.0:.1f}% faster — "
                  "consider refreshing the baseline)", file=out)
        else:
            print(f"  ok {name}: {shown} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%)", file=out)

    if failures:
        print(f"perf_compare: {failures} regression(s)", file=out)
        return 1
    print("perf_compare: clean", file=out)
    return 0


# ---------------------------------------------------------------------------
# Golden-file selftest (fixtures under tools/perf_cases/)
# ---------------------------------------------------------------------------

def selftest() -> int:
    """Exercises the comparator on the golden files in tools/perf_cases/ and
    checks each scenario produces the expected exit code."""
    cases_dir = Path(__file__).resolve().parent / "perf_cases"
    if not cases_dir.is_dir():
        print(f"selftest: missing {cases_dir}", file=sys.stderr)
        return 2

    def run(old_name: str, new_name: str, expect: int, *, subset=False,
            label: str) -> bool:
        try:
            old = load_bench(cases_dir / old_name)
            new = load_bench(cases_dir / new_name)
        except Malformed as err:
            got = 2
            detail = str(err)
        else:
            import io
            sink = io.StringIO()
            got = compare(old, new, max_regression=0.15, min_ms=1.0,
                          subset=subset, force_time=False, out=sink)
            detail = sink.getvalue().strip().splitlines()[-1]
        ok = got == expect
        print(f"selftest {'ok  ' if ok else 'FAIL'} {label}: "
              f"expected exit {expect}, got {got} ({detail})")
        return ok

    checks = [
        run("base.json", "pass.json", 0, label="pass (within threshold)"),
        run("base.json", "regress.json", 1, label="regress (>15% wall time)"),
        run("base.json", "cost_drift.json", 1, label="cost drift (determinism)"),
        run("base.json", "malformed.json", 2, label="malformed JSON"),
        run("base.json", "subset.json", 1, label="missing config w/o --subset"),
        run("base.json", "subset.json", 0, subset=True,
            label="missing config with --subset"),
        run("base.json", "other_host.json", 0,
            label="foreign host (time gate auto-skips)"),
        run("base.json", "param_drift.json", 1, label="workload param drift"),
        run("calib_base.json", "clock_pass.json", 0,
            label="host clock swing (wall 2x, calib 2x — normalized pass)"),
        run("calib_base.json", "clock_regress.json", 1,
            label="real regression under calibration (wall 2x, calib flat)"),
        run("calib_base.json", "pass.json", 0,
            label="one-sided calib falls back to raw wall medians"),
    ]
    if all(checks):
        print("selftest: all golden cases behave")
        return 0
    print("selftest: failure(s) above", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", nargs="?", type=Path,
                        help="baseline BENCH json, or a directory with a "
                             "LATEST pointer (e.g. bench/baselines)")
    parser.add_argument("new", nargs="?", type=Path,
                        help="freshly measured BENCH json")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed median wall-time growth (default 0.15)")
    parser.add_argument("--min-ms", type=float, default=1.0,
                        help="noise floor: skip wall gating below this old "
                             "median (default 1.0 ms)")
    parser.add_argument("--subset", action="store_true",
                        help="allow NEW to cover a subset of OLD's configs "
                             "(gate-mode files skip heavy configs)")
    parser.add_argument("--force-time", action="store_true",
                        help="gate wall time even across host fingerprints")
    parser.add_argument("--selftest", action="store_true",
                        help="run the golden cases in tools/perf_cases/")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.old is None or args.new is None:
        parser.error("OLD and NEW are required unless --selftest is given")
    try:
        old = load_bench(resolve_baseline(args.old))
        new = load_bench(args.new)
    except Malformed as err:
        print(f"perf_compare: {err}", file=sys.stderr)
        return 2
    return compare(old, new, max_regression=args.max_regression,
                   min_ms=args.min_ms, subset=args.subset,
                   force_time=args.force_time)


if __name__ == "__main__":
    sys.exit(main())
